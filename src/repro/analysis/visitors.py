"""Shared AST plumbing for repro-lint rules.

Rules never import the code they analyse; these helpers give them just
enough name resolution to reason about it statically: an
:class:`ImportMap` resolving local aliases back to canonical dotted
module paths, parent back-links for consumer-context checks, and small
expression utilities (terminal names, identifier tokenisation,
``self``-rooted attribute chains).

>>> import ast
>>> tree = ast.parse("import numpy as np\\nx = np.random.default_rng(7)")
>>> imports = ImportMap.from_tree(tree)
>>> call = tree.body[1].value
>>> resolved_call_name(call.func, imports)
'numpy.random.default_rng'
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "ImportMap",
    "attach_parents",
    "attribute_chain",
    "dotted_parts",
    "iter_parents",
    "name_tokens",
    "resolved_call_name",
    "terminal_name",
]

#: Attribute key used for parent back-links (private to this package).
_PARENT = "_repro_lint_parent"


class ImportMap:
    """Alias tables built from every import statement in a module.

    ``modules`` maps local aliases to dotted module paths ("np" ->
    "numpy"); ``symbols`` maps from-imported names to their origin
    ("perf_counter" -> "time.perf_counter").  Relative imports keep
    their leading dots, which is enough for suffix matching.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}
        self.symbols: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.modules[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.symbols[local] = f"{prefix}.{alias.name}"
        return imports


def resolved_call_name(func: ast.expr, imports: ImportMap) -> Optional[str]:
    """Canonical dotted path of a called expression, or ``None``.

    Only resolves through *imports* — an attribute chain rooted at a
    plain local variable (``rng.random()``) deliberately returns
    ``None`` so rules keyed on module identity never misfire on
    instances that merely share a method name.
    """
    parts = dotted_parts(func)
    if not parts:
        return None
    head, rest = parts[0], parts[1:]
    if not rest:
        origin = imports.symbols.get(head)
        return origin if origin is not None else None
    module = imports.modules.get(head)
    if module is not None:
        return ".".join([module, *rest])
    origin = imports.symbols.get(head)
    if origin is not None:
        return ".".join([origin, *rest])
    return None


def dotted_parts(expr: ast.expr) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``[]`` for anything non-dotted."""
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def terminal_name(expr: ast.expr) -> Optional[str]:
    """The rightmost identifier of an expression, if any.

    ``snapshot`` -> ``snapshot``; ``service.snapshot()`` -> ``snapshot``;
    ``scores[pair]`` -> ``scores``; a literal -> ``None``.
    """
    node: ast.expr = expr
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def name_tokens(identifier: Optional[str]) -> Set[str]:
    """Lower-cased ``snake_case`` tokens of an identifier.

    >>> sorted(name_tokens("link_scores"))
    ['link', 'scores']
    """
    if not identifier:
        return set()
    return {token for token in identifier.lower().split("_") if token}


def attach_parents(tree: ast.AST) -> None:
    """Set a parent back-link on every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def iter_parents(node: ast.AST) -> Iterator[ast.AST]:
    """Walk outwards from ``node`` (requires :func:`attach_parents`)."""
    current = getattr(node, _PARENT, None)
    while current is not None:
        yield current
        current = getattr(current, _PARENT, None)


def attribute_chain(expr: ast.expr) -> Tuple[Optional[str], List[str]]:
    """Root name and attribute path of a store target.

    ``self.counters.queries`` -> ``("self", ["counters", "queries"])``;
    subscripts are transparent (``self._queue[0]`` roots at ``self`` with
    path ``["_queue"]``); a non-name root returns ``(None, [...])``.
    """
    attrs: List[str] = []
    node: ast.expr = expr
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            attrs.reverse()
            return node.id, attrs
        else:
            attrs.reverse()
            return None, attrs

"""The repro-lint engine: findings, rules, suppressions, reports.

This module is the AST-lint counterpart of :mod:`repro.registry`-style
plugin architecture: every rule is a :class:`LintRule` registered in the
:data:`lint_rules` registry under a stable kebab-case id, and
:func:`run_lint` drives the selected rules over a set of files without
ever *importing* the code under analysis — rules see source text and
:mod:`ast` trees only, so linting cannot execute side effects.

Suppressions are per-line and per-rule::

    risky_line()  # repro-lint: disable=wall-clock -- one-line justification

A suppression that silences nothing is itself reported
(``unused-suppression``), and a suppression naming an id no rule owns is
reported as ``unknown-rule`` — disable comments cannot rot silently.
Modules whose *contract* is wall-clock measurement opt out of the clock
rule wholesale with a module-level ``# repro-lint: timing-module`` marker
(also checked for staleness).

>>> import pathlib, tempfile
>>> with tempfile.TemporaryDirectory() as root:
...     bad = pathlib.Path(root, "mod.py")
...     _ = bad.write_text("import numpy as np\\nrng = np.random.default_rng()\\n")
...     report = run_lint([bad])
>>> [(finding.rule, finding.line) for finding in report.findings]
[('unseeded-rng', 2)]
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..registry import Registry

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "JSON_SCHEMA_VERSION",
    "UNKNOWN_RULE",
    "UNUSED_SUPPRESSION",
    "collect_python_files",
    "lint_rules",
    "parse_module",
    "register_rule",
    "run_lint",
]

#: Version stamp of the JSON report layout; bump on any shape change
#: (pinned by ``tests/analysis/test_lint_framework.py``).
JSON_SCHEMA_VERSION = 1

#: Framework-owned finding ids (not registered rules, never suppressible).
UNUSED_SUPPRESSION = "unused-suppression"
UNKNOWN_RULE = "unknown-rule"

#: Directive comments: ``disable=a,b -- why`` or a module marker.  The
#: pattern is anchored at the start of a comment *token* (scanned via
#: :mod:`tokenize`), so directive-shaped text inside docstrings or
#: ``#:`` doc-comments never counts.
_DIRECTIVE_RE = re.compile(
    r"^#\s*repro-lint:\s*"
    r"(?:disable=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"|(?P<marker>[a-z][a-z\-]*-module))"
)

#: Module-level markers the engine recognises (rules read them off
#: :attr:`ModuleContext.markers`).
KNOWN_MARKERS = frozenset({"timing-module"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line human form."""
        return f"{self.location()}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """The stable JSON row (schema pinned by the test suite)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed module.

    ``rel_path`` is the path exactly as handed to :func:`run_lint`
    (posix-normalised) — rules that scope themselves to repo locations
    match on its suffix, so linting a copied fixture never inherits the
    privileges of the module it was copied from.
    """

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    #: ``line -> rule ids disabled on that line``.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: ``marker -> line it was declared on`` (e.g. ``timing-module``).
    markers: Dict[str, int] = field(default_factory=dict)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` in this module."""
        return Finding(
            path=self.rel_path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)) + 1,
            rule=rule,
            message=message,
        )


class LintRule:
    """Base class of every repro-lint rule.

    Subclasses set :attr:`id` (stable kebab-case, what disable comments
    name) and :attr:`invariant` (the one-line contract the rule guards —
    rendered by ``--list-rules`` and the README tooling table), then
    implement :meth:`check` for per-module analysis and/or
    :meth:`finalize` for whole-tree invariants (uniqueness, cross-module
    export checks).  Rules must be stateless across runs: anything
    cross-module belongs in :meth:`finalize`, which sees every context.
    """

    id: str = ""
    invariant: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Per-module findings (default: none)."""
        return iter(())

    def finalize(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        """Whole-tree findings once every module is parsed (default: none)."""
        return iter(())


#: The rule registry — the analysis mirror of the pipeline's stage
#: registries; register custom project rules with :func:`register_rule`.
lint_rules: Registry[LintRule] = Registry("lint rule")  # repro-lint: disable=registry-config-knob -- rules are selected by repro_lint --select, not LinkageConfig


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`LintRule`.

    >>> @register_rule
    ... class Demo(LintRule):
    ...     id = "demo-rule"
    ...     invariant = "doctest demo"
    >>> "demo-rule" in lint_rules
    True
    >>> lint_rules.unregister("demo-rule")  # doctest hygiene
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"lint rule {cls.__name__} must set a non-empty id")
    lint_rules.register(rule.id)(rule)
    return cls


@dataclass
class LintReport:
    """The outcome of one :func:`run_lint` pass."""

    findings: List[Finding]
    files: int
    rules: List[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """The stable JSON report shape (``version`` gates consumers)."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_text(self) -> str:
        """Human output: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro-lint: {len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'} "
            f"in {self.files} file{'' if self.files == 1 else 's'} "
            f"({len(self.rules)} rules)"
        )
        return "\n".join([*lines, summary])


def collect_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Hidden directories and ``__pycache__`` are skipped; a named file is
    taken as-is (so fixtures need no ``.py``-suffix gymnastics).
    """
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(
                child
                for child in path.rglob("*.py")
                if "__pycache__" not in child.parts
                and not any(part.startswith(".") for part in child.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def _iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """``(line, text)`` for every comment token in ``source``."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # a parse failure is reported separately by run_lint


def _scan_directives(
    source: str,
) -> Tuple[Dict[int, Set[str]], Dict[str, int]]:
    """Per-line disable sets and module markers from comment tokens."""
    suppressions: Dict[int, Set[str]] = {}
    markers: Dict[str, int] = {}
    for lineno, comment in _iter_comments(source):
        match = _DIRECTIVE_RE.match(comment)
        if match is None:
            continue
        if match.group("rules"):
            names = {
                name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            suppressions.setdefault(lineno, set()).update(names)
        elif match.group("marker"):
            markers.setdefault(match.group("marker"), lineno)
    return suppressions, markers


def parse_module(path: Path, rel_path: str) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext` (raises on bad syntax)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    suppressions, markers = _scan_directives(source)
    return ModuleContext(
        path=path,
        rel_path=rel_path,
        source=source,
        tree=tree,
        suppressions=suppressions,
        markers=markers,
    )


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Tuple[str, LintRule]]:
    chosen = list(select) if select else lint_rules.names()
    for name in chosen:
        lint_rules.get(name)  # raises with the known names on a typo
    ignored = set(ignore or ())
    for name in ignored:
        lint_rules.get(name)
    return [(name, lint_rules.get(name)) for name in chosen if name not in ignored]


def run_lint(
    paths: Iterable[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the (selected) rule pack over ``paths`` and apply suppressions.

    Returns every surviving finding sorted by location; files that fail
    to parse contribute a ``parse-error`` finding instead of aborting the
    whole pass.  Unused and unknown suppressions are appended as
    framework findings — but only for rules that actually ran, so a
    ``--select`` subset never misreports the other rules' disables.
    """
    rules = _select_rules(select, ignore)
    active_ids = {name for name, _ in rules}
    files = collect_python_files(paths)

    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    for path in files:
        rel_path = path.as_posix()
        try:
            contexts.append(parse_module(path, rel_path))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            findings.append(
                Finding(
                    path=rel_path,
                    line=int(line),
                    col=1,
                    rule="parse-error",
                    message=f"could not parse module: {error}",
                )
            )

    for _, rule in rules:
        for ctx in contexts:
            findings.extend(rule.check(ctx))
        findings.extend(rule.finalize(contexts))

    kept: List[Finding] = []
    used: Set[Tuple[str, int, str]] = set()
    by_path = {ctx.rel_path: ctx for ctx in contexts}
    for finding in findings:
        ctx = by_path.get(finding.path)
        disabled = (
            ctx.suppressions.get(finding.line, set()) if ctx is not None else set()
        )
        if finding.rule in disabled:
            used.add((finding.path, finding.line, finding.rule))
        else:
            kept.append(finding)

    for ctx in contexts:
        for lineno in sorted(ctx.suppressions):
            for rule_id in sorted(ctx.suppressions[lineno]):
                if rule_id not in active_ids:
                    if select is None and rule_id not in lint_rules:
                        kept.append(
                            Finding(
                                path=ctx.rel_path,
                                line=lineno,
                                col=1,
                                rule=UNKNOWN_RULE,
                                message=(
                                    f"disable names unknown rule {rule_id!r}; "
                                    f"known rules: {lint_rules.names()}"
                                ),
                            )
                        )
                    continue
                if (ctx.rel_path, lineno, rule_id) not in used:
                    kept.append(
                        Finding(
                            path=ctx.rel_path,
                            line=lineno,
                            col=1,
                            rule=UNUSED_SUPPRESSION,
                            message=(
                                f"suppression of {rule_id!r} silences "
                                "nothing on this line; remove it"
                            ),
                        )
                    )

    kept.sort()
    return LintReport(
        findings=kept, files=len(files), rules=[name for name, _ in rules]
    )

"""repro-lint: AST-level enforcement of this repo's runtime invariants.

The linter never imports analysed code — it parses it.  Rules are
plugins in :data:`lint_rules` (the same :class:`repro.registry.Registry`
pattern as the pipeline's stages), so project-local invariants are one
``@register_rule`` class away.  The command-line front door is
``tools/repro_lint.py``; the library entry point is :func:`run_lint`.
"""

from .core import (
    JSON_SCHEMA_VERSION,
    Finding,
    LintReport,
    LintRule,
    ModuleContext,
    collect_python_files,
    lint_rules,
    parse_module,
    register_rule,
    run_lint,
)
from . import rules as _builtin_rules  # noqa: F401  (registers the rule pack)

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "collect_python_files",
    "lint_rules",
    "parse_module",
    "register_rule",
    "run_lint",
]

"""Serve-layer race rules: snapshot immutability, service write contexts.

The online layer publishes immutable :class:`~repro.serve.snapshot.LinkSnapshot`
objects and swaps a single reference; readers never lock.  That only
holds if nothing ever mutates a published snapshot, and if
:class:`~repro.serve.service.LinkageService` internal state is written
exclusively from its event-loop coroutines or the small set of sync
methods the pump thread is documented to call.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, LintRule, ModuleContext, register_rule
from ..visitors import attribute_chain, name_tokens, terminal_name

__all__ = ["ServiceContextRule", "SnapshotMutationRule"]

_SNAPSHOT_TOKENS = frozenset({"snapshot", "snap"})
_SNAPSHOT_PAYLOAD_ATTRS = frozenset({"links", "link_scores", "scores"})
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)


def _is_snapshot_expr(expr: ast.expr) -> bool:
    """Heuristic: does this expression denote a LinkSnapshot value?"""
    return bool(name_tokens(terminal_name(expr)) & _SNAPSHOT_TOKENS)


@register_rule
class SnapshotMutationRule(LintRule):
    """Published ``LinkSnapshot`` objects are never mutated."""

    id = "snapshot-mutation"
    invariant = (
        "a LinkSnapshot (and its links/scores mappings) is immutable "
        "after construction — publication is a reference swap, readers "
        "never see partial state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            yield from self._check_stores(ctx, node)
            yield from self._check_calls(ctx, node)

    def _check_stores(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Attribute) and _is_snapshot_expr(target.value):
                yield ctx.finding(
                    node,
                    self.id,
                    f"assigning attribute {target.attr!r} on a snapshot "
                    "value mutates published state; build a new LinkSnapshot "
                    "and swap the reference instead",
                )
            elif isinstance(target, ast.Subscript) and self._is_snapshot_payload(
                target.value
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "writing into a snapshot's links/scores mapping races "
                    "concurrent readers; snapshots are immutable once built",
                )

    def _check_calls(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and self._is_snapshot_payload(node.func.value)
        ):
            yield ctx.finding(
                node,
                self.id,
                f"{node.func.attr}() on a snapshot's links/scores mapping "
                "mutates published state; snapshots are immutable once built",
            )
            return
        # object.__setattr__(snapshot, ...) — the frozen-dataclass escape
        # hatch is reserved for __post_init__ (whose receiver is `self`).
        parts_ok = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        )
        if parts_ok and node.args and _is_snapshot_expr(node.args[0]):
            yield ctx.finding(
                node,
                self.id,
                "object.__setattr__ on a snapshot bypasses the frozen "
                "dataclass; snapshots must not change after construction",
            )

    @staticmethod
    def _is_snapshot_payload(expr: ast.expr) -> bool:
        """``<snapshot-ish>.links`` / ``.scores`` / ``.link_scores``."""
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr in _SNAPSHOT_PAYLOAD_ATTRS
            and _is_snapshot_expr(expr.value)
        )


#: The annotation table: per service class, which ``self.*`` attributes
#: are loop-owned state, and which *sync* methods are blessed writers
#: (constructor plus the pump-thread callbacks documented in
#: ``src/repro/serve/service.py``).  Async methods always run on the
#: event loop and may write freely.
SERVICE_STATE_TABLE: Dict[str, Dict[str, Set[str]]] = {
    "LinkageService": {
        "state": {
            "_queue",
            "_pump_task",
            "_pool",
            "_pending_by_source",
            "_source_waiters",
            "_watermark",
            "_started_at",
            "_snapshot",
            "last_error",
            "counters",
        },
        "sync_writers": {
            "__init__",
            "_publish",
            "_record_query",
            "_release_source_slot",
        },
    }
}


@register_rule
class ServiceContextRule(LintRule):
    """Service internal state written only from declared contexts."""

    id = "service-context"
    invariant = (
        "LinkageService loop-owned state is written only from async "
        "methods or the declared sync writers (__init__/_publish/"
        "_record_query/_release_source_slot) per the annotation table"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            table = SERVICE_STATE_TABLE.get(node.name)
            if table is None:
                continue
            yield from self._check_class(ctx, node, table)

    def _check_class(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        table: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        state = table["state"]
        sync_writers = table["sync_writers"]
        for method in cls.body:
            if isinstance(method, ast.AsyncFunctionDef):
                continue  # event-loop context: writes are single-threaded
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in sync_writers:
                continue
            for written in self._state_writes(method, state):
                node, attr = written
                yield ctx.finding(
                    node,
                    self.id,
                    f"sync method {cls.name}.{method.name} writes loop-owned "
                    f"state 'self.{attr}'; only async methods or the "
                    f"declared sync writers ({sorted(sync_writers)}) may — "
                    "extend the annotation table if this context is safe",
                )

    def _state_writes(
        self, method: ast.FunctionDef, state: Set[str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(method):
            attr = self._written_state_attr(node, state)
            if attr is not None:
                yield node, attr

    @staticmethod
    def _written_state_attr(node: ast.AST, state: Set[str]) -> Optional[str]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            root, path = attribute_chain(node.func.value)
            if root == "self" and path and path[0] in state:
                return path[0]
            return None
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            root, path = attribute_chain(target)
            if root == "self" and path and path[0] in state:
                return path[0]
        return None

"""Determinism rules: seeded randomness, clocks, float equality, set order.

These guard the reproducibility contract from ROADMAP.md: identical
links for identical inputs, bit-for-bit, across executors and runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from ..core import Finding, LintRule, ModuleContext, register_rule
from ..visitors import (
    ImportMap,
    attach_parents,
    iter_parents,
    name_tokens,
    resolved_call_name,
    terminal_name,
)

__all__ = [
    "FloatScoreEqRule",
    "SetIterationOrderRule",
    "UnseededRngRule",
    "WallClockRule",
]

#: numpy legacy global-state RNG entry points (``np.random.<fn>``) —
#: these share hidden module state and ignore the pipeline's seed plumbing.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "poisson",
        "binomial",
        "bytes",
    }
)

#: stdlib ``random`` module-level functions (global, unseeded-by-default).
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
    }
)


@register_rule
class UnseededRngRule(LintRule):
    """No unseeded or global-state RNG construction in library code."""

    id = "unseeded-rng"
    invariant = (
        "all randomness flows through explicitly seeded generators "
        "(named crc32 streams), never unseeded default_rng()/random.*"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolved_call_name(node.func, imports)
            if canonical is None:
                continue
            finding = self._classify(ctx, node, canonical)
            if finding is not None:
                yield finding

    def _classify(
        self, ctx: ModuleContext, node: ast.Call, canonical: str
    ) -> Optional[Finding]:
        seeded = bool(node.args) or any(
            keyword.arg == "seed" for keyword in node.keywords
        )
        if canonical == "numpy.random.default_rng" and not seeded:
            return ctx.finding(
                node,
                self.id,
                "np.random.default_rng() without a seed breaks run-to-run "
                "determinism; derive one (e.g. zlib.crc32 of a stream name)",
            )
        if canonical.startswith("numpy.random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail in _NUMPY_GLOBAL_FNS:
                return ctx.finding(
                    node,
                    self.id,
                    f"np.random.{tail} uses numpy's hidden global RNG state; "
                    "use a seeded np.random.default_rng(...) generator",
                )
        if canonical == "random.Random" and not seeded:
            return ctx.finding(
                node,
                self.id,
                "random.Random() without a seed breaks determinism; "
                "pass an explicit seed",
            )
        if canonical.startswith("random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail in _STDLIB_RANDOM_FNS:
                return ctx.finding(
                    node,
                    self.id,
                    f"random.{tail} draws from the interpreter-global RNG; "
                    "use a seeded random.Random(...) instance",
                )
        return None


#: Canonical names of wall-clock reads.  Modules whose *contract* is
#: timing declare ``# repro-lint: timing-module``; everything under
#: ``benchmarks/`` is timing-designated by location.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_TIMING_MARKER = "timing-module"
_TIMING_PATH_PARTS = ("benchmarks",)


@register_rule
class WallClockRule(LintRule):
    """Wall-clock reads only in modules designated for timing."""

    id = "wall-clock"
    invariant = (
        "time.time()/perf_counter()/datetime.now() appear only in "
        "timing-designated modules (# repro-lint: timing-module or "
        "benchmarks/)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap.from_tree(ctx.tree)
        clock_calls = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and resolved_call_name(node.func, imports) in _CLOCK_CALLS
        ]
        marker_line = ctx.markers.get(_TIMING_MARKER)
        path_designated = any(
            part in _TIMING_PATH_PARTS for part in ctx.rel_path.split("/")[:-1]
        )
        if marker_line is not None and not clock_calls:
            yield Finding(
                path=ctx.rel_path,
                line=marker_line,
                col=1,
                rule=self.id,
                message=(
                    "stale timing-module marker: this module performs no "
                    "wall-clock reads; remove the marker"
                ),
            )
            return
        if marker_line is not None or path_designated:
            return
        for node in clock_calls:
            yield ctx.finding(
                node,
                self.id,
                "wall-clock read outside a timing-designated module makes "
                "outputs time-dependent; move timing into a module marked "
                "'# repro-lint: timing-module' or pass timestamps in",
            )


_SCORE_TOKENS = frozenset({"score", "scores"})


@register_rule
class FloatScoreEqRule(LintRule):
    """No float ``==``/``!=`` on score-typed expressions."""

    id = "float-score-eq"
    invariant = (
        "similarity scores are floats and are never compared with =="
        "/!= (thresholds use ordering comparisons or math.isclose)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_score(left) or self._is_score(right):
                    if self._exempt_operand(left) or self._exempt_operand(right):
                        continue
                    yield ctx.finding(
                        node,
                        self.id,
                        "exact float equality on a score-typed expression is "
                        "representation-dependent; compare with a tolerance "
                        "(math.isclose) or an ordering threshold",
                    )
                    break

    @staticmethod
    def _is_score(expr: ast.expr) -> bool:
        return bool(name_tokens(terminal_name(expr)) & _SCORE_TOKENS)

    @staticmethod
    def _exempt_operand(expr: ast.expr) -> bool:
        """str/None constants make the compare identity-ish, not float."""
        return isinstance(expr, ast.Constant) and (
            expr.value is None or isinstance(expr.value, str)
        )


#: ``receiver.<method>()`` calls that make a loop body ordering-sensitive.
_ORDER_SENSITIVE_METHODS = frozenset(
    {"append", "extend", "insert", "appendleft", "extendleft", "write"}
)

#: Call targets through which set iteration order is laundered away.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset", "bool"}
)

#: Call targets that materialise (or fold) iteration order into a value.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"sum", "list", "tuple", "enumerate", "join", "array", "fromiter"}
)

#: Method calls producing set-valued results from set receivers.
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


@register_rule
class SetIterationOrderRule(LintRule):
    """No bare-set iteration feeding ordering-sensitive sinks."""

    id = "set-iteration-order"
    invariant = (
        "set iteration order (hash-randomised across processes) never "
        "reaches an ordering-sensitive sink — sort first"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        attach_parents(ctx.tree)
        for scope in self._scopes(ctx.tree):
            set_locals = self._set_locals(scope)
            for node in ast.walk(scope):
                if self._in_nested_scope(node, scope):
                    continue
                finding = self._check_node(ctx, node, set_locals)
                if finding is not None:
                    yield finding

    # ------------------------------------------------------------------
    # scope handling
    # ------------------------------------------------------------------
    @staticmethod
    def _scopes(tree: ast.Module) -> List[ast.AST]:
        scopes: List[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        return scopes

    @staticmethod
    def _in_nested_scope(node: ast.AST, scope: ast.AST) -> bool:
        for parent in iter_parents(node):
            if parent is scope:
                return False
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
        return scope is not node and not isinstance(scope, ast.Module)

    def _set_locals(self, scope: ast.AST) -> Set[str]:
        """Names bound exactly once in ``scope``, to a set-valued expression."""
        assigned_to_set: Set[str] = set()
        assigned_other: Set[str] = set()
        body = scope.body if isinstance(scope, ast.Module) else scope.body
        for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                # ``s |= other`` keeps a set a set; anything else demotes.
                if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
                    targets, value = [node.target], None
                else:
                    continue
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], None
            elif isinstance(node, ast.withitem) and node.optional_vars:
                targets, value = [node.optional_vars], None
            else:
                continue
            for target in targets:
                for name_node in ast.walk(target):
                    if not isinstance(name_node, ast.Name):
                        continue
                    if value is not None and self._is_set_expr(value, assigned_to_set):
                        if name_node.id in assigned_to_set:
                            continue
                        assigned_to_set.add(name_node.id)
                    else:
                        assigned_other.add(name_node.id)
        return assigned_to_set - assigned_other

    # ------------------------------------------------------------------
    # set-valued expression inference
    # ------------------------------------------------------------------
    def _is_set_expr(self, expr: ast.expr, set_locals: Set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_locals
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(expr.left, set_locals) or self._is_set_expr(
                expr.right, set_locals
            )
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in {
                "set",
                "frozenset",
            }:
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _SET_PRODUCING_METHODS
            ):
                return self._is_set_expr(expr.func.value, set_locals)
        return False

    # ------------------------------------------------------------------
    # sink classification
    # ------------------------------------------------------------------
    def _check_node(
        self, ctx: ModuleContext, node: ast.AST, set_locals: Set[str]
    ) -> Optional[Finding]:
        message = (
            "iterating a bare set here is hash-order dependent (varies with "
            "PYTHONHASHSEED/process); wrap the set in sorted(...)"
        )
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter, set_locals) and self._loop_is_sensitive(
                node
            ):
                return ctx.finding(node.iter, self.id, message)
            return None
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if not self._is_set_expr(node.generators[0].iter, set_locals):
                return None
            if self._comp_is_sensitive(node):
                return ctx.finding(node.generators[0].iter, self.id, message)
        return None

    @staticmethod
    def _loop_is_sensitive(loop: Union[ast.For, ast.AsyncFor]) -> bool:
        """A loop body that accumulates into an ordered artifact."""
        for node in ast.walk(ast.Module(body=list(loop.body), type_ignores=[])):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Mult)
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SENSITIVE_METHODS
            ):
                return True
        return False

    def _comp_is_sensitive(self, comp: Union[ast.ListComp, ast.GeneratorExp]) -> bool:
        """Does this comprehension's order survive into its consumer?"""
        parent = next(iter_parents(comp), None)
        if isinstance(parent, ast.Call):
            name = terminal_name(parent.func)
            if name in _ORDER_INSENSITIVE_CALLS:
                return False
            if name in _ORDER_SENSITIVE_CALLS:
                return True
        # Unknown consumer: a list comp materialises order (flag); a bare
        # generator might feed anything (stay conservative, do not flag).
        return isinstance(comp, ast.ListComp)

"""Executor-safety rules: the ``map_blocks`` worker-function contract.

Workers may run in forked processes: the payload they receive is a
copy-on-write snapshot, mutations to it (or to closed-over state) are
silently lost on the process backend and silently *shared* on the
serial/thread backends — the exact divergence the parity tests exist to
prevent.  Likewise the :class:`~repro.core.score_cache.ScoreCache` is an
in-parent structure: a worker-side ``store``/``lookup`` would fork the
cache's state per process.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Finding, LintRule, ModuleContext, register_rule
from ..visitors import attribute_chain, name_tokens, terminal_name

__all__ = [
    "NonPicklableTaskRule",
    "WorkerCacheAccessRule",
    "WorkerSharedMutationRule",
]

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)


def _map_blocks_sites(tree: ast.Module) -> List[ast.Call]:
    """Every ``<executor>.map_blocks(fn, items, payload)`` call."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "map_blocks"
        and node.args
    ]


def _enclosing_functions(
    tree: ast.Module,
) -> Dict[ast.AST, Optional[ast.AST]]:
    """Map every node to its innermost enclosing function def (or None)."""
    owner: Dict[ast.AST, Optional[ast.AST]] = {}

    def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
        owner[node] = current
        inner = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else current
        )
        for child in ast.iter_child_nodes(node):
            visit(child, inner)

    visit(tree, None)
    return owner


@register_rule
class NonPicklableTaskRule(LintRule):
    """Worker functions must be top-level (picklable for fork/spawn)."""

    id = "non-picklable-task"
    invariant = (
        "functions handed to Executor.map_blocks are module-level defs "
        "(picklable across the process-backend boundary), never lambdas "
        "or nested closures"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        owner = None
        for call in _map_blocks_sites(ctx.tree):
            fn = call.args[0]
            if isinstance(fn, ast.Lambda):
                yield ctx.finding(
                    fn,
                    self.id,
                    "lambda passed to map_blocks cannot cross the process "
                    "boundary (not picklable); hoist it to a module-level def",
                )
                continue
            if not isinstance(fn, ast.Name):
                continue
            if owner is None:
                owner = _enclosing_functions(ctx.tree)
            definition = self._local_def(ctx.tree, fn.id)
            if definition is not None and owner.get(definition) is not None:
                yield ctx.finding(
                    fn,
                    self.id,
                    f"{fn.id!r} is defined inside another function; nested "
                    "defs are not picklable for the process backend — hoist "
                    "it to module level",
                )

    @staticmethod
    def _local_def(tree: ast.Module, name: str) -> Optional[ast.AST]:
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None


@register_rule
class WorkerSharedMutationRule(LintRule):
    """Worker functions must not mutate the shared payload or outer state."""

    id = "worker-shared-mutation"
    invariant = (
        "map_blocks workers treat their payload argument as read-only and "
        "never mutate closed-over or global state (results diverge "
        "between thread and process backends otherwise)"
    )

    def finalize(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        # Resolve each worker function to its def, cross-module when the
        # name was imported, then audit the def's body.
        defs: Dict[str, List[Tuple[ModuleContext, ast.FunctionDef]]] = {}
        for ctx in contexts:
            for node in ctx.tree.body:
                if isinstance(node, ast.FunctionDef):
                    defs.setdefault(node.name, []).append((ctx, node))

        audited: Set[int] = set()
        for ctx in contexts:
            for call in _map_blocks_sites(ctx.tree):
                fn = call.args[0]
                if not isinstance(fn, ast.Name):
                    continue
                for def_ctx, definition in defs.get(fn.id, ()):
                    if id(definition) in audited:
                        continue
                    audited.add(id(definition))
                    yield from self._audit_worker(def_ctx, definition)

    def _audit_worker(
        self, ctx: ModuleContext, definition: ast.FunctionDef
    ) -> Iterator[Finding]:
        params = {arg.arg for arg in definition.args.args}
        params.update(arg.arg for arg in definition.args.posonlyargs)
        params.update(arg.arg for arg in definition.args.kwonlyargs)
        payload = definition.args.args[0].arg if definition.args.args else None
        local_names = self._local_bindings(definition) | params

        for node in ast.walk(definition):
            if isinstance(node, ast.Global):
                yield ctx.finding(
                    node,
                    self.id,
                    f"worker {definition.name!r} declares "
                    f"'global {', '.join(node.names)}': module state is not "
                    "shared back from process workers",
                )
                continue
            root = self._mutated_root(node)
            if root is None:
                continue
            if root == payload:
                yield ctx.finding(
                    node,
                    self.id,
                    f"worker {definition.name!r} mutates its shared payload "
                    f"argument {root!r}; payloads are read-only snapshots "
                    "(copy-on-write under fork) — return new data instead",
                )
            elif root not in local_names and not hasattr(builtins, root):
                yield ctx.finding(
                    node,
                    self.id,
                    f"worker {definition.name!r} mutates non-local name "
                    f"{root!r}; workers must not write through closures or "
                    "module globals",
                )

    @classmethod
    def _local_bindings(cls, definition: ast.FunctionDef) -> Set[str]:
        bound: Set[str] = set()
        for node in ast.walk(definition):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    bound.update(cls._binding_names(target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bound.update(cls._binding_names(node.target))
            elif isinstance(node, ast.withitem) and node.optional_vars:
                bound.update(cls._binding_names(node.optional_vars))
            elif isinstance(node, ast.comprehension):
                bound.update(cls._binding_names(node.target))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(node.name)
        return bound

    @classmethod
    def _binding_names(cls, target: ast.expr) -> Set[str]:
        """Names a target *binds* — ``x[0] = ...`` binds nothing new."""
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            names: Set[str] = set()
            for element in target.elts:
                names.update(cls._binding_names(element))
            return names
        if isinstance(target, ast.Starred):
            return cls._binding_names(target.value)
        return set()

    @staticmethod
    def _mutated_root(node: ast.AST) -> Optional[str]:
        """Root name a statement/call writes *through* (not rebinding)."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            root, _ = attribute_chain(node.func.value)
            return root
        for target in targets:
            # Plain name rebinding is local; only attribute/subscript
            # stores reach through to shared structure.
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root, _ = attribute_chain(target)
                return root
        return None


#: ScoreCache mutation/lookup entry points.
_CACHE_METHODS = frozenset(
    {
        "store",
        "store_batch",
        "lookup",
        "lookup_batch",
        "invalidate_pairs",
        "drop_entities",
    }
)

#: Modules allowed to touch a ScoreCache (in-parent scoring paths only).
_CACHE_MODULE_SUFFIXES = (
    "repro/core/score_cache.py",
    "repro/core/similarity.py",
    "repro/core/streaming.py",
)

_CACHE_TOKENS = frozenset({"cache"})


@register_rule
class WorkerCacheAccessRule(LintRule):
    """ScoreCache store/lookup only from designated in-parent modules."""

    id = "worker-cache-access"
    invariant = (
        "ScoreCache store/lookup happens only in the in-parent scoring "
        "modules (core/score_cache, core/similarity, core/streaming) — "
        "a worker-side write would fork cache state per process"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel_path.endswith(_CACHE_MODULE_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CACHE_METHODS
            ):
                continue
            receiver = terminal_name(node.func.value)
            if name_tokens(receiver) & _CACHE_TOKENS:
                yield ctx.finding(
                    node,
                    self.id,
                    f"ScoreCache.{node.func.attr} called outside the "
                    "in-parent scoring modules; cache state must never be "
                    "touched from worker-side code",
                )

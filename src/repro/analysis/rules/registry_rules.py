"""Registry-hygiene rules: unique names, exported plugins, config knobs.

The pipeline's extensibility story is its registries; these rules keep
them coherent: a plugin name registered twice (without ``replace=True``)
would make behaviour import-order dependent, a public plugin missing
from ``__all__`` is invisible to the api-surface snapshot, and a
registry with no :class:`~repro.pipeline.config.LinkageConfig` knob is
unreachable from configuration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Finding, LintRule, ModuleContext, register_rule
from ..visitors import terminal_name

__all__ = [
    "REGISTER_HELPERS",
    "REGISTRY_CONFIG_FIELDS",
    "RegistryConfigKnobRule",
    "RegistryDuplicateRule",
    "RegistryExportRule",
]

#: Helper decorators that wrap ``<registry>.register(name)`` — maps the
#: helper's name to the registry variable it feeds.
REGISTER_HELPERS: Dict[str, str] = {"register_scenario": "scenarios"}

#: Registry variable -> the LinkageConfig field that selects from it.
REGISTRY_CONFIG_FIELDS: Dict[str, str] = {
    "candidate_stages": "candidates",
    "matchers": "matching",
    "threshold_methods": "threshold",
    "executors": "executor",
    "retention_policies": "retention",
}

_CONFIG_CLASS = "LinkageConfig"


@dataclass
class _Registration:
    """One observed ``register(...)`` site."""

    registry: str
    name: Optional[str]  # literal plugin name, None when dynamic
    symbol: Optional[str]  # registered def/class name, None when unknown
    replace: bool
    ctx: ModuleContext
    node: ast.AST


def _literal_str(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def _register_call(call: ast.Call) -> Optional[Tuple[str, Optional[str], bool]]:
    """Decode ``<registry>.register("name", replace=...)`` calls."""
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "register"
        and call.args
    ):
        registry = terminal_name(call.func.value)
        if registry is None:
            return None
        replace = any(
            keyword.arg == "replace"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )
        return registry, _literal_str(call.args[0]), replace
    if (
        isinstance(call.func, ast.Name)
        and call.func.id in REGISTER_HELPERS
        and call.args
    ):
        replace = any(
            keyword.arg == "replace"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )
        return (
            REGISTER_HELPERS[call.func.id],
            _literal_str(call.args[0]),
            replace,
        )
    return None


def _collect_registrations(ctx: ModuleContext) -> List[_Registration]:
    found: List[_Registration] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                decoded = _register_call(decorator)
                if decoded is None:
                    continue
                registry, name, replace = decoded
                found.append(
                    _Registration(
                        registry=registry,
                        name=name,
                        symbol=node.name,
                        replace=replace,
                        ctx=ctx,
                        node=decorator,
                    )
                )
        elif isinstance(node, ast.Call):
            # Call style: ``reg.register("name")(symbol)``.
            if not isinstance(node.func, ast.Call):
                continue
            decoded = _register_call(node.func)
            if decoded is None:
                continue
            registry, name, replace = decoded
            symbol = (
                node.args[0].id
                if node.args and isinstance(node.args[0], ast.Name)
                else None
            )
            found.append(
                _Registration(
                    registry=registry,
                    name=name,
                    symbol=symbol,
                    replace=replace,
                    ctx=ctx,
                    node=node,
                )
            )
    return found


def _registry_instantiations(
    ctx: ModuleContext,
) -> List[Tuple[str, ast.AST]]:
    """``var = Registry(...)`` statements (annotated or plain)."""
    found: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(ctx.tree):
        value: Optional[ast.expr] = None
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and terminal_name(value.func) == "Registry"
        ):
            found.append((target.id, node))
    return found


def _module_all(tree: ast.Module) -> Optional[Set[str]]:
    """Names in ``__all__``, or ``None`` when the module declares none."""
    names: Optional[Set[str]] = None
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if names is None:
                    names = set()
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                    for element in value.elts:
                        literal = _literal_str(element)
                        if literal is not None:
                            names.add(literal)
    return names


def _top_level_defs(tree: ast.Module) -> Set[str]:
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }


def _imported_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


@register_rule
class RegistryDuplicateRule(LintRule):
    """Every plugin name is registered at most once per registry."""

    id = "registry-duplicate"
    invariant = (
        "each literal plugin name is registered once per registry "
        "(re-registration without replace=True is import-order roulette)"
    )

    def finalize(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        first_seen: Dict[Tuple[str, str], _Registration] = {}
        for ctx in contexts:
            for registration in _collect_registrations(ctx):
                if registration.name is None or registration.replace:
                    continue
                key = (registration.registry, registration.name)
                earlier = first_seen.get(key)
                if earlier is None:
                    first_seen[key] = registration
                    continue
                yield registration.ctx.finding(
                    registration.node,
                    self.id,
                    f"plugin {registration.name!r} is already registered in "
                    f"{registration.registry!r} at "
                    f"{earlier.ctx.rel_path}:{earlier.node.lineno}; pick a "
                    "unique name or pass replace=True deliberately",
                )


@register_rule
class RegistryExportRule(LintRule):
    """Public registered plugins are exported via ``__all__``."""

    id = "registry-export"
    invariant = (
        "every public (non-underscore) registered plugin appears in its "
        "defining module's __all__ so the api-surface snapshot sees it"
    )

    def finalize(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        by_def: Dict[str, List[ModuleContext]] = {}
        for ctx in contexts:
            for name in _top_level_defs(ctx.tree):
                by_def.setdefault(name, []).append(ctx)

        for ctx in contexts:
            for registration in _collect_registrations(ctx):
                symbol = registration.symbol
                if symbol is None or symbol.startswith("_"):
                    continue  # private plugins are named by the registry only
                defining = self._defining_context(ctx, symbol, by_def)
                if defining is None:
                    continue  # defined outside the linted tree
                exported = _module_all(defining.tree)
                if exported is None:
                    yield registration.ctx.finding(
                        registration.node,
                        self.id,
                        f"plugin {symbol!r} is registered but its defining "
                        f"module {defining.rel_path} declares no __all__",
                    )
                elif symbol not in exported:
                    yield registration.ctx.finding(
                        registration.node,
                        self.id,
                        f"registered plugin {symbol!r} is missing from "
                        f"__all__ of {defining.rel_path}; export it or make "
                        "it private (leading underscore)",
                    )

    @staticmethod
    def _defining_context(
        ctx: ModuleContext,
        symbol: str,
        by_def: Dict[str, List[ModuleContext]],
    ) -> Optional[ModuleContext]:
        if symbol in _top_level_defs(ctx.tree):
            return ctx
        if symbol in _imported_names(ctx.tree):
            candidates = by_def.get(symbol, [])
            if len(candidates) == 1:
                return candidates[0]
        return None


@register_rule
class RegistryConfigKnobRule(LintRule):
    """Every registry is reachable from configuration (or declared not)."""

    id = "registry-config-knob"
    invariant = (
        "each Registry(...) instance maps to a validated LinkageConfig "
        "field (REGISTRY_CONFIG_FIELDS) or carries a scoped disable "
        "naming its non-config selection mechanism"
    )

    def finalize(self, contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
        config_ctx = self._config_context(contexts)
        config_fields = (
            self._config_fields(config_ctx) if config_ctx is not None else None
        )
        config_names = (
            {
                node.id
                for node in ast.walk(config_ctx.tree)
                if isinstance(node, ast.Name)
            }
            if config_ctx is not None
            else None
        )
        for ctx in contexts:
            for var, node in _registry_instantiations(ctx):
                field = REGISTRY_CONFIG_FIELDS.get(var)
                if field is None:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"registry {var!r} has no LinkageConfig field mapping "
                        "in REGISTRY_CONFIG_FIELDS; add one (with config "
                        "validation) or disable this rule here naming the "
                        "mechanism that selects from it",
                    )
                    continue
                if config_fields is None or config_names is None:
                    continue  # config module not part of this lint pass
                if field not in config_fields:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"registry {var!r} maps to LinkageConfig field "
                        f"{field!r}, but {_CONFIG_CLASS} declares no such "
                        "field",
                    )
                elif var not in config_names:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"registry {var!r} is never referenced by the "
                        f"{_CONFIG_CLASS} module's validation; wire the "
                        f"{field!r} knob through __post_init__",
                    )

    @staticmethod
    def _config_context(
        contexts: Sequence[ModuleContext],
    ) -> Optional[ModuleContext]:
        for ctx in contexts:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                    return ctx
        return None

    @staticmethod
    def _config_fields(ctx: ModuleContext) -> Set[str]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                return {
                    item.target.id
                    for item in node.body
                    if isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                }
        return set()

"""Persistence rules: snapshot bytes reach disk only through ``repro.store``.

The crash-restart guarantee — a mid-write kill leaves the previous
snapshot fully intact — holds because every byte under a snapshot
directory is produced by the ``repro.store`` writers: tmp-dir staging,
fsync, a digest manifest written last, ``os.replace`` promotion.  A
direct ``open(..., "w")`` or ``np.save`` into a snapshot path anywhere
else bypasses all of that and can leave a half-written file that a
restart will then trust (the serve-layer races pattern, applied to
persistence).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from ..core import Finding, LintRule, ModuleContext, register_rule
from ..visitors import ImportMap, name_tokens, resolved_call_name

__all__ = ["SnapshotIoRule"]

_SNAPSHOT_TOKENS = frozenset({"snapshot", "snap"})

#: The blessed writer modules (matched on ``rel_path`` substring so a
#: fixture copied elsewhere never inherits the privilege).
_STORE_MODULE_MARKER = "repro/store/"

#: Any of these characters in an ``open`` mode string means a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: ``module.function`` serialisers whose *first* argument is the target.
_PATH_FIRST_WRITERS = frozenset(
    {"numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.savetxt"}
)
#: Serialisers whose *second* argument is the destination file.
_FILE_SECOND_WRITERS = frozenset({"pickle.dump", "json.dump"})
#: ``Path`` methods that write in place.
_PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

_STRING_TOKEN_RE = re.compile(r"[^a-z0-9]+")


def _expr_tokens(expr: ast.expr) -> Set[str]:
    """Every identifier/string token reachable in a path expression.

    Walks the whole expression so joined paths (``snapshot_dir / "x"``,
    ``os.path.join(root, "snap-000001")``) are seen through both their
    variable names and any literal path components.
    """
    tokens: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            tokens |= name_tokens(node.id)
        elif isinstance(node, ast.Attribute):
            tokens |= name_tokens(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            tokens.update(
                part
                for part in _STRING_TOKEN_RE.split(node.value.lower())
                if part
            )
    return tokens


def _is_snapshot_path(expr: ast.expr) -> bool:
    return bool(_expr_tokens(expr) & _SNAPSHOT_TOKENS)


def _write_mode(mode: Optional[ast.expr]) -> bool:
    """True only for a *literal* mode string containing a write flag."""
    return (
        mode is not None
        and isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and bool(set(mode.value) & _WRITE_MODE_CHARS)
    )


def _mode_argument(node: ast.Call, position: int) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


@register_rule
class SnapshotIoRule(LintRule):
    """Snapshot directories are written only by ``repro.store``."""

    id = "snapshot-io"
    invariant = (
        "bytes land in a snapshot directory only via the repro.store "
        "writers (tmp-dir staging, digest manifest, os.replace promote) "
        "— a direct open()/np.save write can survive a crash half-done "
        "and be trusted on restart"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _STORE_MODULE_MARKER in ctx.rel_path:
            return
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._snapshot_write(node, imports)
            if what is not None:
                yield ctx.finding(
                    node,
                    self.id,
                    f"{what} writes into a snapshot path outside "
                    "repro.store; route it through write_snapshot / "
                    "ChunkedColumnStore so a mid-write crash cannot "
                    "leave a half-written file a restart will trust",
                )

    @staticmethod
    def _snapshot_write(node: ast.Call, imports: ImportMap) -> Optional[str]:
        func = node.func
        # open(snapshot_path, "w") / builtins.
        if isinstance(func, ast.Name) and func.id == "open":
            if (
                node.args
                and _write_mode(_mode_argument(node, 1))
                and _is_snapshot_path(node.args[0])
            ):
                return "open() in a write mode"
            return None
        resolved = resolved_call_name(func, imports)
        if resolved in _PATH_FIRST_WRITERS and node.args:
            if _is_snapshot_path(node.args[0]):
                return f"{resolved}()"
            return None
        if resolved in _FILE_SECOND_WRITERS and len(node.args) >= 2:
            if _is_snapshot_path(node.args[1]):
                return f"{resolved}()"
            return None
        if isinstance(func, ast.Attribute):
            # snap_path.write_text(...) / snap_path.open("w")
            if func.attr in _PATH_WRITE_METHODS and _is_snapshot_path(
                func.value
            ):
                return f".{func.attr}()"
            if (
                func.attr == "open"
                and _write_mode(_mode_argument(node, 0))
                and _is_snapshot_path(func.value)
            ):
                return ".open() in a write mode"
        return None

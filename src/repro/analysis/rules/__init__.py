"""The built-in repro-lint rule pack.

Importing this package registers every rule in
:data:`repro.analysis.lint_rules`; each module groups the rules guarding
one family of invariants (see ``docs/ARCHITECTURE.md`` § Static
analysis).
"""

from .determinism import (
    FloatScoreEqRule,
    SetIterationOrderRule,
    UnseededRngRule,
    WallClockRule,
)
from .executor import (
    NonPicklableTaskRule,
    WorkerCacheAccessRule,
    WorkerSharedMutationRule,
)
from .persistence import SnapshotIoRule
from .registry_rules import (
    RegistryConfigKnobRule,
    RegistryDuplicateRule,
    RegistryExportRule,
)
from .serve import ServiceContextRule, SnapshotMutationRule

__all__ = [
    "FloatScoreEqRule",
    "NonPicklableTaskRule",
    "RegistryConfigKnobRule",
    "RegistryDuplicateRule",
    "RegistryExportRule",
    "ServiceContextRule",
    "SetIterationOrderRule",
    "SnapshotIoRule",
    "SnapshotMutationRule",
    "UnseededRngRule",
    "WallClockRule",
    "WorkerCacheAccessRule",
    "WorkerSharedMutationRule",
]

"""String-keyed plugin registries.

Every swappable piece of this package — the pipeline's candidate
generators, matchers and stop-threshold methods, and the execution
backends of :mod:`repro.exec` — lives in a :class:`Registry`.  Built-in
implementations register themselves at import time; user code extends the
pipeline the same way, with no edits to ``repro``:

>>> animals = Registry("animal")
>>> @animals.register("cat")
... def make_cat():
...     return "meow"
>>> animals.get("cat")()
'meow'
>>> sorted(animals.names())
['cat']

Unknown names fail with an error that lists what *is* registered, and
duplicate registrations are rejected (shadowing an existing strategy
silently is never what anyone wants — pass ``replace=True`` to do it on
purpose):

>>> animals.get("dog")
Traceback (most recent call last):
    ...
KeyError: "unknown animal 'dog'; registered animals: ['cat']"
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, TypeVar

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from strategy names to implementations.

    ``kind`` is the human-facing noun used in error messages ("candidate
    stage", "matcher", ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, *, replace: bool = False
    ) -> Callable[[T], T]:
        """Decorator registering an implementation under ``name``.

        Registering a name twice raises :class:`ValueError` unless
        ``replace=True`` (deliberate override, e.g. in tests).
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def decorator(obj: T) -> T:
            if not replace and name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass replace=True to override it"
                )
            self._entries[name] = obj
            return obj

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration (no-op when absent) — test hygiene."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """The implementation registered under ``name``.

        Raises a :class:`KeyError` naming the known alternatives, so a
        typo in a config file points straight at the fix.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; "
                f"registered {self.kind}s: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._entries)})"

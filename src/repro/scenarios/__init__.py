"""Scenario zoo: named, seeded, adversarial linkage scenarios.

The paper evaluates on two well-behaved synthetic workloads; production
data misbehaves.  This package turns "does the linker still work when the
data misbehaves" into named, reproducible units: each scenario wraps a
synthetic world (:mod:`repro.data.synth`) plus a perturbation — GPS
jitter bursts, mid-stream device swaps, population drift, bursty arrival,
dropout gaps, duplicate ingestion — and emits a ground-truthed
:class:`~repro.data.sampling.LinkagePair` (or, via
:meth:`Scenario.stream`, a time-ordered event sequence) deterministic in
``(name, seed, scale)``.

Scenarios are plugins in the same registry pattern as candidate stages,
matchers, retention policies and executors; the scenario-matrix harness
(:func:`repro.eval.harness.run_scenarios`) fans the zoo out against a set
of configurations and the CI regression gate pins per-scenario F1 floors
(``benchmarks/bench_scenarios.py``).
"""

from .base import (
    DEFAULT_SEED,
    Scenario,
    ScenarioRound,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_pair,
    scenarios,
    stream_rounds,
)
from .builtin import (
    burstify_arrivals,
    cab_scenario_pair,
    checkin_scenario_pair,
    clip_time_range,
    drop_time_gaps,
    duplicate_records,
    gps_jitter_pair,
    jitter_bursts,
    swap_device_tails,
)

__all__ = [
    "DEFAULT_SEED",
    "Scenario",
    "ScenarioRound",
    "scenarios",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_pair",
    "stream_rounds",
    "cab_scenario_pair",
    "checkin_scenario_pair",
    "jitter_bursts",
    "swap_device_tails",
    "clip_time_range",
    "burstify_arrivals",
    "drop_time_gaps",
    "duplicate_records",
    "gps_jitter_pair",
]

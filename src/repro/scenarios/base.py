"""Scenario zoo core: named, seeded, ground-truthed linkage scenarios.

A *scenario* wraps the synthetic worlds of :mod:`repro.data.synth` plus a
(possibly adversarial) perturbation into one named, reproducible unit:
given a seed and a scale it emits a :class:`~repro.data.sampling.LinkagePair`
with held-out ground truth, and — for streaming robustness work — the same
records replayed as a time-ordered event sequence
(:meth:`Scenario.stream`) suitable for
:meth:`repro.core.streaming.StreamingLinker.observe`.

Scenarios live in the same string-keyed plugin :class:`~repro.registry.Registry`
as candidate generators, matchers, retention policies and executors —
register your own without editing ``repro``:

>>> from repro.scenarios import register_scenario, scenario_pair
>>> @register_scenario("tiny_demo", description="two-entity toy pair")
... def _build(seed, scale):
...     from repro.data import LocationDataset, LinkagePair
...     import numpy as np
...     ids = ["a", "b"]
...     columns = {
...         e: (np.arange(6) * 600.0, np.full(6, 37.0 + k), np.full(6, -122.0))
...         for k, e in enumerate(ids)
...     }
...     side = LocationDataset.from_arrays(ids, columns, "demo")
...     return LinkagePair(side, side.renamed("demo2"), {"a": "a", "b": "b"})
>>> scenario_pair("tiny_demo").num_common
2
>>> from repro.scenarios import scenarios
>>> scenarios.unregister("tiny_demo")  # test hygiene

``scale`` shrinks or grows the underlying world (entity counts and
durations) without changing the perturbation's character, so CI smoke
runs and full benchmark runs exercise the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional

import numpy as np

from ..data.records import Record
from ..data.sampling import LinkagePair
from ..registry import Registry

__all__ = [
    "DEFAULT_SEED",
    "Scenario",
    "ScenarioRound",
    "scenarios",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_pair",
    "stream_rounds",
]

#: Seed used when a caller does not pick one — every scenario is fully
#: reproducible from (name, seed, scale).
DEFAULT_SEED = 7

#: Builder signature: ``(seed, scale) -> LinkagePair``.
ScenarioBuilder = Callable[[int, float], LinkagePair]

#: The scenario registry (same plugin pattern as ``candidate_stages``,
#: ``matchers``, ``retention_policies`` and ``executors``).
scenarios: Registry["Scenario"] = Registry("scenario")  # repro-lint: disable=registry-config-knob -- scenarios are picked by CLI/harness arguments, not LinkageConfig


class ScenarioRound(NamedTuple):
    """One round of a scenario replayed as a stream.

    ``left`` / ``right`` are the records whose timestamps fall into this
    round's slice of the pair's global time range, in time order — ready
    for :meth:`~repro.core.streaming.StreamingLinker.observe`.
    """

    round_index: int
    left: List[Record]
    right: List[Record]


def stream_rounds(left, right, rounds: int = 4) -> List[ScenarioRound]:
    """Replay a dataset pair as a time-ordered event sequence.

    The pair's global time range is cut into ``rounds`` equal slices;
    each round carries both sides' records whose timestamps fall in that
    slice (the last round also takes the range's endpoint), sorted by
    ``(timestamp, entity_id)``.  Concatenating all rounds replays every
    record of both datasets exactly once — the exactly-once contract the
    serving-layer ingestion tests pin.

    This is the engine behind :meth:`Scenario.stream`; it also feeds the
    ``slim-link serve`` front door, which replays two CSV datasets (or a
    scenario pair) through :class:`repro.serve.LinkageService`.
    """
    if rounds < 1:
        raise ValueError(f"need at least one round, got {rounds}")
    start = min(left.time_range()[0], right.time_range()[0])
    end = max(left.time_range()[1], right.time_range()[1])
    edges = np.linspace(start, end, rounds + 1)
    buckets: Dict[int, ScenarioRound] = {
        k: ScenarioRound(k, [], []) for k in range(rounds)
    }
    for side_name, dataset in (("left", left), ("right", right)):
        for record in dataset.records():
            index = int(np.searchsorted(edges, record.timestamp, "right")) - 1
            index = min(max(index, 0), rounds - 1)
            getattr(buckets[index], side_name).append(record)
    for cell in buckets.values():
        cell.left.sort(key=lambda r: (r.timestamp, r.entity_id))
        cell.right.sort(key=lambda r: (r.timestamp, r.entity_id))
    return [buckets[k] for k in range(rounds)]


@dataclass(frozen=True)
class Scenario:
    """A named, seeded scenario generator.

    Attributes
    ----------
    name:
        Registry key (``"gps_jitter_burst"``, ...).
    description:
        One line of what the perturbation models.
    builder:
        ``(seed, scale) -> LinkagePair``; must be deterministic in its
        arguments (same inputs, byte-identical pair) — executor workers
        regenerate pairs from nothing else.
    default_seed:
        Seed used when :meth:`pair` is called without one.
    """

    name: str
    description: str
    builder: ScenarioBuilder
    default_seed: int = DEFAULT_SEED

    def pair(
        self, seed: Optional[int] = None, scale: float = 1.0
    ) -> LinkagePair:
        """The scenario's ground-truthed linkage pair."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.builder(
            self.default_seed if seed is None else int(seed), float(scale)
        )

    def stream(
        self,
        rounds: int = 4,
        seed: Optional[int] = None,
        scale: float = 1.0,
    ) -> List[ScenarioRound]:
        """The same scenario as a streaming event sequence.

        The pair's global time range is cut into ``rounds`` equal slices;
        each round carries both sides' records whose timestamps fall in
        that slice (the last round also takes the range's endpoint).
        Concatenating all rounds replays every record of :meth:`pair`
        exactly once, so streaming-vs-batch parity checks are meaningful
        (see :func:`stream_rounds`, which this delegates to).
        """
        pair = self.pair(seed=seed, scale=scale)
        return stream_rounds(pair.left, pair.right, rounds)


def register_scenario(
    name: str,
    description: str,
    default_seed: int = DEFAULT_SEED,
    replace: bool = False,
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator registering a ``(seed, scale) -> LinkagePair`` builder."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        scenario = Scenario(
            name=name,
            description=description,
            builder=builder,
            default_seed=default_seed,
        )
        scenarios.register(name, replace=replace)(scenario)
        return builder

    return decorator


def get_scenario(name: str) -> Scenario:
    """The registered :class:`Scenario` (KeyError names the known ones)."""
    return scenarios.get(name)


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return scenarios.names()


def scenario_pair(
    name: str, seed: Optional[int] = None, scale: float = 1.0
) -> LinkagePair:
    """Shorthand: ``get_scenario(name).pair(seed, scale)``."""
    return get_scenario(name).pair(seed=seed, scale=scale)

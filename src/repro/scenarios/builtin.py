"""The built-in scenario zoo: adversarial perturbations of the synth worlds.

Every scenario starts from one of the paper's synthetic stand-ins — the
dense cab world or the sparse global check-in world — samples a
ground-truthed :class:`~repro.data.sampling.LinkagePair` with the paper's
protocol, and then misbehaves the way production feeds do:

============================  ==============================================
``baseline_cab``              clean dense-city control (no perturbation)
``checkin_baseline``          clean sparse check-in control (two services)
``gps_jitter_burst``          urban-canyon GPS: noise bursts of hundreds of
                              metres on one side
``device_swap``               entities hand devices to each other mid-stream
                              (trace tails swapped between id pairs)
``population_drift``          the two services observed different epochs;
                              only part of the population overlaps in time
``bursty_arrival``            one side's records arrive in tight bursts
                              (upload-on-wifi batching) instead of smoothly
``dropout_gaps``              coverage holes: whole time intervals of
                              records lost per entity, both sides
``duplicate_ingestion``       at-least-once delivery: a fraction of one
                              side's records re-ingested with small
                              timestamp/GPS deltas
============================  ==============================================

Perturbations run *after* sampling and anonymisation, so ground truth
stays the honest held-out mapping (pruned when a perturbation starves an
entity below the paper's min-record filter).  Everything is deterministic
in ``(name, seed, scale)``.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional, Tuple

import numpy as np

from ..data.records import LocationDataset
from ..data.sampling import LinkagePair, sample_linkage_pair
from ..data.synth import default_cab_world, default_sm_world
from .base import register_scenario

__all__ = [
    "cab_scenario_pair",
    "checkin_scenario_pair",
    "jitter_bursts",
    "swap_device_tails",
    "clip_time_range",
    "burstify_arrivals",
    "drop_time_gaps",
    "duplicate_records",
    "gps_jitter_pair",
]

#: Records an entity must keep after a destructive perturbation (the
#: paper's Sec. 5.1 filter).
MIN_RECORDS = 5

Columns = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _sub_rng(seed: int, tag: str) -> np.random.Generator:
    """A generator for one perturbation step, decorrelated from the world
    seed by a stable tag hash (crc32: reproducible across processes)."""
    return np.random.default_rng([int(seed), zlib.crc32(tag.encode())])


def _transform(
    dataset: LocationDataset,
    fn: Callable[[str, np.ndarray, np.ndarray, np.ndarray], Optional[Columns]],
) -> LocationDataset:
    """Apply a per-entity column transform; ``None``/empty drops the entity."""
    ids = []
    per_entity = {}
    for entity in dataset.entities:
        columns = fn(entity, *dataset.columns(entity))
        if columns is None or len(columns[0]) == 0:
            continue
        ids.append(entity)
        per_entity[entity] = columns
    return LocationDataset.from_arrays(ids, per_entity, dataset.name)


def _clip_coords(lats: np.ndarray, lngs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.clip(lats, -89.9, 89.9),
        ((np.asarray(lngs) + 180.0) % 360.0) - 180.0,
    )


def _rebuild(
    pair: LinkagePair,
    left: LocationDataset,
    right: LocationDataset,
    min_records: int = MIN_RECORDS,
) -> LinkagePair:
    """A new pair over perturbed sides, ground truth pruned to survivors."""
    left = left.filter_min_records(min_records)
    right = right.filter_min_records(min_records)
    truth = {
        l: r
        for l, r in pair.ground_truth.items()
        if l in left and r in right
    }
    return LinkagePair(left=left, right=right, ground_truth=truth)


# ---------------------------------------------------------------------------
# base worlds
# ---------------------------------------------------------------------------
def cab_scenario_pair(seed: int, scale: float) -> LinkagePair:
    """A clean dense-city pair at the given scale (the Cab protocol)."""
    num_taxis = max(12, int(round(36 * scale)))
    duration_days = min(2.0, max(0.3, 0.8 * scale))
    world = default_cab_world(
        num_taxis=num_taxis,
        duration_days=duration_days,
        sample_period_seconds=240.0,
        seed=seed,
    ).generate()
    return sample_linkage_pair(
        world,
        intersection_ratio=0.5,
        inclusion_probability=0.5,
        rng=_sub_rng(seed, "sample/cab"),
    )


def checkin_scenario_pair(seed: int, scale: float) -> LinkagePair:
    """A clean sparse check-in pair at the given scale (the SM protocol)."""
    num_users = max(40, int(round(220 * scale)))
    world = default_sm_world(
        num_users=num_users,
        duration_days=min(12.0, max(3.0, 8.0 * scale)),
        seed=seed,
    )
    return world.two_services(
        intersection_ratio=0.5,
        inclusion_probability=0.7,
        rng=_sub_rng(seed, "sample/checkin"),
    )


# ---------------------------------------------------------------------------
# perturbation primitives (reused by tests and custom scenarios)
# ---------------------------------------------------------------------------
def jitter_bursts(
    dataset: LocationDataset,
    rng: np.random.Generator,
    amplitude_meters: float,
    bursts: int = 4,
    burst_fraction: float = 0.35,
) -> LocationDataset:
    """Add heavy GPS noise inside randomly placed time bursts.

    Models urban-canyon / spoofed-GPS episodes: outside the bursts fixes
    are untouched, inside them coordinates get Gaussian noise of
    ``amplitude_meters``.  ``amplitude_meters=0`` is the identity, which
    makes the knob usable for monotone-degradation metamorphic tests.
    """
    if amplitude_meters < 0:
        raise ValueError(f"amplitude must be non-negative, got {amplitude_meters}")
    if amplitude_meters == 0:
        return dataset
    start, end = dataset.time_range()
    span = max(end - start, 1.0)
    burst_length = span * burst_fraction / max(1, bursts)
    burst_starts = np.sort(
        rng.uniform(start, max(start, end - burst_length), bursts)
    )
    lat_sigma = amplitude_meters / 111_320.0

    def perturb(entity: str, t: np.ndarray, lat: np.ndarray, lng: np.ndarray):
        inside = np.zeros(len(t), dtype=bool)
        for burst_start in burst_starts:
            inside |= (t >= burst_start) & (t < burst_start + burst_length)
        lat = lat + rng.normal(0.0, lat_sigma, len(t)) * inside
        lng = lng + rng.normal(0.0, lat_sigma, len(t)) * inside
        lat, lng = _clip_coords(lat, lng)
        return t, lat, lng

    return _transform(dataset, perturb)


def swap_device_tails(
    dataset: LocationDataset,
    rng: np.random.Generator,
    swap_fraction: float = 0.5,
) -> LocationDataset:
    """Swap the post-cut record tails between random entity pairs.

    Models devices changing hands (or SIMs re-assigned) mid-stream: each
    chosen pair of entities exchanges every record after their combined
    median timestamp, so both traces become two-identity mixtures while
    ids and record counts stay plausible.
    """
    entities = dataset.entities
    pair_count = int(len(entities) * swap_fraction / 2)
    if pair_count < 1:
        return dataset
    chosen = rng.choice(len(entities), size=2 * pair_count, replace=False)
    columns = {entity: dataset.columns(entity) for entity in entities}
    for a_index, b_index in chosen.reshape(-1, 2):
        a, b = entities[int(a_index)], entities[int(b_index)]
        t_a, lat_a, lng_a = columns[a]
        t_b, lat_b, lng_b = columns[b]
        cut = float(np.median(np.concatenate([t_a, t_b])))
        head_a, head_b = t_a < cut, t_b < cut
        columns[a] = tuple(
            np.concatenate([col_a[head_a], col_b[~head_b]])
            for col_a, col_b in ((t_a, t_b), (lat_a, lat_b), (lng_a, lng_b))
        )
        columns[b] = tuple(
            np.concatenate([col_b[head_b], col_a[~head_a]])
            for col_a, col_b in ((t_a, t_b), (lat_a, lat_b), (lng_a, lng_b))
        )
    return LocationDataset.from_arrays(entities, columns, dataset.name)


def clip_time_range(
    dataset: LocationDataset, lo: float, hi: float
) -> LocationDataset:
    """Keep only records with timestamps in ``[lo, hi)``."""

    def perturb(entity: str, t: np.ndarray, lat: np.ndarray, lng: np.ndarray):
        keep = (t >= lo) & (t < hi)
        return t[keep], lat[keep], lng[keep]

    return _transform(dataset, perturb)


def burstify_arrivals(
    dataset: LocationDataset,
    rng: np.random.Generator,
    bursts: int = 8,
    max_shift_seconds: float = 420.0,
    compression: float = 0.1,
) -> LocationDataset:
    """Pull each entity's timestamps toward a few burst instants.

    Models batched logging (a device stamping events when it syncs, not
    when they happened): every timestamp moves toward its nearest burst
    centre, but never further than ``max_shift_seconds`` — skewing
    arrival into bursts while keeping the drift bounded the way real
    batching is.  Record counts and locations are untouched.
    """

    def perturb(entity: str, t: np.ndarray, lat: np.ndarray, lng: np.ndarray):
        if len(t) == 0:
            return t, lat, lng
        centers = np.sort(rng.uniform(t.min(), t.max() + 1.0, bursts))
        nearest = centers[
            np.argmin(np.abs(t[:, None] - centers[None, :]), axis=1)
        ]
        shift = np.clip(
            nearest - t, -max_shift_seconds, max_shift_seconds
        ) * (1.0 - compression)
        return t + shift, lat, lng

    return _transform(dataset, perturb)


def drop_time_gaps(
    dataset: LocationDataset,
    rng: np.random.Generator,
    gaps: int = 3,
    gap_fraction: float = 0.3,
) -> LocationDataset:
    """Delete every record inside random per-entity time gaps.

    Models coverage holes (tunnels, dead batteries, outages): per entity,
    ``gaps`` intervals jointly covering about ``gap_fraction`` of its
    active span are wiped.  Entities starved below the min-record filter
    disappear — callers rebuild ground truth accordingly.
    """

    def perturb(entity: str, t: np.ndarray, lat: np.ndarray, lng: np.ndarray):
        if len(t) == 0:
            return t, lat, lng
        span = max(float(t.max() - t.min()), 1.0)
        gap_length = span * gap_fraction / max(1, gaps)
        keep = np.ones(len(t), dtype=bool)
        for gap_start in rng.uniform(t.min(), t.max(), gaps):
            keep &= ~((t >= gap_start) & (t < gap_start + gap_length))
        return t[keep], lat[keep], lng[keep]

    return _transform(dataset, perturb)


def duplicate_records(
    dataset: LocationDataset,
    rng: np.random.Generator,
    duplicate_fraction: float = 0.35,
    time_jitter_seconds: float = 45.0,
    gps_noise_meters: float = 25.0,
) -> LocationDataset:
    """Re-ingest a fraction of records with small timestamp/GPS deltas.

    Models at-least-once delivery: duplicates are near-copies, not exact
    ones, so naive dedup by equality would miss them and the linker's
    frequency statistics (df / IDF weights) absorb the inflation.
    """
    lat_sigma = gps_noise_meters / 111_320.0

    def perturb(entity: str, t: np.ndarray, lat: np.ndarray, lng: np.ndarray):
        duplicated = rng.random(len(t)) < duplicate_fraction
        count = int(duplicated.sum())
        if count == 0:
            return t, lat, lng
        extra_t = t[duplicated] + rng.uniform(
            -time_jitter_seconds, time_jitter_seconds, count
        )
        extra_lat = lat[duplicated] + rng.normal(0.0, lat_sigma, count)
        extra_lng = lng[duplicated] + rng.normal(0.0, lat_sigma, count)
        extra_lat, extra_lng = _clip_coords(extra_lat, extra_lng)
        return (
            np.concatenate([t, extra_t]),
            np.concatenate([lat, extra_lat]),
            np.concatenate([lng, extra_lng]),
        )

    return _transform(dataset, perturb)


# ---------------------------------------------------------------------------
# registered scenarios
# ---------------------------------------------------------------------------
@register_scenario("baseline_cab", "clean dense-city control (no perturbation)")
def _baseline_cab(seed: int, scale: float) -> LinkagePair:
    return cab_scenario_pair(seed, scale)


@register_scenario(
    "checkin_baseline", "clean sparse two-service check-in control"
)
def _checkin_baseline(seed: int, scale: float) -> LinkagePair:
    return checkin_scenario_pair(seed, scale)


def gps_jitter_pair(
    seed: int, scale: float, amplitude_meters: float = 400.0
) -> LinkagePair:
    """The ``gps_jitter_burst`` pair at an explicit noise amplitude.

    Exposed (beyond the registered fixed-amplitude scenario) so
    metamorphic tests can sweep the amplitude and assert monotone
    quality degradation.
    """
    pair = cab_scenario_pair(seed, scale)
    right = jitter_bursts(
        pair.right, _sub_rng(seed, "perturb/jitter"), amplitude_meters
    )
    return _rebuild(pair, pair.left, right)


@register_scenario(
    "gps_jitter_burst", "urban-canyon GPS noise bursts on one side"
)
def _gps_jitter_burst(seed: int, scale: float) -> LinkagePair:
    return gps_jitter_pair(seed, scale, amplitude_meters=400.0)


@register_scenario(
    "device_swap", "devices change hands mid-stream (trace tails swapped)"
)
def _device_swap(seed: int, scale: float) -> LinkagePair:
    pair = cab_scenario_pair(seed, scale)
    right = swap_device_tails(
        pair.right, _sub_rng(seed, "perturb/swap"), swap_fraction=0.5
    )
    return _rebuild(pair, pair.left, right)


@register_scenario(
    "population_drift",
    "services observed different epochs; populations only partly overlap",
)
def _population_drift(seed: int, scale: float) -> LinkagePair:
    pair = cab_scenario_pair(seed, scale)
    start = min(pair.left.time_range()[0], pair.right.time_range()[0])
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    span = end - start
    # Each side sees 65% of the span; the middle 30% is common ground.
    left = clip_time_range(pair.left, start, start + 0.65 * span)
    right = clip_time_range(pair.right, start + 0.35 * span, end + 1.0)
    return _rebuild(pair, left, right)


@register_scenario(
    "bursty_arrival", "batched uploads: one side's records arrive in bursts"
)
def _bursty_arrival(seed: int, scale: float) -> LinkagePair:
    pair = cab_scenario_pair(seed, scale)
    right = burstify_arrivals(pair.right, _sub_rng(seed, "perturb/burst"))
    return _rebuild(pair, pair.left, right)


@register_scenario(
    "dropout_gaps", "coverage holes: time intervals of records lost per entity"
)
def _dropout_gaps(seed: int, scale: float) -> LinkagePair:
    pair = cab_scenario_pair(seed, scale)
    left = drop_time_gaps(pair.left, _sub_rng(seed, "perturb/dropout-left"))
    right = drop_time_gaps(pair.right, _sub_rng(seed, "perturb/dropout-right"))
    return _rebuild(pair, left, right)


@register_scenario(
    "duplicate_ingestion",
    "at-least-once delivery: near-duplicate records re-ingested on one side",
)
def _duplicate_ingestion(seed: int, scale: float) -> LinkagePair:
    pair = cab_scenario_pair(seed, scale)
    right = duplicate_records(pair.right, _sub_rng(seed, "perturb/dup"))
    return _rebuild(pair, pair.left, right)

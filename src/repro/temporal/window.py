"""Temporal windowing.

SLIM splits the time domain into fixed-width, half-open windows
``[t0 + k*w, t0 + (k+1)*w)`` (Sec. 2.3).  A :class:`Windowing` maps record
timestamps to window indices and back; the *leaf* windows of every mobility
history in a linkage run share one ``Windowing`` so that "same temporal
window" (the ``T`` predicate of Eq. 1) is a simple index comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["TimeSpan", "Windowing"]


@dataclass(frozen=True, slots=True)
class TimeSpan:
    """A half-open time interval ``[start, end)`` in POSIX seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end ({self.end}) before start ({self.start})")

    @property
    def width(self) -> float:
        """Interval width in seconds (``|w|`` in the paper)."""
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """True when ``timestamp`` falls inside the interval."""
        return self.start <= timestamp < self.end

    def overlaps(self, other: "TimeSpan") -> bool:
        """True when the two intervals share any instant."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True, slots=True)
class Windowing:
    """A uniform partition of time into leaf windows.

    Parameters
    ----------
    origin:
        Timestamp of the left edge of window 0 (POSIX seconds).
    width_seconds:
        Width of each leaf window (the paper's default is 15 minutes).
    """

    origin: float
    width_seconds: float

    def __post_init__(self) -> None:
        if self.width_seconds <= 0:
            raise ValueError(f"window width must be positive, got {self.width_seconds}")

    @classmethod
    def minutes(cls, origin: float, width_minutes: float) -> "Windowing":
        """Convenience constructor taking the width in minutes, the unit the
        paper quotes everywhere."""
        return cls(origin, width_minutes * 60.0)

    def index_of(self, timestamp: float) -> int:
        """Index of the window containing ``timestamp``.

        Negative indices are legal (timestamps before the origin); callers
        that build histories clamp their record streams first.
        """
        return int((timestamp - self.origin) // self.width_seconds)

    def span_of(self, index: int) -> TimeSpan:
        """The time interval of window ``index``."""
        start = self.origin + index * self.width_seconds
        return TimeSpan(start, start + self.width_seconds)

    def count_for(self, start: float, end: float) -> int:
        """Number of windows needed to cover ``[start, end]``."""
        if end < start:
            raise ValueError("end before start")
        return self.index_of(end) - self.index_of(start) + 1

    def indices_between(self, start: float, end: float) -> Iterator[int]:
        """Iterate over window indices covering ``[start, end]``."""
        first = self.index_of(start)
        last = self.index_of(end)
        return iter(range(first, last + 1))

    def aligned(self, other: "Windowing") -> bool:
        """True when the two windowings produce identical partitions."""
        return self.origin == other.origin and self.width_seconds == other.width_seconds

    def coarsen(self, factor: int) -> "Windowing":
        """A windowing whose leaves are ``factor`` of these leaves.

        Used by the LSH layer, whose *query windows* are a multiple of the
        similarity leaf window (Sec. 4).
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return Windowing(self.origin, self.width_seconds * factor)


def common_windowing(
    time_ranges: Tuple[Tuple[float, float], ...], width_seconds: float
) -> Windowing:
    """Build the shared windowing for a linkage run.

    The origin is the earliest record timestamp across the datasets, so both
    datasets index windows identically — a precondition for the ``T``
    predicate of Eq. 1 and for comparable LSH signatures ("the queries span
    the same time period with the data", Sec. 4).
    """
    if not time_ranges:
        raise ValueError("at least one time range is required")
    origin = min(start for start, _ in time_ranges)
    return Windowing(origin, width_seconds)

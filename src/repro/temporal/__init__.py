"""Temporal substrate: uniform windowing and hierarchical count trees.

Implements the temporal half of the paper's mobility-history representation
(Sec. 2.3, Fig. 1): :class:`~repro.temporal.window.Windowing` assigns
records to half-open leaf windows, and
:class:`~repro.temporal.tree.TemporalCountTree` aggregates per-window cell
counts up a segment tree so dominating-cell queries (Sec. 4) are
logarithmic.
"""

from .tree import TemporalCountTree
from .window import TimeSpan, Windowing, common_windowing

__all__ = ["TimeSpan", "Windowing", "TemporalCountTree", "common_windowing"]

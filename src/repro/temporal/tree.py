"""Hierarchical temporal count tree (the mobility-history backbone).

The paper organises each entity's records as a tree over temporal windows
(Fig. 1): leaves hold the set of spatial cells visited in one window, and
every internal node keeps occurrence counts of the cells in its subtree so
that aggregate queries — most importantly the *dominating grid cell* of an
arbitrary window range (Sec. 4) — can be answered without rescanning
records.

:class:`TemporalCountTree` implements that structure as a sparse, implicit
binary segment tree:

* node ``(0, k)`` is leaf window ``k``;
* node ``(h, k)`` covers leaf range ``[k * 2**h, (k+1) * 2**h)``;
* only nodes whose range contains data are materialised.

Space is ``O(records * log windows)`` as in the paper's segment-tree
analysis, and a range query touches ``O(log windows)`` nodes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["TemporalCountTree"]


class TemporalCountTree:
    """Sparse segment tree of ``Counter`` nodes over leaf windows.

    Keys are arbitrary hashables (SLIM uses cell ids).  The tree is built
    once from per-leaf counters and is immutable afterwards, matching how
    mobility histories are constructed from a record scan.
    """

    __slots__ = ("_nodes", "_height", "_num_leaves")

    def __init__(self, leaf_counters: Dict[int, Counter]) -> None:
        """Build the tree from ``{leaf index: Counter}``.

        Leaf indices must be non-negative: histories are constructed against
        a windowing whose origin is the earliest record in the run.
        """
        if any(index < 0 for index in leaf_counters):
            raise ValueError("leaf indices must be non-negative")
        self._num_leaves = (max(leaf_counters) + 1) if leaf_counters else 0
        height = 0
        while (1 << height) < max(1, self._num_leaves):
            height += 1
        self._height = height
        nodes: Dict[Tuple[int, int], Counter] = {}
        for index, counter in leaf_counters.items():
            if counter:
                nodes[(0, index)] = Counter(counter)
        # Aggregate counts bottom-up along only the populated paths.
        current = [key for key in nodes if key[0] == 0]
        for level in range(1, height + 1):
            parents = {}
            for _, index in current:
                parents[index >> 1] = True
            for parent_index in parents:
                merged: Counter = Counter()
                for child in (2 * parent_index, 2 * parent_index + 1):
                    child_counter = nodes.get((level - 1, child))
                    if child_counter:
                        merged.update(child_counter)
                if merged:
                    nodes[(level, parent_index)] = merged
            current = [(level, index) for index in parents]
        self._nodes = nodes

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaf slots (1 + highest populated leaf index)."""
        return self._num_leaves

    @property
    def height(self) -> int:
        """Height of the tree (0 for a single leaf)."""
        return self._height

    @property
    def node_count(self) -> int:
        """Number of materialised (non-empty) nodes."""
        return len(self._nodes)

    def leaf(self, index: int) -> Counter:
        """The counter at leaf ``index`` (empty counter when unpopulated)."""
        return self._nodes.get((0, index), Counter())

    def populated_leaves(self) -> Iterator[int]:
        """Iterate over populated leaf indices in increasing order."""
        return iter(sorted(i for lvl, i in self._nodes if lvl == 0))

    def root(self) -> Counter:
        """Aggregate counter over the whole tree."""
        if not self._nodes:
            return Counter()
        root = self._nodes.get((self._height, 0))
        return Counter(root) if root else Counter()

    def total(self) -> int:
        """Total number of key occurrences stored."""
        return sum(self.root().values())

    # ------------------------------------------------------------------
    # range queries
    # ------------------------------------------------------------------
    def _decompose(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Decompose leaf range ``[start, end)`` into O(log n) node keys."""
        segments: List[Tuple[int, int]] = []
        level = 0
        lo, hi = start, end
        while lo < hi:
            if lo & 1:
                segments.append((level, lo))
                lo += 1
            if hi & 1:
                hi -= 1
                segments.append((level, hi))
            lo >>= 1
            hi >>= 1
            level += 1
        return segments

    def range_counter(self, start: int, end: int) -> Counter:
        """Aggregate counter over leaf windows ``[start, end)``.

        This is the query Sec. 4 runs to find dominating grid cells: the
        decomposition means a query aligned with a tree level reads a single
        node.
        """
        if start < 0 or end < start:
            raise ValueError(f"invalid range [{start}, {end})")
        result: Counter = Counter()
        for key in self._decompose(start, min(end, 1 << self._height)):
            node = self._nodes.get(key)
            if node:
                result.update(node)
        return result

    def dominating(self, start: int, end: int) -> Optional[object]:
        """The most frequent key in ``[start, end)``, or ``None`` if empty.

        Ties break toward the smallest key so that signatures are
        deterministic across runs (required for LSH reproducibility).
        """
        counts = self.range_counter(start, end)
        if not counts:
            return None
        best_count = max(counts.values())
        return min(key for key, count in counts.items() if count == best_count)

    def range_total(self, start: int, end: int) -> int:
        """Total occurrences within leaf range ``[start, end)``."""
        return sum(self.range_counter(start, end).values())

    # ------------------------------------------------------------------
    # verification helper (used by property tests)
    # ------------------------------------------------------------------
    def naive_range_counter(self, start: int, end: int) -> Counter:
        """Reference implementation of :meth:`range_counter` that scans
        leaves directly.  Exists so tests can cross-check the segment
        decomposition."""
        result: Counter = Counter()
        for index in range(start, end):
            node = self._nodes.get((0, index))
            if node:
                result.update(node)
        return result

    @classmethod
    def from_events(cls, events: Iterable[Tuple[int, object]]) -> "TemporalCountTree":
        """Build from an iterable of ``(leaf index, key)`` events."""
        leaves: Dict[int, Counter] = {}
        for index, key in events:
            leaves.setdefault(index, Counter())[key] += 1
        return cls(leaves)

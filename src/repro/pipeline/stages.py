"""Pipeline stages: the composable units of Alg. 1.

A *stage* is anything with a ``name`` and a ``run(context)`` method (the
:class:`Stage` protocol).  The pipeline of the paper's Alg. 1 decomposes
into five canonical stages — ``prepare`` (windowing + histories + corpus
statistics), ``candidates`` (LSH filtering or brute force), ``scoring``
(Eq. 2 + the MFN alibi pass), ``matching`` (maximum-sum bipartite
matching) and ``threshold`` (the automated stop threshold) — and every
linkage front door in this repo (batch, streaming, baselines) is a
composition of implementations of these stages.

Swappable strategies live in string-keyed registries:

* :data:`candidate_stages` — ``"brute"``, ``"lsh"``, ``"temporal"``, yours;
* :data:`matchers` — ``"greedy"``, ``"hungarian"``, ``"networkx"``
  (plus ``"stlink"`` once :mod:`repro.baselines.stlink` is imported);
* :data:`threshold_methods` — ``"gmm"``, ``"otsu"``, ``"two_means"``,
  ``"none"``.

Registering a custom strategy needs no edits to ``repro``:

>>> from repro.pipeline import candidate_stages, CandidateStage
>>> @candidate_stages.register("every-tenth")
... class EveryTenth(CandidateStage):
...     def generate(self, context):
...         pairs = sorted(
...             (l, r)
...             for l in context.left_histories
...             for r in context.right_histories
...         )
...         return set(pairs[::10])
>>> "every-tenth" in candidate_stages
True
>>> candidate_stages.unregister("every-tenth")  # doctest hygiene
"""

from __future__ import annotations

import os
# repro-lint: timing-module -- stages time their own execution for the report
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple, runtime_checkable

from ..core.corpus import HistoryCorpus, content_fingerprint
from ..core.history import build_histories
from ..core.matching import Edge
from ..core.matching import MATCHERS as _CORE_MATCHERS
from ..core.similarity import SimilarityEngine
from ..core.threshold import (
    ThresholdDecision,
    gmm_stop_threshold,
    otsu_threshold,
    two_means_threshold,
)
from ..exec import Executor, create_executor, raise_on_task_errors
from ..lsh.index import LshIndex
from ..temporal import common_windowing
from .context import LinkageContext
from .registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import LinkageConfig

__all__ = [
    "Stage",
    "STAGE_PREPARE",
    "STAGE_CANDIDATES",
    "STAGE_SCORING",
    "STAGE_MATCHING",
    "STAGE_THRESHOLD",
    "STAGE_NAMES",
    "SCORE_BLOCK_SIZE",
    "DENSE_SCORE_BLOCK_SIZE",
    "resolve_score_block_size",
    "candidate_stages",
    "matchers",
    "threshold_methods",
    "PrepareStage",
    "CandidateStage",
    "BruteForceCandidates",
    "LshCandidates",
    "TemporalCandidates",
    "ScoringStage",
    "MatchingStage",
    "ThresholdStage",
    "no_threshold",
    "score_pair_block",
]

#: Canonical stage names — the timing keys every linkage front door emits.
STAGE_PREPARE = "prepare"
STAGE_CANDIDATES = "candidates"
STAGE_SCORING = "scoring"
STAGE_MATCHING = "matching"
STAGE_THRESHOLD = "threshold"
STAGE_NAMES: Tuple[str, ...] = (
    STAGE_PREPARE,
    STAGE_CANDIDATES,
    STAGE_SCORING,
    STAGE_MATCHING,
    STAGE_THRESHOLD,
)

#: Candidate pairs scored per batch-kernel dispatch.  Bounds the peak size
#: of the kernel's per-shape tensors while still amortising the vectorized
#: work over thousands of (pair, window) interactions.  This is the
#: *sparse-workload* default; see :func:`resolve_score_block_size` for the
#: workload-aware choice the scoring stage actually makes.
SCORE_BLOCK_SIZE = 4096

#: Block size for *dense* corpora (multiple cells per active window on
#: both sides).  Dense windows produce matrix-shaped interactions that the
#: kernel pads into square power-of-two buckets; the padded tensor volume
#: grows superlinearly with the number of pairs in a block, so smaller
#: blocks are ~3-4x faster there (measured on the cab workload, PR 4).
DENSE_SCORE_BLOCK_SIZE = 512

#: A pair of corpora counts as dense when the product of their mean
#: distinct-cells-per-active-window exceeds this (e.g. both sides
#: averaging >= 2 cells per window): most common windows then form
#: matrices rather than vectors.
_DENSE_CELLS_PRODUCT = 4.0


def resolve_score_block_size(
    config: Optional["LinkageConfig"],
    left_corpus: Optional[HistoryCorpus],
    right_corpus: Optional[HistoryCorpus],
) -> int:
    """The candidate-block size the scoring stage should dispatch in.

    Resolution order: an explicit ``config.score_block_size`` wins; then
    the ``REPRO_SCORE_BLOCK_SIZE`` environment override; otherwise a
    workload-aware heuristic — dense corpora (mean cells per active
    window multiply beyond :data:`_DENSE_CELLS_PRODUCT`) get
    :data:`DENSE_SCORE_BLOCK_SIZE`, sparse ones the classic
    :data:`SCORE_BLOCK_SIZE`.  The choice never affects results (kernel
    dispatch determinism — pinned by
    ``tests/pipeline/test_block_size.py``), only tensor footprints and
    wall-clock.
    """
    if config is not None and config.score_block_size > 0:
        return config.score_block_size
    env = os.environ.get("REPRO_SCORE_BLOCK_SIZE")
    if env:
        try:
            size = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_SCORE_BLOCK_SIZE must be an integer, got {env!r}"
            ) from None
        if size < 1:
            raise ValueError(
                f"REPRO_SCORE_BLOCK_SIZE must be positive, got {env!r}"
            )
        return size
    if left_corpus is None or right_corpus is None:
        return SCORE_BLOCK_SIZE
    density = (
        left_corpus.avg_cells_per_window()
        * right_corpus.avg_cells_per_window()
    )
    if density >= _DENSE_CELLS_PRODUCT:
        # min() keeps an explicitly lowered module default (tests and
        # benches monkeypatch SCORE_BLOCK_SIZE to force sharding) binding.
        return min(DENSE_SCORE_BLOCK_SIZE, SCORE_BLOCK_SIZE)
    return SCORE_BLOCK_SIZE


@runtime_checkable
class Stage(Protocol):
    """Anything the pipeline runner can execute.

    ``name`` keys the stage's wall-clock slot in
    :attr:`~repro.pipeline.context.LinkageContext.timings`; ``run``
    mutates the shared context.
    """

    name: str

    def run(self, context: LinkageContext) -> None:  # pragma: no cover
        ...


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

#: Candidate-generation strategies; entries are factories called with the
#: :class:`~repro.pipeline.config.LinkageConfig` and returning a stage.
candidate_stages: Registry[Callable[["LinkageConfig"], "CandidateStage"]] = (
    Registry("candidate stage")
)

#: Bipartite matchers: ``fn(edges) -> matched edges``.
matchers: Registry[Callable[[Sequence[Edge]], List[Edge]]] = Registry("matcher")

#: Stop-threshold methods: ``fn(weights) -> ThresholdDecision``.
threshold_methods: Registry[
    Callable[[Sequence[float]], ThresholdDecision]
] = Registry("threshold method")


for _name, _matcher in _CORE_MATCHERS.items():
    matchers.register(_name)(_matcher)

threshold_methods.register("gmm")(gmm_stop_threshold)
threshold_methods.register("otsu")(otsu_threshold)
threshold_methods.register("two_means")(two_means_threshold)


def no_threshold(weights: Sequence[float]) -> ThresholdDecision:
    """The ``"none"`` method: keep every matched edge (what prior work
    implicitly does; the ablation baseline for the stop-threshold
    mechanism)."""
    floor = min(weights, default=0.0)
    return ThresholdDecision(
        threshold=floor,
        method="none",
        expected_precision=float("nan"),
        expected_recall=float("nan"),
        expected_f1=float("nan"),
    )


threshold_methods.register("none")(no_threshold)


# ---------------------------------------------------------------------------
# prepare
# ---------------------------------------------------------------------------
class PrepareStage:
    """Common windowing, mobility histories and corpus statistics.

    Histories are built once at a storage level fine enough for both the
    similarity level and (when configured) the LSH signature level.
    """

    name = STAGE_PREPARE

    def __init__(self, config: "LinkageConfig") -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        left, right = context.left, context.right
        if left is None or right is None:
            raise ValueError("prepare stage needs both datasets on the context")
        config = self.config
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            config.similarity.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        context.windowing = windowing
        context.total_windows = windowing.index_of(latest) + 1

        storage = config.resolved_storage_level()
        context.left_histories = build_histories(left, windowing, storage)
        context.right_histories = build_histories(right, windowing, storage)
        level = config.similarity.spatial_level
        if context.score_cache is None:
            context.left_corpus = HistoryCorpus(context.left_histories, level)
            context.right_corpus = HistoryCorpus(context.right_histories, level)
        else:
            # A cache on the context may have been loaded from disk
            # (ScoreCache.save/load): key the corpora by *content*, not by
            # the process-local default tokens, so entries computed by an
            # earlier process over the same data are hits here.
            context.left_corpus = HistoryCorpus(
                context.left_histories,
                level,
                cache_token=(
                    "content",
                    content_fingerprint(context.left_histories, level),
                ),
            )
            context.right_corpus = HistoryCorpus(
                context.right_histories,
                level,
                cache_token=(
                    "content",
                    content_fingerprint(context.right_histories, level),
                ),
            )


# ---------------------------------------------------------------------------
# candidates
# ---------------------------------------------------------------------------
class CandidateStage:
    """Base class for candidate generators (the ``LSHFilterPairs`` slot of
    Alg. 1).  Subclasses implement :meth:`generate`, returning either a
    set of pairs or an already-sorted list (a list is taken as sorted and
    saves the scoring stage its determinism re-sort)."""

    name = STAGE_CANDIDATES

    def __init__(self, config: "LinkageConfig" = None) -> None:  # type: ignore[assignment]
        self.config = config

    def generate(self, context: LinkageContext):
        raise NotImplementedError

    def run(self, context: LinkageContext) -> None:
        if context.left_histories is None or context.right_histories is None:
            raise ValueError("candidate stage needs histories on the context")
        context.candidates = self.generate(context)


@candidate_stages.register("brute")
class BruteForceCandidates(CandidateStage):
    """Every cross pair — the right default for correctness-critical
    small runs.

    Emits an already-sorted list (two small per-side sorts plus a
    C-level product) so the scoring stage skips re-sorting the
    quadratic candidate set.
    """

    def generate(self, context: LinkageContext) -> List[Tuple[str, str]]:
        rights = sorted(context.right_histories)
        return [
            (left, right)
            for left in sorted(context.left_histories)
            for right in rights
        ]


@candidate_stages.register("lsh")
class LshCandidates(CandidateStage):
    """The paper's LSH filtering (Sec. 4): dominating-cell signatures,
    banded bucketing; a pair sharing any bucket becomes a candidate."""

    def generate(self, context: LinkageContext) -> Set[Tuple[str, str]]:
        lsh = self.config.lsh
        if lsh is None:
            raise ValueError(
                "candidates='lsh' needs LinkageConfig.lsh to be set"
            )
        index = LshIndex(lsh, lsh.signature_spec(context.total_windows))
        index.add_histories(context.left_histories, context.right_histories)
        context.extras["lsh_stats"] = index.stats
        return index.candidate_pairs()


@candidate_stages.register("temporal")
class TemporalCandidates(CandidateStage):
    """Temporal blocking: a pair is a candidate iff the two histories are
    active in at least one common leaf window.

    The Eq. 2 score of a pair with no common window is exactly zero, so
    this block loses no true links relative to brute force while skipping
    every never-overlapping pair — the cheap, geometry-free counterpart
    to the paper's LSH filter (useful when signatures are not worth
    building, e.g. short observation windows or heavily interleaved
    datasets).
    """

    def generate(self, context: LinkageContext) -> List[Tuple[str, str]]:
        rights_by_window: Dict[int, List[str]] = {}
        for right in sorted(context.right_histories):
            for window in context.right_histories[right].windows():
                rights_by_window.setdefault(window, []).append(right)
        pairs: List[Tuple[str, str]] = []
        for left in sorted(context.left_histories):
            overlapping: Set[str] = set()
            for window in context.left_histories[left].windows():
                bucket = rights_by_window.get(window)
                if bucket:
                    overlapping.update(bucket)
            pairs.extend((left, right) for right in sorted(overlapping))
        return pairs  # sorted by construction


# ---------------------------------------------------------------------------
# scoring
# ---------------------------------------------------------------------------
def score_pair_block(payload, item):
    """Executor task: one block of candidate pairs through the batch
    kernel.

    Module-level so the ``"process"`` backend can pickle it by reference;
    ``payload`` is the ``(left corpus, right corpus)`` pair shipped once
    per worker (by fork inheritance on Linux), ``item`` the
    ``(pairs, config)`` block.
    """
    from ..core.kernels import score_pairs_batch

    left_corpus, right_corpus = payload
    pairs, config = item
    return score_pairs_batch(left_corpus, right_corpus, pairs, config)


class ScoringStage:
    """Eq. 2 (with the MFN alibi pass) over the candidate set; keeps the
    positive-score edges (Alg. 1's ``if S > 0``).

    Candidates are sorted (determinism) and scored in shards of the
    resolved block size (:func:`resolve_score_block_size` — explicit
    config, environment override, or the workload-aware density
    heuristic) through
    :meth:`~repro.core.similarity.SimilarityEngine.score_batch`.  When the
    context carries a :class:`~repro.core.score_cache.ScoreCache` (the
    streaming linker attaches its own), the engine serves cache hits
    without touching the kernel.

    *How* the shards run is the config's ``executor`` choice
    (:mod:`repro.exec`): under ``"serial"`` they run in-process, one after
    the other — the parity oracle; under ``"thread"`` / ``"process"``
    kernel dispatches fan out through the backend, with cache lookups,
    stores and normalisation staying in this process.  Shard boundaries
    are identical under every backend and the kernel is
    dispatch-deterministic (see :mod:`repro.core.kernels`), so links,
    scores and counters are **bit-identical** regardless of executor —
    pinned by ``tests/pipeline/test_executors.py``.  The scalar
    ``backend="python"`` oracle always runs serially.  Per-shard
    wall-clock seconds land in ``context.shard_timings["scoring"]`` and an
    ``executor`` summary in ``context.extras``.
    """

    name = STAGE_SCORING

    def __init__(self, config: "LinkageConfig") -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        if context.left_corpus is None or context.right_corpus is None:
            raise ValueError("scoring stage needs corpora on the context")
        engine = context.engine
        if engine is None:
            engine = SimilarityEngine(
                context.left_corpus,
                context.right_corpus,
                self.config.similarity,
                score_cache=context.score_cache,
            )
            context.engine = engine
        candidates = context.candidates
        # Lists arrive pre-sorted from their candidate stage; sets (and
        # anything else) are sorted here for determinism.
        ordered = (
            candidates
            if isinstance(candidates, list)
            else sorted(candidates)
        )
        block = resolve_score_block_size(
            self.config, context.left_corpus, context.right_corpus
        )
        executor, owned = self._resolve_executor(context, len(ordered), block)
        if owned:
            # Safety net: the pipeline runner releases everything left in
            # here even if this stage's own finally never runs (shutdown
            # is idempotent, so double release is harmless).
            context.owned_executors.append(executor)
        before = executor.stats.fault_summary() if executor is not None else None
        shard_seconds: List[float] = []
        try:
            if executor is not None:
                scores = self._score_parallel(
                    engine, ordered, executor, shard_seconds, block
                )
            else:
                scores = self._score_serial(
                    engine, ordered, shard_seconds, block
                )
        finally:
            if owned:
                executor.shutdown()
        context.edges = [
            Edge(left_entity, right_entity, score)
            for (left_entity, right_entity), score in zip(ordered, scores)
            if score > 0.0
        ]
        context.stats = engine.stats
        context.shard_timings[self.name] = tuple(shard_seconds)
        context.extras["executor"] = {
            "name": executor.name if executor is not None else "serial",
            "workers": executor.workers if executor is not None else 1,
            "shards": len(shard_seconds),
        }
        if executor is not None:
            after = executor.stats.fault_summary()
            # Delta against the pre-stage snapshot: a borrowed executor
            # may carry fault history from earlier runs.
            faults = {
                key: (value if key == "degraded" else value - before[key])
                for key, value in after.items()
            }
            if faults["faults"] or faults["task_errors"] or faults["degraded"]:
                context.extras["faults"] = faults
            if faults["degraded"]:
                context.extras["degraded"] = True

    # ------------------------------------------------------------------
    # execution strategies
    # ------------------------------------------------------------------
    def _resolve_executor(
        self, context: LinkageContext, candidate_count: int, block: int
    ) -> Tuple[Optional[Executor], bool]:
        """The executor to shard through, or ``None`` for the serial
        in-process path, plus whether this stage owns its shutdown.

        Parallel dispatch needs the numpy backend (the scalar oracle is
        serial by definition) and more than one shard's worth of
        candidates; ``context.executor`` (caller-provided, borrowed) wins
        over the config (stage-created, owned).
        """
        if (
            self.config.similarity.backend != "numpy"
            or candidate_count <= block
        ):
            return None, False
        provided = context.executor
        if provided is not None:
            return (provided, False) if provided.name != "serial" else (None, False)
        name = self.config.resolved_executor()
        if name == "serial":
            return None, False
        return (
            create_executor(
                name,
                self.config.resolved_workers(),
                timeout=self.config.timeout or None,
                retries=self.config.retries,
            ),
            True,
        )

    def _score_serial(
        self,
        engine: SimilarityEngine,
        ordered: Sequence[Tuple[str, str]],
        shard_seconds: List[float],
        block: int,
    ) -> List[float]:
        """The in-process path (exactly the pre-executor behaviour)."""
        scores: List[float] = []
        for start in range(0, len(ordered), block):
            chunk = ordered[start : start + block]
            clock = time.perf_counter()
            scores.extend(engine.score_batch(chunk))
            shard_seconds.append(time.perf_counter() - clock)
        return scores

    def _score_parallel(
        self,
        engine: SimilarityEngine,
        ordered: Sequence[Tuple[str, str]],
        executor: Executor,
        shard_seconds: List[float],
        block: int,
    ) -> List[float]:
        """One cache-aware ``score_batch`` whose kernel dispatches shard
        out through the executor."""
        from ..core.kernels import concat_results

        left_corpus, right_corpus = engine.left, engine.right
        # Materialise the array views up front: thread workers must not
        # race the lazy build, and process workers should inherit the
        # arrays through fork rather than each rebuilding them.
        left_corpus.arrays()
        right_corpus.arrays()

        def dispatch(pairs, config):
            blocks = [
                pairs[start : start + block]
                for start in range(0, len(pairs), block)
            ]
            outcomes = executor.map_blocks(
                score_pair_block,
                [(block, config) for block in blocks],
                payload=(left_corpus, right_corpus),
            )
            # The dispatch itself always completes (pools released, good
            # shards kept); only a block that failed past its retry
            # budget *and* the inline fallback aborts the stage — as a
            # clean, descriptive error instead of a poisoned result.
            raise_on_task_errors(outcomes, "scoring")
            shard_seconds.extend(outcome.seconds for outcome in outcomes)
            return concat_results([outcome.value for outcome in outcomes])

        return engine.score_batch(ordered, dispatch=dispatch)


# ---------------------------------------------------------------------------
# matching
# ---------------------------------------------------------------------------
class MatchingStage:
    """Maximum-sum bipartite matching over the positive-score edges,
    dispatched through the :data:`matchers` registry."""

    name = STAGE_MATCHING

    def __init__(self, config: "LinkageConfig") -> None:
        self.config = config
        self.matcher = matchers.get(config.matching)

    def run(self, context: LinkageContext) -> None:
        context.matched_edges = self.matcher(context.edges)


# ---------------------------------------------------------------------------
# threshold
# ---------------------------------------------------------------------------
class ThresholdStage:
    """The automated stop threshold over matched edge weights, dispatched
    through the :data:`threshold_methods` registry; keeps the links at or
    above the decision."""

    name = STAGE_THRESHOLD

    def __init__(self, config: "LinkageConfig") -> None:
        self.config = config
        self.method = threshold_methods.get(config.threshold)

    def run(self, context: LinkageContext) -> None:
        matched = context.matched_edges
        if not matched:
            # No matched edges: every method degenerates to the floor.
            decision = no_threshold([])
        else:
            decision = self.method([edge.weight for edge in matched])
        context.threshold = decision
        context.links = {
            edge.left: edge.right
            for edge in matched
            if edge.weight >= decision.threshold
        }

"""One serializable configuration for every linkage front door.

:class:`LinkageConfig` composes the similarity knobs
(:class:`~repro.core.similarity.SimilarityConfig`), the optional LSH
filter (:class:`~repro.lsh.index.LshConfig`), the pipeline's stage
choices (candidate generator, matcher, stop-threshold method) and the
execution backend (``executor`` / ``workers``, see :mod:`repro.exec`) into a
single object shared by the batch pipeline, the streaming linker and the
auto-tuning sweeps — and round-trips through plain dicts / JSON:

>>> config = LinkageConfig(matching="hungarian", threshold="otsu")
>>> LinkageConfig.from_dict(config.to_dict()) == config
True
>>> LinkageConfig.from_dict({"matchign": "greedy"})
Traceback (most recent call last):
    ...
ValueError: unknown LinkageConfig field 'matchign'; known fields: ['candidates', 'executor', 'lsh', 'matching', 'retention', 'retention_window', 'retries', 'score_block_size', 'serve_backpressure', 'serve_batch', 'serve_queue_depth', 'serve_staleness', 'similarity', 'storage_level', 'threshold', 'timeout', 'workers']

Stage choices are validated against the pipeline registries at
construction time, so a custom strategy must be registered (see
:mod:`repro.pipeline.stages`) *before* a config naming it is built —
which is the natural order anyway.

The pre-PR-3 :class:`~repro.core.slim.SlimConfig` remains as a thin
deprecated shim whose :meth:`~repro.core.slim.SlimConfig.to_linkage_config`
produces the equivalent ``LinkageConfig``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

from ..core.retention import retention_policies
from ..core.similarity import SimilarityConfig
from ..exec import (
    AUTO_EXECUTOR,
    executors,
    resolve_executor_name,
    resolve_worker_count,
)
from ..lsh.index import LshConfig
from .stages import candidate_stages, matchers, threshold_methods

__all__ = ["LinkageConfig"]

#: ``candidates`` value meaning "lsh when an LshConfig is present, else
#: brute force" — the right default for configs that toggle LSH on and off.
AUTO_CANDIDATES = "auto"

#: Valid ``serve_backpressure`` policies: ``"block"`` makes a full ingest
#: queue await capacity, ``"reject"`` fails the submit immediately with
#: :class:`repro.serve.BackpressureError`.  Defined here (not in
#: :mod:`repro.serve`) so the config layer stays import-cycle-free.
SERVE_BACKPRESSURE_POLICIES = ("block", "reject")


def _build_sub(cls, kind: str, data: Mapping[str, Any]):
    """Build a nested config dataclass, rejecting unknown keys by name."""
    known = {f.name for f in fields(cls)}
    for key in data:
        if key not in known:
            raise ValueError(
                f"unknown {kind} field {key!r}; known fields: {sorted(known)}"
            )
    return cls(**data)


@dataclass(frozen=True)
class LinkageConfig:
    """Full pipeline configuration.

    Attributes
    ----------
    similarity:
        Knobs of the Eq. 2 score (window width, spatial level, backend...).
    lsh:
        ``None`` disables LSH filtering (brute-force candidate set); an
        :class:`~repro.lsh.index.LshConfig` enables it.
    candidates:
        Candidate-stage name in the
        :data:`~repro.pipeline.stages.candidate_stages` registry, or
        ``"auto"`` (``"lsh"`` when ``lsh`` is set, else ``"brute"``).
    matching:
        Matcher name in :data:`~repro.pipeline.stages.matchers`
        (``"greedy"`` is the paper's).
    threshold:
        Stop-threshold method in
        :data:`~repro.pipeline.stages.threshold_methods` (``"gmm"`` is the
        paper's; ``"none"`` keeps every matched edge).
    storage_level:
        History storage level; ``None`` = the finest level any stage needs.
    executor:
        Execution backend in the :data:`~repro.exec.executors` registry
        (``"serial"``, ``"thread"``, ``"process"``, yours), or ``"auto"``
        (the ``REPRO_EXECUTOR`` environment override when set, else
        ``"serial"``).  Drives the scoring stage's shard fan-out; the
        sweep helpers accept the same names.
    workers:
        Worker count for parallel backends; ``0`` = ``REPRO_WORKERS``
        when set, else the machine's CPU count.
    retention:
        Entity-retirement policy in the
        :data:`~repro.core.retention.retention_policies` registry
        (``"none"``, ``"sliding_window"``, ``"max_entities"``, yours).
        Applied by :class:`~repro.core.streaming.StreamingLinker` ahead
        of every relink; the batch pipeline ignores it (a one-shot run
        has no stream to bound).
    retention_window:
        The retention policy's integer parameter: maximum activity age in
        leaf windows for ``"sliding_window"``, maximum entity count per
        side for ``"max_entities"``.  Required positive whenever
        ``retention != "none"``.
    score_block_size:
        Candidate pairs per batch-kernel dispatch in the scoring stage.
        ``0`` (default) picks a workload-aware size — dense corpora get
        smaller blocks because the kernel's power-of-two matrix buckets
        grow superlinearly with block size (see
        :func:`~repro.pipeline.stages.resolve_score_block_size`); the
        ``REPRO_SCORE_BLOCK_SIZE`` environment variable overrides the
        auto choice.  Results are bit-identical at every block size
        (kernel dispatch determinism).
    timeout:
        Per-block timeout in seconds for parallel executor dispatch; a
        block that exceeds it is treated as hung, its worker is killed
        (process backend) or abandoned (thread backend), and the block is
        retried.  ``0.0`` (default) disables the timeout.  The serial
        oracle cannot preempt its own frame and ignores it.
    retries:
        Retry budget per score block beyond the first attempt, with
        deterministic exponential backoff.  A block that keeps failing
        past the budget gets one final inline attempt; only then is it
        reported as a permanent task error (see
        :class:`~repro.exec.TaskError`).
    serve_queue_depth:
        Bound of the serving layer's ingest queue
        (:class:`repro.serve.LinkageService`): at most this many pending
        event batches before backpressure engages.
    serve_batch:
        Debounce batch threshold: the relink scheduler coalesces queued
        deltas and triggers a relink once at least this many records are
        pending (or the staleness bound below is hit, whichever first).
    serve_staleness:
        Debounce staleness bound in seconds: pending deltas are relinked
        at most this long after the oldest one arrived, even when the
        batch threshold was not reached.
    serve_backpressure:
        What a full ingest queue does to a submit: ``"block"`` (await
        capacity) or ``"reject"`` (raise
        :class:`repro.serve.BackpressureError` immediately).  The batch
        pipeline ignores the ``serve_*`` fields; only the serving front
        doors read them.
    """

    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    lsh: Optional[LshConfig] = None
    candidates: str = AUTO_CANDIDATES
    matching: str = "greedy"
    threshold: str = "gmm"
    storage_level: Optional[int] = None
    executor: str = AUTO_EXECUTOR
    workers: int = 0
    retention: str = "none"
    retention_window: int = 0
    score_block_size: int = 0
    timeout: float = 0.0
    retries: int = 2
    serve_queue_depth: int = 1024
    serve_batch: int = 256
    serve_staleness: float = 2.0
    serve_backpressure: str = "block"

    def __post_init__(self) -> None:
        if self.candidates != AUTO_CANDIDATES:
            candidate_stages.get(self.candidates)  # raises with known names
        resolved_executor = resolve_executor_name(self.executor)
        if resolved_executor not in executors:
            # Covers an explicit bad name and a REPRO_EXECUTOR typo behind
            # "auto" alike: fail at construction, not mid-pipeline.
            source = (
                f"REPRO_EXECUTOR={resolved_executor!r} (via 'auto')"
                if self.executor == AUTO_EXECUTOR
                else repr(self.executor)
            )
            raise ValueError(
                f"unknown executor {source}; "
                f"registered executors: {executors.names()} (or 'auto')"
            )
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ValueError(
                f"workers must be a non-negative integer (0 = auto), "
                f"got {self.workers!r}"
            )
        if self.matching not in matchers:
            raise ValueError(
                f"unknown matcher {self.matching!r}; "
                f"registered matchers: {matchers.names()}"
            )
        if self.threshold not in threshold_methods:
            raise ValueError(
                f"unknown threshold method {self.threshold!r}; "
                f"registered threshold methods: {threshold_methods.names()}"
            )
        if self.retention not in retention_policies:
            raise ValueError(
                f"unknown retention policy {self.retention!r}; "
                f"registered retention policies: {retention_policies.names()}"
            )
        if not isinstance(self.retention_window, int) or self.retention_window < 0:
            raise ValueError(
                "retention_window must be a non-negative integer, "
                f"got {self.retention_window!r}"
            )
        if self.retention != "none" and self.retention_window < 1:
            raise ValueError(
                f"retention={self.retention!r} needs retention_window >= 1 "
                "(max window age for sliding_window, max entities for "
                "max_entities)"
            )
        if not isinstance(self.score_block_size, int) or self.score_block_size < 0:
            raise ValueError(
                "score_block_size must be a non-negative integer "
                f"(0 = workload-aware), got {self.score_block_size!r}"
            )
        if (
            isinstance(self.timeout, bool)
            or not isinstance(self.timeout, (int, float))
            or self.timeout < 0
        ):
            raise ValueError(
                "timeout must be a non-negative number of seconds "
                f"(0 = unbounded), got {self.timeout!r}"
            )
        if (
            isinstance(self.retries, bool)
            or not isinstance(self.retries, int)
            or self.retries < 0
        ):
            raise ValueError(
                f"retries must be a non-negative integer, got {self.retries!r}"
            )
        for name in ("serve_queue_depth", "serve_batch"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if (
            isinstance(self.serve_staleness, bool)
            or not isinstance(self.serve_staleness, (int, float))
            or self.serve_staleness <= 0
        ):
            raise ValueError(
                "serve_staleness must be a positive number of seconds, "
                f"got {self.serve_staleness!r}"
            )
        if self.serve_backpressure not in SERVE_BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown serve_backpressure {self.serve_backpressure!r}; "
                f"valid policies: {list(SERVE_BACKPRESSURE_POLICIES)}"
            )

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def resolved_candidates(self) -> str:
        """The candidate-stage name after ``"auto"`` resolution."""
        if self.candidates != AUTO_CANDIDATES:
            return self.candidates
        return "lsh" if self.lsh is not None else "brute"

    def resolved_executor(self) -> str:
        """The execution-backend name after ``"auto"`` / environment
        resolution (see :func:`repro.exec.resolve_executor_name`)."""
        return resolve_executor_name(self.executor)

    def resolved_workers(self) -> int:
        """The worker count after ``0`` / environment resolution (see
        :func:`repro.exec.resolve_worker_count`)."""
        return resolve_worker_count(self.workers)

    def resolved_storage_level(self) -> int:
        """The history storage level: explicitly set, or the finest level
        any stage needs."""
        if self.storage_level is not None:
            return self.storage_level
        level = self.similarity.spatial_level
        if self.lsh is not None:
            level = max(level, self.lsh.spatial_level)
        return level

    def without(self, **changes) -> "LinkageConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form (JSON-ready) that :meth:`from_dict` inverts."""
        return {
            "similarity": asdict(self.similarity),
            "lsh": None if self.lsh is None else asdict(self.lsh),
            "candidates": self.candidates,
            "matching": self.matching,
            "threshold": self.threshold,
            "storage_level": self.storage_level,
            "executor": self.executor,
            "workers": self.workers,
            "retention": self.retention,
            "retention_window": self.retention_window,
            "score_block_size": self.score_block_size,
            "timeout": self.timeout,
            "retries": self.retries,
            "serve_queue_depth": self.serve_queue_depth,
            "serve_batch": self.serve_batch,
            "serve_staleness": self.serve_staleness,
            "serve_backpressure": self.serve_backpressure,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkageConfig":
        """Rebuild a config from :meth:`to_dict` output (or a hand-written
        dict).  Unknown fields — at the top level or inside ``similarity``
        / ``lsh`` — raise :class:`ValueError` naming the offending key."""
        known = {f.name for f in fields(cls)}
        for key in data:
            if key not in known:
                raise ValueError(
                    f"unknown LinkageConfig field {key!r}; "
                    f"known fields: {sorted(known)}"
                )
        kwargs: Dict[str, Any] = dict(data)
        similarity = kwargs.get("similarity")
        if isinstance(similarity, Mapping):
            kwargs["similarity"] = _build_sub(
                SimilarityConfig, "similarity", similarity
            )
        elif similarity is not None and not isinstance(
            similarity, SimilarityConfig
        ):
            raise ValueError(
                "field 'similarity' must be a mapping of SimilarityConfig "
                f"fields, got {type(similarity).__name__}"
            )
        lsh = kwargs.get("lsh")
        if isinstance(lsh, Mapping):
            kwargs["lsh"] = _build_sub(LshConfig, "lsh", lsh)
        elif lsh is not None and not isinstance(lsh, LshConfig):
            raise ValueError(
                "field 'lsh' must be null or a mapping of LshConfig "
                f"fields, got {type(lsh).__name__}"
            )
        for name in (
            "candidates",
            "matching",
            "threshold",
            "executor",
            "retention",
            "serve_backpressure",
        ):
            if name in kwargs and not isinstance(kwargs[name], str):
                raise ValueError(
                    f"field {name!r} must be a strategy name (string), "
                    f"got {type(kwargs[name]).__name__}"
                )
        storage_level = kwargs.get("storage_level")
        if storage_level is not None and not isinstance(storage_level, int):
            raise ValueError(
                "field 'storage_level' must be null or an integer, "
                f"got {type(storage_level).__name__}"
            )
        for name in (
            "workers",
            "retention_window",
            "score_block_size",
            "retries",
            "serve_queue_depth",
            "serve_batch",
        ):
            value = kwargs.get(name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ValueError(
                    f"field {name!r} must be an integer (0 = auto), "
                    f"got {type(value).__name__}"
                )
        timeout = kwargs.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            raise ValueError(
                "field 'timeout' must be a number of seconds (0 = unbounded), "
                f"got {type(timeout).__name__}"
            )
        staleness = kwargs.get("serve_staleness")
        if staleness is not None and (
            isinstance(staleness, bool) or not isinstance(staleness, (int, float))
        ):
            raise ValueError(
                "field 'serve_staleness' must be a number of seconds, "
                f"got {type(staleness).__name__}"
            )
        return cls(**kwargs)

"""Back-compat shim: :class:`~repro.registry.Registry` moved to
:mod:`repro.registry` so packages outside the pipeline (notably
:mod:`repro.exec`, whose registry the pipeline config validates against)
can use it without importing ``repro.pipeline`` and cycling back through
:mod:`repro.pipeline.config`.  Importing it from here keeps working.
"""

from __future__ import annotations

from ..registry import Registry

__all__ = ["Registry"]

"""The unified result every linkage front door returns.

:class:`LinkageReport` is produced by the stage runner
(:class:`~repro.pipeline.runner.LinkagePipeline`) and carries both the
linkage itself and everything the evaluation section reports — whether it
came from the batch pipeline (``SlimLinker``), a streaming delta relink
(``StreamingLinker.relink``), or one of the ported baselines.  Stage
timings use the canonical stage names (:data:`~repro.pipeline.stages.STAGE_NAMES`)
for every producer, so timing tables line up across linkers.

The pre-PR-3 name ``LinkageResult`` remains available as a deprecated
alias (``repro.core.slim.LinkageResult``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.matching import Edge
from ..core.similarity import SimilarityStats
from ..core.threshold import ThresholdDecision
from ..temporal import Windowing

__all__ = ["LinkageReport"]


@dataclass
class LinkageReport:
    """Everything a linkage run produces.

    Attributes
    ----------
    links:
        The final linkage ``{left entity: right entity}`` — matched pairs
        at or above the stop threshold.
    matched_edges:
        The full matching before thresholding (Fig. 2's histogram is drawn
        over these weights).
    edges:
        All positive-score candidate edges (the bipartite graph).
    threshold:
        The stop-threshold decision and its GMM diagnostics.
    candidate_pairs:
        Number of pairs the scoring stage was asked to score.
    stats:
        Similarity-engine counters (bin comparisons, alibi pairs).  For
        baselines without a :class:`~repro.core.similarity.SimilarityEngine`
        the producing stage fills in equivalent counters.
    timings:
        Per-stage wall-clock seconds under the canonical stage names
        (``prepare``, ``candidates``, ``scoring``, ``matching``,
        ``threshold``) — identical keys for every linker.
    shard_timings:
        Per-shard worker seconds for stages that shard their work through
        an execution backend (today the scoring stage; see
        :mod:`repro.exec`).  ``sum(shard_timings[stage])`` against
        ``timings[stage]`` is the realised parallel speedup —
        :func:`repro.eval.reporting.parallel_efficiency_table` renders it.
    stages:
        The stage names that ran, in order.
    extras:
        Producer-specific diagnostics (e.g. the streaming linker's
        relink reuse stats, a baseline's full score matrix, the scoring
        stage's ``executor`` summary).
    """

    links: Dict[str, str]
    matched_edges: List[Edge]
    edges: List[Edge]
    threshold: ThresholdDecision
    candidate_pairs: int
    stats: SimilarityStats
    timings: Dict[str, float]
    windowing: Windowing
    total_windows: int
    stages: Tuple[str, ...] = ()
    shard_timings: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def link_scores(self) -> Dict[Tuple[str, str], float]:
        """Scores of the final links."""
        accepted = {
            (edge.left, edge.right): edge.weight for edge in self.matched_edges
        }
        return {
            (left, right): accepted[(left, right)]
            for left, right in self.links.items()
        }

    @property
    def runtime_seconds(self) -> float:
        """Total wall-clock time across stages."""
        return sum(self.timings.values())

"""The shared mutable state a pipeline's stages read and write.

One :class:`LinkageContext` travels through the stage sequence of a
:class:`~repro.pipeline.runner.LinkagePipeline`.  Each stage consumes what
earlier stages produced and deposits its own output; the runner turns the
final state into a :class:`~repro.pipeline.report.LinkageReport`.

The canonical dataflow (Alg. 1):

========== ========================================== =====================
stage      reads                                      writes
========== ========================================== =====================
prepare    ``left``/``right`` datasets, ``config``    windowing, histories,
                                                      corpora
candidates histories, ``total_windows``               ``candidates``
scoring    corpora, ``candidates``, ``score_cache``   ``engine``, ``edges``,
                                                      ``stats``
matching   ``edges``                                  ``matched_edges``
threshold  ``matched_edges``                          ``threshold``, ``links``
========== ========================================== =====================

A producer with pre-existing state (the streaming linker's live corpora,
a baseline's own history build) pre-populates the relevant fields and runs
only the stages it needs — that is the whole point of making the context
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Collection, Dict, List, Optional, Tuple

from ..core.corpus import HistoryCorpus
from ..core.history import MobilityHistory
from ..core.matching import Edge
from ..core.score_cache import ScoreCache
from ..core.similarity import SimilarityEngine, SimilarityStats
from ..core.threshold import ThresholdDecision
from ..data.records import LocationDataset
from ..temporal import Windowing
from .report import LinkageReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec import Executor
    from .config import LinkageConfig

__all__ = ["LinkageContext"]


@dataclass
class LinkageContext:
    """Mutable blackboard shared by the stages of one linkage run."""

    config: "LinkageConfig"
    left: Optional[LocationDataset] = None
    right: Optional[LocationDataset] = None

    # prepare
    windowing: Optional[Windowing] = None
    total_windows: int = 0
    left_histories: Optional[Dict[str, MobilityHistory]] = None
    right_histories: Optional[Dict[str, MobilityHistory]] = None
    left_corpus: Optional[HistoryCorpus] = None
    right_corpus: Optional[HistoryCorpus] = None

    # candidates
    #: Candidate pairs — a set, or an already-sorted list (see
    #: :class:`~repro.pipeline.stages.CandidateStage`).
    candidates: Collection[Tuple[str, str]] = field(default_factory=set)

    # scoring
    score_cache: Optional[ScoreCache] = None
    #: Caller-provided execution backend (see :mod:`repro.exec`).  ``None``
    #: lets the scoring stage build one from the config; a non-serial
    #: executor placed here is borrowed (the caller shuts it down),
    #: letting repeated runs share one worker pool.
    executor: Optional["Executor"] = None
    #: Executors a *stage* built for itself during this run.  The runner
    #: shuts every one of them down in a ``finally`` — the guarantee that
    #: a stage raising mid-dispatch cannot leak a worker pool (shutdown
    #: is idempotent, so stages may also release their own eagerly).
    owned_executors: List["Executor"] = field(default_factory=list)
    engine: Optional[SimilarityEngine] = None
    edges: List[Edge] = field(default_factory=list)
    stats: Optional[SimilarityStats] = None

    # matching + threshold
    matched_edges: List[Edge] = field(default_factory=list)
    threshold: Optional[ThresholdDecision] = None
    links: Dict[str, str] = field(default_factory=dict)

    # bookkeeping
    timings: Dict[str, float] = field(default_factory=dict)
    #: Per-shard wall-clock seconds of stages that shard their work
    #: (today: ``"scoring"``) — the raw series behind
    #: :func:`repro.eval.reporting.parallel_efficiency_table`.
    shard_timings: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    stage_names: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def release_executors(self) -> None:
        """Shut down every stage-owned executor (idempotent; borrowed
        ``executor`` is the caller's to release)."""
        while self.owned_executors:
            self.owned_executors.pop().shutdown()

    def report(self) -> LinkageReport:
        """Assemble the :class:`~repro.pipeline.report.LinkageReport` from
        the current state (called by the runner after the last stage)."""
        if self.threshold is None:
            raise ValueError(
                "cannot build a report before a threshold stage has run"
            )
        if self.windowing is None:
            raise ValueError("cannot build a report without a windowing")
        stats = self.stats
        if stats is None:
            stats = self.engine.stats if self.engine else SimilarityStats()
        return LinkageReport(
            links=self.links,
            matched_edges=self.matched_edges,
            edges=self.edges,
            threshold=self.threshold,
            candidate_pairs=len(self.candidates),
            stats=stats,
            timings=self.timings,
            shard_timings=self.shard_timings,
            windowing=self.windowing,
            total_windows=self.total_windows,
            stages=tuple(self.stage_names),
            extras=self.extras,
        )

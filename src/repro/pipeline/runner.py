"""The stage runner: compose stages, time them, assemble the report.

:class:`LinkagePipeline` is the engine behind every linkage front door.
The default stage sequence reproduces Alg. 1 exactly; any producer can
swap stages (pass ``stages=[...]``) or pre-populate the context and run
only the tail of the pipeline (:meth:`LinkagePipeline.execute`) — that is
how the streaming linker plugs its delta machinery in per stage, and how
the baselines reuse the matching/threshold stages verbatim.

>>> from repro.data import Record, LocationDataset
>>> from repro.pipeline import LinkageConfig, LinkagePipeline
>>> left = LocationDataset.from_records(
...     [Record("u", 37.77, -122.42, 100.0),
...      Record("w", 40.71, -74.00, 110.0)], "left")
>>> right = LocationDataset.from_records(
...     [Record("v", 37.77, -122.42, 130.0),
...      Record("x", 40.71, -74.00, 140.0)], "right")
>>> report = LinkagePipeline(LinkageConfig()).run(left, right)
>>> sorted(report.links.items())
[('u', 'v'), ('w', 'x')]
>>> sorted(report.timings) == sorted(report.stages)
True
"""

from __future__ import annotations

# repro-lint: timing-module -- per-stage timings are part of the pipeline report
import time
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..core.score_cache import ScoreCache
from ..data.records import LocationDataset
from .config import LinkageConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec import Executor
from .context import LinkageContext
from .report import LinkageReport
from .stages import (
    MatchingStage,
    PrepareStage,
    ScoringStage,
    Stage,
    ThresholdStage,
    candidate_stages,
)

__all__ = ["LinkagePipeline"]


class LinkagePipeline:
    """A named, swappable stage composition over a shared context."""

    def __init__(
        self,
        config: Optional[LinkageConfig] = None,
        stages: Optional[Sequence[Stage]] = None,
    ) -> None:
        self.config = config or LinkageConfig()
        self.stages: List[Stage] = (
            list(stages)
            if stages is not None
            else self.default_stages(self.config)
        )

    @staticmethod
    def default_stages(config: LinkageConfig) -> List[Stage]:
        """Alg. 1 as stages: prepare → candidates → scoring → matching →
        threshold, with the candidate stage resolved from its registry."""
        candidate_factory = candidate_stages.get(config.resolved_candidates())
        candidate_stage = candidate_factory(config)
        # Custom factories may return any Stage-shaped object; sanity-check
        # the protocol, not the class.
        if not isinstance(candidate_stage, Stage):
            raise TypeError(
                f"candidate stage factory for "
                f"{config.resolved_candidates()!r} returned "
                f"{type(candidate_stage).__name__}, which has no "
                "name/run(context)"
            )
        return [
            PrepareStage(config),
            candidate_stage,
            ScoringStage(config),
            MatchingStage(config),
            ThresholdStage(config),
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        left: LocationDataset,
        right: LocationDataset,
        score_cache: Optional[ScoreCache] = None,
        executor: Optional["Executor"] = None,
    ) -> LinkageReport:
        """Run the full pipeline over two datasets.

        ``score_cache`` attaches a :class:`~repro.core.score_cache.ScoreCache`
        (e.g. one loaded from disk — the CLI's ``--score-cache``) so the
        scoring stage serves previously computed raw totals; ``executor``
        lends a pre-built execution backend to the scoring stage instead
        of having it build one from the config (repeated runs then share
        one worker pool).
        """
        context = LinkageContext(
            config=self.config,
            left=left,
            right=right,
            score_cache=score_cache,
            executor=executor,
        )
        return self.execute(context)

    def execute(self, context: LinkageContext) -> LinkageReport:
        """Run this pipeline's stages over a (possibly pre-populated)
        context and assemble the :class:`~repro.pipeline.report.LinkageReport`.

        Each stage's wall-clock time accumulates under its ``name`` in
        ``context.timings`` — the canonical stage names keep timing tables
        aligned across every linker.

        Stage-owned executors (``context.owned_executors``) are released
        in a ``finally``: a stage raising mid-dispatch cannot leak a
        worker pool.  A caller-lent ``context.executor`` stays alive — it
        is borrowed, not owned.
        """
        try:
            for stage in self.stages:
                clock = time.perf_counter()
                stage.run(context)
                elapsed = time.perf_counter() - clock
                context.timings[stage.name] = (
                    context.timings.get(stage.name, 0.0) + elapsed
                )
                context.stage_names.append(stage.name)
        finally:
            context.release_executors()
        return context.report()

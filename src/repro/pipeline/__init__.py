"""The composable linkage pipeline (Alg. 1 as named, swappable stages).

The paper's Alg. 1 is a staged pipeline — windowing → histories →
candidate filtering → Eq. 2 scoring → matching → stop threshold — and this
package exposes exactly that structure:

* :class:`~repro.pipeline.stages.Stage` — the protocol every stage
  implements (``name`` + ``run(context)``);
* :class:`~repro.pipeline.context.LinkageContext` — the shared mutable
  state stages read and write;
* string-keyed plugin registries
  (:data:`~repro.pipeline.stages.candidate_stages`,
  :data:`~repro.pipeline.stages.matchers`,
  :data:`~repro.pipeline.stages.threshold_methods`) with a
  ``register(name)`` decorator — custom strategies plug in without
  editing ``repro``;
* pluggable execution backends (:mod:`repro.exec`) — the scoring stage
  shards its candidate blocks through the config's ``executor``
  (``"serial"`` / ``"thread"`` / ``"process"``) with bit-identical
  results;
* :class:`~repro.pipeline.config.LinkageConfig` — one serializable
  configuration (``to_dict()`` / ``from_dict()``) shared by batch,
  streaming and the CLI;
* :class:`~repro.pipeline.report.LinkageReport` — the unified result
  every linkage front door returns;
* :class:`~repro.pipeline.runner.LinkagePipeline` — the runner that
  composes stages, times them under canonical names, and assembles the
  report.

Quickstart::

    from repro.pipeline import LinkageConfig, LinkagePipeline

    report = LinkagePipeline(LinkageConfig(threshold="otsu")).run(left, right)
    print(report.links, report.timings)

``SlimLinker``/``SlimConfig`` (and the baselines' ``link_report``) are
thin shims over this package.
"""

from .config import LinkageConfig
from .context import LinkageContext
from .registry import Registry
from .report import LinkageReport
from .runner import LinkagePipeline
from .stages import (
    DENSE_SCORE_BLOCK_SIZE,
    SCORE_BLOCK_SIZE,
    STAGE_CANDIDATES,
    STAGE_MATCHING,
    STAGE_NAMES,
    STAGE_PREPARE,
    STAGE_SCORING,
    STAGE_THRESHOLD,
    BruteForceCandidates,
    CandidateStage,
    LshCandidates,
    MatchingStage,
    PrepareStage,
    ScoringStage,
    Stage,
    TemporalCandidates,
    ThresholdStage,
    candidate_stages,
    matchers,
    resolve_score_block_size,
    threshold_methods,
)

__all__ = [
    "LinkageConfig",
    "LinkageContext",
    "LinkageReport",
    "LinkagePipeline",
    "Registry",
    "Stage",
    "STAGE_NAMES",
    "STAGE_PREPARE",
    "STAGE_CANDIDATES",
    "STAGE_SCORING",
    "STAGE_MATCHING",
    "STAGE_THRESHOLD",
    "SCORE_BLOCK_SIZE",
    "DENSE_SCORE_BLOCK_SIZE",
    "resolve_score_block_size",
    "candidate_stages",
    "matchers",
    "threshold_methods",
    "PrepareStage",
    "CandidateStage",
    "BruteForceCandidates",
    "LshCandidates",
    "TemporalCandidates",
    "ScoringStage",
    "MatchingStage",
    "ThresholdStage",
]

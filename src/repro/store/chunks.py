"""Chunked on-disk column store for the corpus flat array views.

The batch kernel (:mod:`repro.core.kernels`) gathers from four parallel
flat columns — cell ids, geometry slots, df-slot keys and IDFs — via
absolute-offset fancy indexing, so each column must stay *one*
contiguous array.  :class:`ChunkedColumnStore` therefore keeps one
binary file per column and treats chunks as a **logical** unit: fixed
``chunk_rows`` spans that are written once (append or whole-column
generation rewrite, never patched in place) and read back through
read-only :func:`numpy.memmap` views, so the OS page cache — not the
Python heap — holds whatever the kernel touches and a corpus can exceed
the RAM budget.

Maintenance passes (IDF re-derivation, compaction, df-slot remaps) never
materialise a whole column: they stream it chunk by chunk through a
:class:`ChunkLRU`, a small in-RAM cache of chunk copies with an
accountable ``resident_bytes`` bound — the ledger
``benchmarks/bench_out_of_core.py`` reports against the in-core
footprint.

Durability protocol (shared with :mod:`repro.store.snapshot`):

* column data lands in ``<name>.g<generation>.col`` files; a rewrite
  bumps the generation and leaves the old file on disk;
* the manifest (``store.json``) naming each column's dtype, row count
  and generation is replaced atomically (tmp file + ``os.replace``), so
  a crash mid-write leaves the previous manifest — and the files it
  points at — intact;
* :meth:`ChunkedColumnStore.checkpoint` / ``restore`` give the
  transactional-relink machinery the same rewind guarantee the in-RAM
  corpus has: restore repoints the manifest and truncates appended rows,
  and stale generation files are pruned only at the *next* checkpoint,
  after no rollback can need them.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = ["ChunkedColumnStore", "ChunkLRU", "DEFAULT_CHUNK_ROWS"]

#: Rows per logical chunk — the I/O and cache-accounting granule.
DEFAULT_CHUNK_ROWS = 16384


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class _ColumnRewriter:
    """Streaming whole-column rewrite into the next generation file.

    ``append`` chunks in order, then ``commit`` — the new generation
    becomes visible only through the atomic manifest replace, so a crash
    mid-rewrite leaves the previous generation current.
    """

    def __init__(
        self, store: "ChunkedColumnStore", name: str, dtype: np.dtype
    ) -> None:
        self._store = store
        self._name = name
        self._dtype = np.dtype(dtype)
        self._generation = store.generation(name) + 1
        self._path = store.column_path(name, self._generation)
        self._file = open(self._path, "wb")
        self._rows = 0

    def append(self, rows: np.ndarray) -> None:
        data = np.ascontiguousarray(rows, dtype=self._dtype)
        self._file.write(data.tobytes())
        self._rows += len(data)

    def commit(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._store._install_column(
            self._name, self._dtype, self._rows, self._generation
        )

    def abort(self) -> None:
        if not self._file.closed:
            self._file.close()
        if self._path.exists():
            self._path.unlink()


class ChunkedColumnStore:
    """One-file-per-column binary store with logical fixed-size chunks."""

    MANIFEST = "store.json"
    FORMAT = 1

    def __init__(
        self,
        directory: Path,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        columns: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.directory = Path(directory)
        self.chunk_rows = int(chunk_rows)
        #: name -> {"dtype": str, "rows": int, "generation": int}
        self._columns: Dict[str, Dict[str, object]] = columns or {}
        self._maps: Dict[Tuple[str, int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, directory: Path, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> "ChunkedColumnStore":
        """Start an empty store, clearing any previous store files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob("*.col"):
            stale.unlink()
        manifest = directory / cls.MANIFEST
        if manifest.exists():
            manifest.unlink()
        store = cls(directory, chunk_rows)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, directory: Path) -> "ChunkedColumnStore":
        """Open an existing store from its manifest."""
        directory = Path(directory)
        manifest_path = directory / cls.MANIFEST
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != cls.FORMAT:
            raise ValueError(
                f"unsupported store format {manifest.get('format')!r} "
                f"in {manifest_path} (expected {cls.FORMAT})"
            )
        return cls(directory, manifest["chunk_rows"], manifest["columns"])

    def column_path(self, name: str, generation: int) -> Path:
        return self.directory / f"{name}.g{generation}.col"

    def _write_manifest(self) -> None:
        payload = json.dumps(
            {
                "format": self.FORMAT,
                "chunk_rows": self.chunk_rows,
                "columns": self._columns,
            },
            indent=2,
            sort_keys=True,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=self.MANIFEST, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.directory / self.MANIFEST)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, name: str, array: np.ndarray) -> None:
        """Write a whole column (a fresh generation)."""
        writer = self.rewriter(name, array.dtype)
        try:
            for start in range(0, len(array), self.chunk_rows):
                writer.append(array[start : start + self.chunk_rows])
        except BaseException:
            writer.abort()
            raise
        writer.commit()

    def rewriter(self, name: str, dtype: np.dtype) -> _ColumnRewriter:
        """Streaming rewrite of one column into its next generation."""
        return _ColumnRewriter(self, name, dtype)

    def _install_column(
        self, name: str, dtype: np.dtype, rows: int, generation: int
    ) -> None:
        self._columns[name] = {
            "dtype": np.dtype(dtype).str,
            "rows": int(rows),
            "generation": int(generation),
        }
        self._write_manifest()

    def extend(self, name: str, rows: np.ndarray, start: int) -> None:
        """Append ``rows`` at absolute row offset ``start``.

        ``start`` must not exceed the current length; rows at or past it
        are truncated first, so a re-extend after a transactional rewind
        lands exactly where the rolled-back one did.
        """
        meta = self._columns[name]
        if start > int(meta["rows"]):
            raise ValueError(
                f"extend of {name!r} starts at row {start} but the column "
                f"has only {meta['rows']} rows"
            )
        dtype = np.dtype(meta["dtype"])
        data = np.ascontiguousarray(rows, dtype=dtype)
        path = self.column_path(name, int(meta["generation"]))
        with open(path, "r+b") as handle:
            handle.truncate(start * dtype.itemsize)
            handle.seek(start * dtype.itemsize)
            handle.write(data.tobytes())
            handle.flush()
            os.fsync(handle.fileno())
        meta["rows"] = start + len(data)
        # Same-generation mutation: bump the epoch so chunk copies taken
        # before this extend (the partial tail chunk in particular) are
        # recognisably stale.
        meta["epoch"] = int(meta.get("epoch", 0)) + 1
        self._write_manifest()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def rows(self, name: str) -> int:
        return int(self._columns[name]["rows"])

    def generation(self, name: str) -> int:
        meta = self._columns.get(name)
        return -1 if meta is None else int(meta["generation"])

    def version(self, name: str) -> Tuple[int, int]:
        """``(generation, epoch)`` — changes whenever column bytes may
        have changed (rewrite, extend, or transactional rewind)."""
        meta = self._columns.get(name)
        if meta is None:
            return (-1, -1)
        return (int(meta["generation"]), int(meta.get("epoch", 0)))

    def num_chunks(self, name: str) -> int:
        return -(-self.rows(name) // self.chunk_rows)

    def column(self, name: str) -> np.ndarray:
        """The whole column as one read-only memmap (empty columns get a
        plain empty array — memmaps cannot be zero-length)."""
        meta = self._columns[name]
        rows = int(meta["rows"])
        generation = int(meta["generation"])
        dtype = np.dtype(meta["dtype"])
        if rows == 0:
            return np.empty(0, dtype=dtype)
        key = (name, generation, rows)
        cached = self._maps.get(key)
        if cached is None:
            cached = np.memmap(
                self.column_path(name, generation),
                dtype=dtype,
                mode="r",
                shape=(rows,),
            )
            self._maps.clear()
            self._maps[key] = cached
        return cached

    # ------------------------------------------------------------------
    # transactional rewind
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the manifest for :meth:`restore`.

        Also the point where stale generation files are pruned: anything
        a previous (committed or rolled-back) transaction left behind is
        unreachable once a new checkpoint is cut.
        """
        self.prune_stale()
        return {"columns": {name: dict(meta) for name, meta in self._columns.items()}}

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind to a :meth:`checkpoint`: repoint generations, truncate
        rows appended since, and forget columns created since."""
        restored: Dict[str, Dict[str, object]] = {
            name: dict(meta) for name, meta in state["columns"].items()
        }
        for name, meta in restored.items():
            dtype = np.dtype(str(meta["dtype"]))
            path = self.column_path(name, int(meta["generation"]))
            want = int(meta["rows"]) * dtype.itemsize
            if not path.exists():
                raise FileNotFoundError(
                    f"cannot rewind column {name!r}: {path} is gone"
                )
            if path.stat().st_size > want:
                with open(path, "r+b") as handle:
                    handle.truncate(want)
                    handle.flush()
                    os.fsync(handle.fileno())
            elif path.stat().st_size < want:
                raise ValueError(
                    f"cannot rewind column {name!r}: {path} holds fewer "
                    f"bytes than the checkpoint recorded"
                )
        for name, meta in restored.items():
            current = self._columns.get(name)
            if current is not None:
                # The rewind itself may change visible bytes (truncation);
                # never fall behind the live epoch counter.
                meta["epoch"] = (
                    max(int(meta.get("epoch", 0)), int(current.get("epoch", 0))) + 1
                )
        self._columns = restored
        self._maps.clear()
        self._write_manifest()

    def prune_stale(self) -> int:
        """Delete generation files the current manifest does not reference."""
        live = {
            self.column_path(name, int(meta["generation"])).name
            for name, meta in self._columns.items()
        }
        pruned = 0
        for path in self.directory.glob("*.col"):
            if path.name not in live:
                path.unlink()
                pruned += 1
        return pruned


class ChunkLRU:
    """Small in-RAM cache of chunk copies over a :class:`ChunkedColumnStore`.

    Maintenance passes stream columns through it; ``resident_bytes`` is
    the accountable RAM those passes may hold at once (``capacity_chunks``
    chunk copies), independent of the column length.
    """

    def __init__(self, store: ChunkedColumnStore, capacity_chunks: int = 8) -> None:
        if capacity_chunks <= 0:
            raise ValueError(
                f"capacity_chunks must be positive, got {capacity_chunks}"
            )
        self.store = store
        self.capacity_chunks = int(capacity_chunks)
        self._chunks: "OrderedDict[Tuple[str, int, int], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def chunk(self, name: str, index: int) -> np.ndarray:
        """Chunk ``index`` of ``name`` as an in-RAM copy (LRU-cached)."""
        version = self.store.version(name)
        key = (name, version, index)
        cached = self._chunks.get(key)
        if cached is not None:
            self.hits += 1
            self._chunks.move_to_end(key)
            return cached
        self.misses += 1
        # A rewrite/extend/rewind changed the column version: copies of
        # the dead one are unreachable, drop them before they crowd out
        # live chunks.
        for stale in [k for k in self._chunks if k[0] == name and k[1] != version]:
            del self._chunks[stale]
        column = self.store.column(name)
        start = index * self.store.chunk_rows
        copy = np.array(column[start : start + self.store.chunk_rows])
        self._chunks[key] = copy
        while len(self._chunks) > self.capacity_chunks:
            self._chunks.popitem(last=False)
        return copy

    def iter_chunks(self, name: str) -> Iterator[Tuple[int, np.ndarray]]:
        """``(start_row, chunk)`` over one column, in order."""
        for index in range(self.store.num_chunks(name)):
            yield index * self.store.chunk_rows, self.chunk(name, index)

    @property
    def resident_bytes(self) -> int:
        """Bytes of column data currently held in RAM."""
        return sum(chunk.nbytes for chunk in self._chunks.values())

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "chunks": len(self._chunks),
            "resident_bytes": self.resident_bytes,
            "capacity_chunks": self.capacity_chunks,
        }

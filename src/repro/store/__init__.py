"""Out-of-core persistence: chunked column store + linker snapshots.

Two building blocks behind the streaming linker's persistence story:

* :mod:`repro.store.chunks` — a chunked, Hilbert-ordered
  (:mod:`repro.store.hilbert`) on-disk column store the corpus flat
  array views spill into
  (:meth:`~repro.core.corpus.HistoryCorpus.spill`), read back through
  ``np.memmap`` with a small in-RAM chunk LRU, so a corpus can exceed
  the RAM budget;
* :mod:`repro.store.snapshot` — atomic whole-linker snapshot
  directories (:meth:`~repro.core.streaming.StreamingLinker.save` /
  ``restore``): tmp-dir + ``os.replace`` promotion, a manifest with
  per-file SHA-256 digests, named failure classes for every way a
  snapshot can be untrustworthy.

This package owns *every* write into store and snapshot directories —
the ``snapshot-io`` repro-lint rule rejects direct ``open()``/
``np.save`` writes to snapshot paths anywhere else in the tree, the
same single-writer discipline the serve layer applies to published
snapshots.
"""

from .chunks import DEFAULT_CHUNK_ROWS, ChunkedColumnStore, ChunkLRU
from .hilbert import hilbert_index, hilbert_key
from .snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotDigestMismatch,
    SnapshotError,
    SnapshotMissing,
    SnapshotTruncated,
    SnapshotVersionSkew,
    load_state,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "ChunkedColumnStore",
    "ChunkLRU",
    "DEFAULT_CHUNK_ROWS",
    "hilbert_index",
    "hilbert_key",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "SnapshotMissing",
    "SnapshotTruncated",
    "SnapshotDigestMismatch",
    "SnapshotVersionSkew",
    "write_snapshot",
    "read_snapshot",
    "load_state",
]

"""Atomic whole-linker snapshot directories.

Layout under a snapshot root::

    root/
      CURRENT               # "snap-000042" — pointer to the live snapshot
      snap-000042/
        manifest.json       # format, snapshot ordinal, watermark, digests
        state.pkl           # pickled StreamingLinker state
        score_cache.bin     # ScoreCache.save blob (own magic + SHA-256)

Write protocol — a crash at *any* point leaves the previous snapshot
fully readable:

1. stale ``*.tmp-*`` litter from earlier crashes is removed;
2. every payload file is written (and fsynced) into
   ``snap-<n>.tmp-<pid>``;
3. ``manifest.json`` — format version, snapshot ordinal, event-time
   watermark and a SHA-256 digest per payload file — is written last;
4. the tmp dir is promoted with one ``os.replace`` to ``snap-<n>``;
5. ``CURRENT`` is swapped (tmp file + ``os.replace``) and older
   snapshots are pruned.

Readers ignore ``CURRENT`` except as a hint: they pick the
highest-numbered ``snap-*`` directory (a crash between steps 4 and 5
must not lose a promoted snapshot) and verify the manifest before
touching any payload.  Every verification failure is a *named*
:class:`SnapshotError` subclass so
:meth:`~repro.core.streaming.StreamingLinker.restore` can warn by name
and fall back to a cold start.

The deterministic chaos hook
:func:`~repro.exec.faults.kill_switch` fires after every payload write
and after the promote, which is how the crash-restart CI drill
(``tools/crash_restart.py``) SIGKILLs a writer mid-snapshot at a chosen
ordinal.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import shutil
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..exec.faults import kill_switch

__all__ = [
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "SnapshotMissing",
    "SnapshotTruncated",
    "SnapshotDigestMismatch",
    "SnapshotVersionSkew",
    "write_snapshot",
    "read_snapshot",
    "load_state",
]

#: Bump on any incompatible change to the state layout; readers refuse
#: snapshots from other formats (version skew) instead of guessing.
SNAPSHOT_FORMAT = 1

CURRENT = "CURRENT"
_SNAP_RE = re.compile(r"^snap-(\d{6})$")
#: Chaos-hook event names (see :func:`repro.exec.faults.kill_switch`).
EVENT_FILE = "snapshot-file"
EVENT_PROMOTE = "snapshot-promote"


class SnapshotError(RuntimeError):
    """A snapshot directory cannot be trusted (named subclasses below)."""


class SnapshotMissing(SnapshotError):
    """No snapshot exists under the root (plain cold start, no warning)."""


class SnapshotTruncated(SnapshotError):
    """Manifest or payload file absent/unparseable — write never finished."""


class SnapshotDigestMismatch(SnapshotError):
    """A payload file does not hash to its manifest digest."""


class SnapshotVersionSkew(SnapshotError):
    """Snapshot written by a different (older/newer) format version."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _snap_dirs(root: Path) -> Dict[int, Path]:
    found: Dict[int, Path] = {}
    for child in root.iterdir():
        match = _SNAP_RE.match(child.name)
        if match and child.is_dir():
            found[int(match.group(1))] = child
    return found


def _clean_litter(root: Path) -> None:
    for litter in root.glob("*.tmp-*"):
        if litter.is_dir():
            shutil.rmtree(litter)
        else:
            litter.unlink()


def write_snapshot(
    root: Path,
    state: Dict[str, object],
    extra_writers: Optional[Dict[str, object]] = None,
) -> Path:
    """Atomically publish one snapshot; returns the promoted directory.

    ``extra_writers`` maps payload file names to ``callable(path)``
    writers (e.g. ``score_cache.bin`` → :meth:`ScoreCache.save`) that
    must themselves write durably; their digests join the manifest.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    _clean_litter(root)
    existing = _snap_dirs(root)
    ordinal = max(existing, default=0) + 1
    tmp = root / f"snap-{ordinal:06d}.tmp-{os.getpid()}"
    tmp.mkdir()
    try:
        digests: Dict[str, str] = {}
        state_path = tmp / "state.pkl"
        with open(state_path, "wb") as handle:
            handle.write(pickle.dumps(state, protocol=4))
            handle.flush()
            os.fsync(handle.fileno())
        digests["state.pkl"] = _sha256(state_path)
        kill_switch(EVENT_FILE)
        for name, writer in (extra_writers or {}).items():
            payload = tmp / name
            writer(payload)
            digests[name] = _sha256(payload)
            kill_switch(EVENT_FILE)
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "snapshot": ordinal,
            "watermark": state.get("latest"),
            "files": digests,
        }
        manifest_path = tmp / "manifest.json"
        with open(manifest_path, "w") as handle:
            handle.write(json.dumps(manifest, indent=2, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        kill_switch(EVENT_FILE)
        _fsync_path(tmp)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    final = root / f"snap-{ordinal:06d}"
    os.replace(tmp, final)
    _fsync_path(root)
    kill_switch(EVENT_PROMOTE)
    # Swap the pointer, then prune superseded snapshots; a crash anywhere
    # here costs only disk space, never the promoted snapshot.
    fd, pointer_tmp = tempfile.mkstemp(dir=root, prefix=CURRENT, suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        handle.write(final.name)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(pointer_tmp, root / CURRENT)
    _fsync_path(root)
    for old_ordinal, old_dir in existing.items():
        if old_ordinal < ordinal:
            shutil.rmtree(old_dir, ignore_errors=True)
    return final


def read_snapshot(root: Path) -> Tuple[Dict[str, object], Path]:
    """Locate and verify the newest snapshot; ``(manifest, directory)``.

    Raises a named :class:`SnapshotError` subclass on anything
    untrustworthy; warns (but proceeds) about tmp-dir litter from
    crashed writers.
    """
    root = Path(root)
    if not root.is_dir():
        raise SnapshotMissing(f"no snapshot root at {root}")
    litter = sorted(p.name for p in root.glob("*.tmp-*"))
    if litter:
        warnings.warn(
            f"snapshot root {root} holds partial tmp litter from a crashed "
            f"writer: {litter} (ignored; the promoted snapshot is intact)",
            RuntimeWarning,
            stacklevel=2,
        )
    snaps = _snap_dirs(root)
    if not snaps:
        raise SnapshotMissing(f"no snap-* directory under {root}")
    directory = snaps[max(snaps)]
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise SnapshotTruncated(f"{directory} has no manifest.json")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotTruncated(
            f"{manifest_path} is unparseable ({exc}); the write never finished"
        ) from None
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise SnapshotTruncated(f"{manifest_path} lacks the files table")
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotVersionSkew(
            f"{directory} was written by snapshot format "
            f"{manifest.get('format')!r}; this build reads format "
            f"{SNAPSHOT_FORMAT}"
        )
    for name, recorded in manifest["files"].items():
        payload = directory / name
        if not payload.exists():
            raise SnapshotTruncated(f"{directory} lost payload file {name}")
        actual = _sha256(payload)
        if actual != recorded:
            raise SnapshotDigestMismatch(
                f"{payload} hashes to {actual[:12]}… but the manifest "
                f"recorded {str(recorded)[:12]}…"
            )
    return manifest, directory


def load_state(root: Path) -> Tuple[Dict[str, object], Optional[Path]]:
    """Verified linker state plus the score-cache blob path (if present)."""
    manifest, directory = read_snapshot(root)
    state = pickle.loads((directory / "state.pkl").read_bytes())
    cache_path = directory / "score_cache.bin"
    if "score_cache.bin" not in manifest["files"]:
        cache_path = None
    return state, cache_path

"""Hilbert-curve ordering of grid cells for spill locality.

The corpus flats are Morton-ordered *within* each entity window (see
:mod:`repro.core.corpus`), but entity layouts land in the flats in
arrival order — two entities that roam the same blocks can sit a whole
corpus apart.  When the flats spill to disk
(:meth:`~repro.core.corpus.HistoryCorpus.spill`) we therefore reorder
the *entities* by the Hilbert index of a representative cell: the
Hilbert curve preserves locality strictly better than the Morton curve
(no face-diagonal jumps), so entities of the same neighbourhood land in
the same chunks and a working set that is geographically concentrated
touches few pages.  Only whole per-entity slices move, so scores — sums
over per-entity slices — are bit-identical either way.

``hilbert_key`` maps a cell id to ``face * 4**MAX_LEVEL + d`` where
``d`` is the distance along the order-``MAX_LEVEL`` Hilbert curve of the
cell's leaf ``(i, j)`` corner — a total order over all cells of all
faces, derived purely from
:meth:`~repro.geo.cell.CellId.to_face_ij` (no floating point, no
randomness).
"""

from __future__ import annotations

from ..geo.cell import MAX_LEVEL, CellId

__all__ = ["hilbert_key", "hilbert_index"]


def hilbert_index(order: int, i: int, j: int) -> int:
    """Distance of ``(i, j)`` along the order-``order`` Hilbert curve.

    Classic iterative xy→d conversion on a ``2**order`` × ``2**order``
    grid (rotate-and-flip per quadrant, most significant bit first).

    >>> [hilbert_index(1, i, j) for i, j in ((0, 0), (0, 1), (1, 1), (1, 0))]
    [0, 1, 2, 3]
    >>> sorted(hilbert_index(3, i, j) for i in range(8) for j in range(8)) == list(range(64))
    True
    """
    if not 0 <= i < (1 << order) or not 0 <= j < (1 << order):
        raise ValueError(f"(i={i}, j={j}) outside the order-{order} grid")
    d = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if i & s else 0
        ry = 1 if j & s else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                i = s - 1 - i
                j = s - 1 - j
            i, j = j, i
        s >>= 1
    return d


def hilbert_key(cell: int) -> int:
    """Total Hilbert order over cell ids (any level; keyed on the leaf
    ``(i, j)`` corner so a parent sorts adjacent to its first child)."""
    face, i, j, _size = CellId(cell).to_face_ij()
    return (face << (2 * MAX_LEVEL)) | hilbert_index(MAX_LEVEL, i, j)

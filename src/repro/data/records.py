"""Location datasets: the record model of Sec. 2.1.

A *record* is the triple ``{u, l, t}`` — entity id, point location,
timestamp.  A *location dataset* is a collection of usage records from one
location-based service.  Entities carry opaque ids that are unique within a
dataset but (after anonymisation) carry no cross-dataset meaning, which is
exactly why spatio-temporal linkage is needed.

Internally a :class:`LocationDataset` stores one sorted numpy column set per
entity (timestamps, latitudes, longitudes); that keeps the 10^5-record
synthetic workloads compact and lets history construction and the synthetic
samplers operate vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Record", "LocationDataset", "DatasetStats"]


class Record(NamedTuple):
    """A single usage record ``{u, l, t}``.

    Attributes
    ----------
    entity_id:
        Dataset-local id of the entity that produced the record.
    lat, lng:
        Location of the record in degrees (record locations are points,
        Sec. 2.1).
    timestamp:
        POSIX seconds.
    """

    entity_id: str
    lat: float
    lng: float
    timestamp: float


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Summary statistics mirroring the dataset descriptions of Sec. 5.1."""

    name: str
    num_entities: int
    num_records: int
    avg_records_per_entity: float
    time_start: float
    time_end: float

    @property
    def span_days(self) -> float:
        """Duration covered by the dataset, in days."""
        return (self.time_end - self.time_start) / 86_400.0


class _Trace:
    """Columnar storage for one entity's records, sorted by timestamp."""

    __slots__ = ("timestamps", "lats", "lngs")

    def __init__(
        self, timestamps: np.ndarray, lats: np.ndarray, lngs: np.ndarray
    ) -> None:
        order = np.argsort(timestamps, kind="stable")
        self.timestamps = np.ascontiguousarray(timestamps[order], dtype=np.float64)
        self.lats = np.ascontiguousarray(lats[order], dtype=np.float64)
        self.lngs = np.ascontiguousarray(lngs[order], dtype=np.float64)

    def __len__(self) -> int:
        return self.timestamps.shape[0]


class LocationDataset:
    """An immutable collection of records grouped by entity.

    Construction goes through :meth:`from_records` or
    :meth:`from_arrays`; all transformation methods (subsetting, record
    sampling, id remapping) return new datasets.
    """

    def __init__(self, name: str, traces: Dict[str, _Trace]) -> None:
        self._name = name
        self._traces = traces

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Record], name: str = "dataset"
    ) -> "LocationDataset":
        """Build a dataset from an iterable of :class:`Record`."""
        grouped: Dict[str, List[Tuple[float, float, float]]] = {}
        for record in records:
            cls._validate_coords(record.lat, record.lng)
            grouped.setdefault(record.entity_id, []).append(
                (record.timestamp, record.lat, record.lng)
            )
        traces = {}
        for entity_id, rows in grouped.items():
            array = np.asarray(rows, dtype=np.float64)
            traces[entity_id] = _Trace(array[:, 0], array[:, 1], array[:, 2])
        return cls(name, traces)

    @classmethod
    def from_arrays(
        cls,
        entity_ids: Sequence[str],
        per_entity: Mapping[str, Tuple[np.ndarray, np.ndarray, np.ndarray]],
        name: str = "dataset",
    ) -> "LocationDataset":
        """Build from ``{entity: (timestamps, lats, lngs)}`` arrays.

        ``entity_ids`` fixes the entity ordering (useful for reproducible
        sampling); every id must be a key of ``per_entity``.
        """
        traces = {}
        for entity_id in entity_ids:
            timestamps, lats, lngs = per_entity[entity_id]
            timestamps = np.asarray(timestamps, dtype=np.float64)
            lats = np.asarray(lats, dtype=np.float64)
            lngs = np.asarray(lngs, dtype=np.float64)
            if not (timestamps.shape == lats.shape == lngs.shape):
                raise ValueError(f"column shapes differ for entity {entity_id!r}")
            if lats.size:
                cls._validate_coords(float(lats.min()), float(lngs.min()))
                cls._validate_coords(float(lats.max()), float(lngs.max()))
            traces[entity_id] = _Trace(timestamps, lats, lngs)
        return cls(name, traces)

    @staticmethod
    def _validate_coords(lat: float, lng: float) -> None:
        if not (-90.0 <= lat <= 90.0):
            raise ValueError(f"latitude out of range: {lat}")
        if not (-180.0 <= lng <= 180.0):
            raise ValueError(f"longitude out of range: {lng}")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable dataset name (used in reports)."""
        return self._name

    @property
    def entities(self) -> List[str]:
        """Entity ids, in insertion order."""
        return list(self._traces)

    @property
    def num_entities(self) -> int:
        """Number of entities (``|U|`` in the paper)."""
        return len(self._traces)

    @property
    def num_records(self) -> int:
        """Total record count."""
        return sum(len(trace) for trace in self._traces.values())

    def __len__(self) -> int:
        return self.num_records

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._traces

    def record_count(self, entity_id: str) -> int:
        """Number of records of one entity."""
        return len(self._traces[entity_id])

    def columns(self, entity_id: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(timestamps, lats, lngs)`` arrays for ``entity_id`` (sorted by
        time).  The arrays are the internal buffers — do not mutate."""
        trace = self._traces[entity_id]
        return trace.timestamps, trace.lats, trace.lngs

    def records_of(self, entity_id: str) -> Iterator[Record]:
        """Iterate one entity's records in time order."""
        trace = self._traces[entity_id]
        for k in range(len(trace)):
            yield Record(
                entity_id,
                float(trace.lats[k]),
                float(trace.lngs[k]),
                float(trace.timestamps[k]),
            )

    def records(self) -> Iterator[Record]:
        """Iterate all records, grouped by entity."""
        for entity_id in self._traces:
            yield from self.records_of(entity_id)

    def time_range(self) -> Tuple[float, float]:
        """``(earliest, latest)`` record timestamp across the dataset."""
        if not self._traces:
            raise ValueError(f"dataset {self._name!r} is empty")
        starts = [float(t.timestamps[0]) for t in self._traces.values() if len(t)]
        ends = [float(t.timestamps[-1]) for t in self._traces.values() if len(t)]
        return min(starts), max(ends)

    def stats(self) -> DatasetStats:
        """Summary statistics (entities, records, averages, span)."""
        start, end = self.time_range()
        entities = self.num_entities
        records = self.num_records
        return DatasetStats(
            name=self._name,
            num_entities=entities,
            num_records=records,
            avg_records_per_entity=records / entities if entities else 0.0,
            time_start=start,
            time_end=end,
        )

    # ------------------------------------------------------------------
    # transformations (all return new datasets)
    # ------------------------------------------------------------------
    def subset(self, entity_ids: Iterable[str], name: Optional[str] = None) -> "LocationDataset":
        """Dataset restricted to the given entities (order preserved)."""
        traces = {}
        for entity_id in entity_ids:
            if entity_id not in self._traces:
                raise KeyError(f"unknown entity: {entity_id!r}")
            traces[entity_id] = self._traces[entity_id]
        return LocationDataset(name or self._name, traces)

    def filter_min_records(self, min_records: int) -> "LocationDataset":
        """Drop entities with ``min_records`` or fewer records.

        The paper ignores entities with <= 5 records after downsampling
        (Sec. 5.1); this is that filter.
        """
        traces = {
            entity_id: trace
            for entity_id, trace in self._traces.items()
            if len(trace) > min_records
        }
        return LocationDataset(self._name, traces)

    def sample_records(
        self, inclusion_probability: float, rng: np.random.Generator
    ) -> "LocationDataset":
        """Keep each record independently with ``inclusion_probability``.

        This implements the paper's *record inclusion probability* knob
        (Sec. 5.1), which models asynchronous service usage.
        """
        if not 0.0 < inclusion_probability <= 1.0:
            raise ValueError(
                f"inclusion probability must be in (0, 1], got {inclusion_probability}"
            )
        traces = {}
        for entity_id, trace in self._traces.items():
            keep = rng.random(len(trace)) < inclusion_probability
            if keep.any():
                traces[entity_id] = _Trace(
                    trace.timestamps[keep], trace.lats[keep], trace.lngs[keep]
                )
        return LocationDataset(self._name, traces)

    def jitter_timestamps(
        self, sigma_seconds: float, rng: np.random.Generator
    ) -> "LocationDataset":
        """Add Gaussian noise to every timestamp (records stay sorted).

        Models asynchronous logging across services: two observations of
        the same underlying event rarely carry identical timestamps.  The
        SM-style experiments use this so that very narrow temporal windows
        genuinely lose co-occurrence evidence (Sec. 5.2.1's "very small
        temporal windows require services to be used synchronously").
        """
        if sigma_seconds < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma_seconds}")
        if sigma_seconds == 0:
            return self
        traces = {}
        for entity_id, trace in self._traces.items():
            noisy = trace.timestamps + rng.normal(0.0, sigma_seconds, len(trace))
            traces[entity_id] = _Trace(noisy, trace.lats, trace.lngs)
        return LocationDataset(self._name, traces)

    def rename_entities(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "LocationDataset":
        """Remap entity ids (anonymisation).  ``mapping`` must be injective
        and cover every entity."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("entity id mapping is not injective")
        traces = {}
        for entity_id, trace in self._traces.items():
            traces[mapping[entity_id]] = trace
        return LocationDataset(name or self._name, traces)

    def renamed(self, name: str) -> "LocationDataset":
        """Same data under a new dataset name."""
        return LocationDataset(name, dict(self._traces))

    def merged_with(self, other: "LocationDataset", name: Optional[str] = None) -> "LocationDataset":
        """Union of two datasets with disjoint entity ids."""
        overlap = set(self._traces) & set(other._traces)
        if overlap:
            raise ValueError(f"entity ids overlap: {sorted(overlap)[:5]}")
        traces = dict(self._traces)
        traces.update(other._traces)
        return LocationDataset(name or self._name, traces)

    def __repr__(self) -> str:
        return (
            f"LocationDataset({self._name!r}, entities={self.num_entities}, "
            f"records={self.num_records})"
        )

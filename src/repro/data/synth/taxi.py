"""Synthetic taxi-fleet traces (the Cab-dataset stand-in).

The paper's first corpus is the San Francisco cab trace: ~530 taxis sampled
continuously for 24 days, ~10,700 records per entity after sampling.  The
trace itself is not redistributable, so :class:`TaxiWorld` generates traces
with the properties the Cab experiments exercise:

* **dense, regular sampling** — a GPS ping every 1-3 minutes while moving;
* **bounded speed** — movement follows great-circle legs between venues at
  a configurable speed, so "same window but far apart" genuinely implies a
  different entity (the alibi premise of Eq. 1);
* **spatial skew** — legs end at Zipf-popular venues in Gaussian districts,
  producing the hot dominating cells that stress the LSH layer (Sec. 5.3:
  "the Cab dataset is spatially too dense").

Each taxi alternates driving legs with idle dwells at its destination, with
GPS noise added to every emitted fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...geo import LatLng
from ..records import LocationDataset
from .city import CityModel

__all__ = ["TaxiWorld"]


@dataclass(frozen=True)
class TaxiWorld:
    """Generator of a dense one-city taxi corpus.

    Parameters mirror the knobs the Cab experiments vary.  ``generate``
    returns the *world* dataset (ground-truth traces); experiments derive
    observed datasets from it via :func:`repro.data.sampling.sample_linkage_pair`.
    """

    city: CityModel
    num_taxis: int = 60
    start_time: float = 1_200_000_000.0
    duration_seconds: float = 2 * 86_400.0
    sample_period_seconds: float = 120.0
    min_speed_mps: float = 4.0
    max_speed_mps: float = 14.0
    dwell_seconds_mean: float = 420.0
    gps_noise_meters: float = 15.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_taxis < 1:
            raise ValueError("need at least one taxi")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("speed range must satisfy 0 < min <= max")
        if self.sample_period_seconds <= 0:
            raise ValueError("sample period must be positive")

    def generate(
        self,
        name: str = "taxi_world",
        rng: Optional[np.random.Generator] = None,
    ) -> LocationDataset:
        """Generate the full-fidelity world dataset.

        ``rng`` defaults to ``default_rng(self.seed)`` — the same seed
        always produces a byte-identical dataset.  Passing an explicit
        :class:`numpy.random.Generator` takes over the whole stream
        (useful for scenario generators that derive several correlated
        worlds from one seed).
        """
        if rng is None:
            rng = np.random.default_rng(self.seed)
        per_entity: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        entity_ids: List[str] = []
        for taxi_index in range(self.num_taxis):
            entity_id = f"taxi{taxi_index:04d}"
            entity_ids.append(entity_id)
            per_entity[entity_id] = self._generate_trace(rng)
        return LocationDataset.from_arrays(entity_ids, per_entity, name)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate_trace(
        self, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Simulate one taxi: venue-to-venue legs with dwells."""
        end_time = self.start_time + self.duration_seconds
        lat_noise = self.gps_noise_meters / 111_320.0

        position = self.city.venue_latlng(int(self.city.sample_venues(1, rng)[0]))
        clock = self.start_time
        times: List[float] = []
        lats: List[float] = []
        lngs: List[float] = []

        while clock < end_time:
            destination = self.city.venue_latlng(
                int(self.city.sample_venues(1, rng)[0])
            )
            distance = position.distance_meters(destination)
            speed = rng.uniform(self.min_speed_mps, self.max_speed_mps)
            travel_seconds = distance / speed if distance > 0 else 0.0

            # Emit fixes along the leg at the sampling period (with jitter).
            leg_samples = int(travel_seconds // self.sample_period_seconds)
            for k in range(1, leg_samples + 1):
                t = clock + k * self.sample_period_seconds
                if t >= end_time:
                    break
                fraction = (t - clock) / travel_seconds
                fix = position.interpolate(destination, fraction)
                times.append(t + rng.uniform(-5.0, 5.0))
                lats.append(fix.lat_degrees + rng.normal(0.0, lat_noise))
                lngs.append(fix.lng_degrees + rng.normal(0.0, lat_noise))
            clock += travel_seconds
            position = destination

            # Dwell at the venue, emitting stationary fixes.
            dwell = rng.exponential(self.dwell_seconds_mean)
            dwell_samples = int(dwell // self.sample_period_seconds)
            for k in range(1, dwell_samples + 1):
                t = clock + k * self.sample_period_seconds
                if t >= end_time:
                    break
                times.append(t + rng.uniform(-5.0, 5.0))
                lats.append(position.lat_degrees + rng.normal(0.0, lat_noise))
                lngs.append(position.lng_degrees + rng.normal(0.0, lat_noise))
            clock += dwell

        if not times:
            # Degenerate parameterisation (e.g. tiny duration): emit a single
            # fix so downstream filtering sees the entity rather than KeyError.
            times = [self.start_time]
            lats = [position.lat_degrees]
            lngs = [position.lng_degrees]
        return (
            np.asarray(times, dtype=np.float64),
            np.clip(np.asarray(lats, dtype=np.float64), -89.9, 89.9),
            np.asarray(lngs, dtype=np.float64),
        )

    def expected_records_per_taxi(self) -> float:
        """Back-of-envelope expected record count per taxi (used by tests to
        sanity-check generated densities)."""
        return self.duration_seconds / self.sample_period_seconds

    def runaway_speed_mps(self) -> float:
        """An upper bound on entity speed in this world — the generator
        analogue of the paper's 2 km/min US-highway constant."""
        return self.max_speed_mps


def default_cab_world(
    num_taxis: int = 60,
    duration_days: float = 2.0,
    sample_period_seconds: float = 120.0,
    seed: int = 7,
    rng: Optional[np.random.Generator] = None,
) -> TaxiWorld:
    """Convenience factory: a San-Francisco-like city and fleet.

    Scale-down of the paper's 530-taxi / 24-day corpus that keeps density
    (records per entity per hour) comparable while fitting laptop budgets.
    """
    # Radius chosen so cross-city trips (~2 * radius) can exceed the runaway
    # distance at narrow windows (5-15 min at the paper's 2 km/min speed),
    # giving the alibi experiments signal — mirroring SF bay-area trip spans.
    city = CityModel.generate(
        "san_francisco",
        LatLng.from_degrees(37.7749, -122.4194),
        radius_meters=14_000.0,
        num_venues=400,
        num_districts=6,
        rng=rng or np.random.default_rng(seed ^ 0x5F5F),
    )
    return TaxiWorld(
        city=city,
        num_taxis=num_taxis,
        duration_seconds=duration_days * 86_400.0,
        sample_period_seconds=sample_period_seconds,
        seed=seed,
    )

"""Synthetic two-service check-in worlds (the SM-dataset stand-in).

The paper's second corpus links Twitter against Foursquare: ~30,000 users a
side after sampling, a *median of ~12 records per entity*, checked in at
globally distributed venues.  :class:`CheckinWorld` generates an underlying
per-user event stream with the properties those experiments depend on:

* **sparse evidence** — a handful of events per user over weeks, so the
  F1-vs-record-count cliffs of Fig. 7c reproduce;
* **personal venue skew** — most events hit a user's few favourite venues
  (home/work/haunts), giving per-user discriminative bins and meaningful
  IDF weights;
* **global spread with low skew** — users live in different cities, so
  dominating cells diversify and LSH bucketing prunes aggressively
  (Sec. 5.3: "the SM dataset has lower geographic and temporal skew").

Two observed *service* datasets are derived either by the generic sampler
(:func:`repro.data.sampling.sample_linkage_pair`) or by
:meth:`CheckinWorld.two_services`, which models services with different
usage rates per user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..records import LocationDataset
from ..sampling import LinkagePair, pair_from_two_sources
from .city import WorldModel

__all__ = ["CheckinWorld"]


@dataclass(frozen=True)
class CheckinWorld:
    """Generator of a sparse, global, multi-city check-in corpus."""

    world: WorldModel
    num_users: int = 800
    start_time: float = 1_500_000_000.0
    duration_seconds: float = 26 * 86_400.0
    events_per_user_mean: float = 28.0
    favorite_venues: int = 4
    favorite_probability: float = 0.7
    travel_probability: float = 0.05
    checkin_noise_meters: float = 25.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("need at least one user")
        if self.events_per_user_mean <= 0:
            raise ValueError("events per user must be positive")
        if not 0.0 <= self.favorite_probability <= 1.0:
            raise ValueError("favorite probability must be in [0, 1]")

    def generate(
        self,
        name: str = "checkin_world",
        rng: Optional[np.random.Generator] = None,
    ) -> LocationDataset:
        """Generate the underlying world event stream (one dataset).

        ``rng`` defaults to ``default_rng(self.seed)`` — the same seed
        always produces a byte-identical dataset; an explicit
        :class:`numpy.random.Generator` takes over the stream.
        """
        if rng is None:
            rng = np.random.default_rng(self.seed)
        per_entity: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        entity_ids: List[str] = []
        for user_index in range(self.num_users):
            entity_id = f"user{user_index:05d}"
            entity_ids.append(entity_id)
            per_entity[entity_id] = self._generate_user(rng)
        return LocationDataset.from_arrays(entity_ids, per_entity, name)

    def two_services(
        self,
        intersection_ratio: float = 0.5,
        inclusion_probability: float = 0.5,
        left_rate: float = 1.0,
        right_rate: float = 1.0,
        min_records: int = 5,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> LinkagePair:
        """Derive two asynchronous service views of the world.

        ``left_rate`` / ``right_rate`` scale the per-service record retention
        before the common ``inclusion_probability`` is applied, modelling
        services used with different frequencies (Sec. 5.1).  An explicit
        ``rng`` overrides ``seed``; either way the derivation is
        deterministic.
        """
        if rng is None:
            rng = np.random.default_rng(self.seed if seed is None else seed)
        world = self.generate()
        left = world.sample_records(
            min(1.0, left_rate), rng
        ).renamed("service_a")
        right = world.sample_records(
            min(1.0, right_rate), rng
        ).renamed("service_b")
        return pair_from_two_sources(
            left,
            right,
            intersection_ratio=intersection_ratio,
            inclusion_probability=inclusion_probability,
            rng=rng,
            min_records=min_records,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate_user(
        self, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Simulate one user's check-in stream."""
        home_city_index = self.world.sample_city(rng)
        home_city = self.world.cities[home_city_index]
        favorites = home_city.sample_venues(self.favorite_venues, rng)

        count = max(1, int(rng.poisson(self.events_per_user_mean)))
        timestamps = np.sort(
            rng.uniform(self.start_time, self.start_time + self.duration_seconds, count)
        )
        lat_noise = self.checkin_noise_meters / 111_320.0

        lats = np.empty(count)
        lngs = np.empty(count)
        for k in range(count):
            city = home_city
            if self.world.num_cities > 1 and rng.random() < self.travel_probability:
                other = int(rng.integers(0, self.world.num_cities))
                if other != home_city_index:
                    city = self.world.cities[other]
            if city is home_city and rng.random() < self.favorite_probability:
                venue = int(favorites[int(rng.integers(0, len(favorites)))])
            else:
                venue = int(city.sample_venues(1, rng)[0])
            lats[k] = city.venue_lats[venue] + rng.normal(0.0, lat_noise)
            lngs[k] = city.venue_lngs[venue] + rng.normal(0.0, lat_noise)
        return timestamps, np.clip(lats, -89.9, 89.9), lngs


def default_sm_world(
    num_users: int = 800,
    duration_days: float = 10.0,
    events_per_user_mean: float = 28.0,
    seed: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> CheckinWorld:
    """Convenience factory for an SM-like world at laptop scale.

    ``rng`` (when given) drives world-model generation instead of the
    seed-derived default — mirroring :func:`~repro.data.synth.taxi.default_cab_world`.
    """
    world = WorldModel.generate(rng=rng or np.random.default_rng(seed ^ 0xA5A5))
    return CheckinWorld(
        world=world,
        num_users=num_users,
        duration_seconds=duration_days * 86_400.0,
        events_per_user_mean=events_per_user_mean,
        seed=seed,
    )

"""Synthetic mobility worlds standing in for the paper's proprietary data.

See DESIGN.md ("Substitutions") for the full rationale.  In short:

* :func:`~repro.data.synth.taxi.default_cab_world` — dense single-city taxi
  fleet (Cab-dataset stand-in);
* :func:`~repro.data.synth.checkins.default_sm_world` — sparse global
  check-in world (SM-dataset stand-in);
* :class:`~repro.data.synth.city.CityModel` /
  :class:`~repro.data.synth.city.WorldModel` — the underlying venue models.
"""

from .checkins import CheckinWorld, default_sm_world
from .city import DEFAULT_CITIES, CityModel, WorldModel
from .taxi import TaxiWorld, default_cab_world

__all__ = [
    "CityModel",
    "WorldModel",
    "DEFAULT_CITIES",
    "TaxiWorld",
    "CheckinWorld",
    "default_cab_world",
    "default_sm_world",
]

"""Synthetic city and multi-city world models.

The paper's two corpora differ along exactly the axes these models control:

* **Cab** — one dense city, strong spatial skew (hot districts), entities
  in near-continuous motion.  Modelled by :class:`CityModel`: venues drawn
  from Gaussian districts inside a disk, with Zipf-distributed popularity.
* **SM** — check-ins "distributed over the globe", low per-entity record
  counts, lower spatio-temporal skew.  Modelled by :class:`WorldModel`: a
  set of cities with Zipf sizes; each user lives in one city.

Venue popularity skew is what makes the IDF term of Eq. 2 and the
dominating-cell LSH signatures meaningful, so it is a first-class parameter
rather than an afterthought.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...geo import LatLng

__all__ = ["CityModel", "WorldModel", "DEFAULT_CITIES"]


def _named_rng(*parts: str) -> np.random.Generator:
    """Deterministic generator derived from a stable name hash.

    The fallback when a caller passes no explicit
    :class:`numpy.random.Generator`: seeding from ``zlib.crc32`` (stable
    across processes, unlike ``hash``) means two runs of the same
    generator parameters produce byte-identical worlds — an unseeded
    ``default_rng()`` here would silently make every downstream scenario
    irreproducible.
    """
    return np.random.default_rng(zlib.crc32("/".join(parts).encode("utf-8")))


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``1/rank**exponent``."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class CityModel:
    """A city: venues with coordinates and a popularity distribution.

    Venues are generated in ``num_districts`` Gaussian clusters whose
    centres lie inside ``radius_meters`` of the city centre.  Use
    :meth:`generate` rather than the constructor.
    """

    name: str
    center: LatLng
    radius_meters: float
    venue_lats: np.ndarray
    venue_lngs: np.ndarray
    venue_weights: np.ndarray

    @classmethod
    def generate(
        cls,
        name: str,
        center: LatLng,
        radius_meters: float = 8_000.0,
        num_venues: int = 400,
        num_districts: int = 6,
        popularity_exponent: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "CityModel":
        """Create a city with clustered venues and Zipf popularity.

        ``rng`` defaults to a generator seeded from the city name, so an
        omitted generator still yields a reproducible city (pass an
        explicit :class:`numpy.random.Generator` to take control of the
        stream).
        """
        if num_venues < 1:
            raise ValueError("a city needs at least one venue")
        if rng is None:
            rng = _named_rng("city", name)
        # Degrees per metre at the city's latitude.
        lat_scale = 1.0 / 111_320.0
        lng_scale = lat_scale / max(0.1, np.cos(center.lat_radians))

        district_r = rng.uniform(0.0, radius_meters * 0.8, num_districts)
        district_theta = rng.uniform(0.0, 2 * np.pi, num_districts)
        district_lat = center.lat_degrees + district_r * np.sin(district_theta) * lat_scale
        district_lng = center.lng_degrees + district_r * np.cos(district_theta) * lng_scale
        district_sigma = rng.uniform(radius_meters * 0.05, radius_meters * 0.2, num_districts)

        assignment = rng.integers(0, num_districts, num_venues)
        venue_lats = rng.normal(
            district_lat[assignment], district_sigma[assignment] * lat_scale
        )
        venue_lngs = rng.normal(
            district_lng[assignment], district_sigma[assignment] * lng_scale
        )
        # Shuffle popularity so rank is independent of district geometry.
        weights = _zipf_weights(num_venues, popularity_exponent)
        rng.shuffle(weights)
        return cls(
            name=name,
            center=center,
            radius_meters=radius_meters,
            venue_lats=np.clip(venue_lats, -89.9, 89.9),
            venue_lngs=((venue_lngs + 180.0) % 360.0) - 180.0,
            venue_weights=weights,
        )

    @property
    def num_venues(self) -> int:
        """Number of venues in the city."""
        return int(self.venue_lats.shape[0])

    def sample_venues(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample venue indices by popularity."""
        return rng.choice(self.num_venues, size=count, p=self.venue_weights)

    def venue_latlng(self, index: int) -> LatLng:
        """Coordinates of one venue."""
        return LatLng.from_degrees(
            float(self.venue_lats[index]), float(self.venue_lngs[index])
        )


#: A spread of city centres (name, lat, lng) for global check-in worlds.
DEFAULT_CITIES: Tuple[Tuple[str, float, float], ...] = (
    ("san_francisco", 37.7749, -122.4194),
    ("new_york", 40.7128, -74.0060),
    ("london", 51.5074, -0.1278),
    ("istanbul", 41.0082, 28.9784),
    ("tokyo", 35.6762, 139.6503),
    ("sydney", -33.8688, 151.2093),
    ("sao_paulo", -23.5505, -46.6333),
    ("johannesburg", -26.2041, 28.0473),
)


@dataclass(frozen=True)
class WorldModel:
    """A set of cities with a Zipf population distribution across them."""

    cities: Tuple[CityModel, ...]
    city_weights: np.ndarray

    @classmethod
    def generate(
        cls,
        city_specs: Sequence[Tuple[str, float, float]] = DEFAULT_CITIES,
        venues_per_city: int = 250,
        population_exponent: float = 0.8,
        rng: Optional[np.random.Generator] = None,
    ) -> "WorldModel":
        """Create a multi-city world for check-in generation.

        ``rng`` defaults to a generator seeded from the city names, so an
        omitted generator still yields a reproducible world.
        """
        if rng is None:
            rng = _named_rng("world", *(name for name, _, _ in city_specs))
        cities: List[CityModel] = []
        for name, lat, lng in city_specs:
            cities.append(
                CityModel.generate(
                    name,
                    LatLng.from_degrees(lat, lng),
                    num_venues=venues_per_city,
                    rng=rng,
                )
            )
        return cls(
            cities=tuple(cities),
            city_weights=_zipf_weights(len(cities), population_exponent),
        )

    @property
    def num_cities(self) -> int:
        """Number of cities in the world."""
        return len(self.cities)

    def sample_city(self, rng: np.random.Generator) -> int:
        """Sample a home-city index by population weight."""
        return int(rng.choice(self.num_cities, p=self.city_weights))

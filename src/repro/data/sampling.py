"""The paper's experimental sampling protocol (Sec. 5.1).

Every linkage experiment samples *two, possibly overlapping, subsets* of a
source corpus and links them against each other, controlled by two knobs:

* **entity intersection ratio** — the fraction of each side's entities that
  exist on both sides.  Real deployments never see one service's users as a
  subset of the other's, and this knob is what exposes false-positive
  behaviour (Sec. 3.2).
* **record inclusion probability** — each record survives independently
  with this probability, separately on the two sides, modelling
  asynchronous service usage with differing frequencies.

After downsampling, entities with <= ``min_records`` records are dropped
(the paper uses 5), and the surviving entities are re-keyed with opaque
anonymised ids.  Ground truth is retained out-of-band for evaluation only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .records import LocationDataset

__all__ = ["LinkagePair", "sample_linkage_pair", "pair_from_two_sources"]

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class LinkagePair:
    """Two datasets to be linked plus held-out ground truth.

    ``ground_truth`` maps left-side entity ids to right-side entity ids for
    entities that are genuinely the same real-world entity *and survived
    record filtering on both sides* — the denominator the paper's recall is
    measured against.
    """

    left: LocationDataset
    right: LocationDataset
    ground_truth: Dict[str, str] = field(default_factory=dict)

    @property
    def num_common(self) -> int:
        """Number of true cross-dataset links."""
        return len(self.ground_truth)

    def describe(self) -> str:
        """One-line summary used by example scripts and benches."""
        return (
            f"{self.left.name}: {self.left.num_entities} entities / "
            f"{self.left.num_records} records | "
            f"{self.right.name}: {self.right.num_entities} entities / "
            f"{self.right.num_records} records | common: {self.num_common}"
        )


def _partition_entities(
    entities: Sequence[str],
    intersection_ratio: float,
    rng: np.random.Generator,
) -> Tuple[List[str], List[str], List[str]]:
    """Choose (common, left-only, right-only) entity sets.

    Each side receives ``m = |U| // 2`` entities, ``c = round(ratio * m)``
    of them common — with ratio 0.5 over 530 cabs this yields the paper's
    "two datasets, each with 265 entities, 133 common" (Sec. 5.1).  The
    exclusive sets are disjoint, so ``2m - c <= |U|`` always holds.
    """
    if not 0.0 <= intersection_ratio <= 1.0:
        raise ValueError(
            f"intersection ratio must be in [0, 1], got {intersection_ratio}"
        )
    population = list(entities)
    total = len(population)
    if total < 2:
        raise ValueError("need at least 2 entities to sample a linkage pair")
    side_size = max(1, total // 2)
    common_size = int(round(intersection_ratio * side_size))
    order = rng.permutation(total)
    shuffled = [population[k] for k in order]
    common = shuffled[:common_size]
    rest = shuffled[common_size:]
    only_size = side_size - common_size
    left_only = rest[:only_size]
    right_only = rest[only_size : 2 * only_size]
    return common, left_only, right_only


def _anonymise(
    dataset: LocationDataset, prefix: str, rng: np.random.Generator
) -> Tuple[LocationDataset, Dict[str, str]]:
    """Re-key entities with opaque ids; returns (dataset, original->new)."""
    entities = dataset.entities
    order = rng.permutation(len(entities))
    mapping = {
        entities[int(original)]: f"{prefix}{position:06d}"
        for position, original in enumerate(order)
    }
    return dataset.rename_entities(mapping), mapping


def sample_linkage_pair(
    source: LocationDataset,
    intersection_ratio: float = 0.5,
    inclusion_probability: float = 0.5,
    rng: RngLike = None,
    min_records: int = 5,
    anonymize: bool = True,
    left_name: str = "left",
    right_name: str = "right",
    right_inclusion_probability: Optional[float] = None,
    timestamp_jitter_seconds: float = 0.0,
) -> LinkagePair:
    """Sample a linkage experiment from a single source corpus.

    This is the Cab-style setup: both observed datasets derive from the same
    underlying trace corpus, and downsampling the two sides independently
    creates the temporal asynchrony the similarity score must tolerate.

    ``right_inclusion_probability`` defaults to ``inclusion_probability``
    but can differ to model services with different usage frequencies.
    ``timestamp_jitter_seconds`` adds independent Gaussian timestamp noise
    per side, modelling services that log the same activity at slightly
    different instants (used by the SM-style experiments).
    """
    rng = _as_rng(rng)
    common, left_only, right_only = _partition_entities(
        source.entities, intersection_ratio, rng
    )
    left = source.subset(common + left_only, name=left_name).sample_records(
        inclusion_probability, rng
    )
    right = source.subset(common + right_only, name=right_name).sample_records(
        right_inclusion_probability
        if right_inclusion_probability is not None
        else inclusion_probability,
        rng,
    )
    if timestamp_jitter_seconds > 0:
        left = left.jitter_timestamps(timestamp_jitter_seconds, rng)
        right = right.jitter_timestamps(timestamp_jitter_seconds, rng)
    left = left.filter_min_records(min_records)
    right = right.filter_min_records(min_records)

    surviving_common = [
        entity for entity in common if entity in left and entity in right
    ]
    if anonymize:
        left, left_map = _anonymise(left, "L", rng)
        right, right_map = _anonymise(right, "R", rng)
        ground_truth = {
            left_map[entity]: right_map[entity] for entity in surviving_common
        }
    else:
        ground_truth = {entity: entity for entity in surviving_common}
    return LinkagePair(left=left, right=right, ground_truth=ground_truth)


def pair_from_two_sources(
    left_source: LocationDataset,
    right_source: LocationDataset,
    intersection_ratio: float = 0.5,
    inclusion_probability: float = 0.5,
    rng: RngLike = None,
    min_records: int = 5,
    anonymize: bool = True,
) -> LinkagePair:
    """Sample a linkage experiment from two distinct service corpora.

    This is the SM-style setup (Twitter vs Foursquare): the two sources
    share underlying world entity ids (an entity appears in both when it
    uses both services).  Entity subsets are chosen so the given fraction of
    each side's entities is common, then records are downsampled per side.
    """
    rng = _as_rng(rng)
    shared = [e for e in left_source.entities if e in right_source]
    left_exclusive = [e for e in left_source.entities if e not in right_source]
    right_exclusive = [e for e in right_source.entities if e not in left_source]
    if not shared and intersection_ratio > 0:
        raise ValueError("sources share no entities but intersection ratio > 0")

    # Choose the largest per-side size m such that c = round(ratio * m)
    # common entities exist and both sides can pad the remaining m - c slots
    # with exclusives, falling back to *disjoint* spare shared entities
    # (an entity used on one side only is not a true link).
    def _feasible(side: int) -> bool:
        common_count = int(round(intersection_ratio * side))
        if common_count > len(shared):
            return False
        pad_need = side - common_count
        left_short = max(0, pad_need - len(left_exclusive))
        right_short = max(0, pad_need - len(right_exclusive))
        return left_short + right_short <= len(shared) - common_count

    low = 1
    high = len(shared) + max(len(left_exclusive), len(right_exclusive))
    while low < high:
        mid = (low + high + 1) // 2
        if _feasible(mid):
            low = mid
        else:
            high = mid - 1
    side_size = low
    common_size = min(int(round(intersection_ratio * side_size)), len(shared))

    shared_shuffled = [shared[int(k)] for k in rng.permutation(len(shared))]
    common = shared_shuffled[:common_size]
    spare_shared = iter(shared_shuffled[common_size:])

    def pad(exclusive: List[str]) -> List[str]:
        need = side_size - common_size
        pool = [exclusive[int(k)] for k in rng.permutation(len(exclusive))]
        chosen = pool[:need]
        for _ in range(need - len(chosen)):
            try:
                chosen.append(next(spare_shared))
            except StopIteration:  # pragma: no cover - _feasible prevents this
                break
        return chosen

    left_pad = pad(left_exclusive)
    right_pad = pad(right_exclusive)

    left = left_source.subset(common + left_pad, name=left_source.name)
    right = right_source.subset(common + right_pad, name=right_source.name)
    left = left.sample_records(inclusion_probability, rng).filter_min_records(
        min_records
    )
    right = right.sample_records(inclusion_probability, rng).filter_min_records(
        min_records
    )
    surviving = [e for e in common if e in left and e in right]
    if anonymize:
        left, left_map = _anonymise(left, "L", rng)
        right, right_map = _anonymise(right, "R", rng)
        ground_truth = {left_map[e]: right_map[e] for e in surviving}
    else:
        ground_truth = {e: e for e in surviving}
    return LinkagePair(left=left, right=right, ground_truth=ground_truth)

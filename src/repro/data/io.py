"""Dataset loaders and writers.

The paper evaluates on a San Francisco taxi trace and a Twitter/Foursquare
check-in corpus; neither is redistributable, so the benchmarks here run on
the synthetic worlds in :mod:`repro.data.synth`.  These loaders exist so the
library is directly usable on the public datasets named in the reproduction
notes (GeoLife's PLT directory layout, Gowalla/Brightkite check-in TSVs) and
on plain CSV exports — all without a pandas dependency.
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Iterator, List, Optional, Union

from .records import LocationDataset, Record

__all__ = ["load_csv", "save_csv", "load_geolife", "load_gowalla"]

PathLike = Union[str, Path]


def _parse_timestamp(raw: str) -> float:
    """Parse a timestamp that is either POSIX seconds or ISO 8601."""
    raw = raw.strip()
    try:
        return float(raw)
    except ValueError:
        pass
    text = raw.replace("Z", "+00:00")
    parsed = _dt.datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
    return parsed.timestamp()


def load_csv(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: str = ",",
    entity_column: str = "entity",
    lat_column: str = "lat",
    lng_column: str = "lng",
    time_column: str = "timestamp",
) -> LocationDataset:
    """Load records from a delimited text file with a header row.

    The timestamp column may hold POSIX seconds or ISO 8601 strings.  Rows
    with unparsable coordinates raise immediately — silent data loss would
    corrupt linkage ground truth.
    """
    path = Path(path)
    records: List[Record] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        required = {entity_column, lat_column, lng_column, time_column}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: header must contain {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            records.append(
                Record(
                    entity_id=row[entity_column],
                    lat=float(row[lat_column]),
                    lng=float(row[lng_column]),
                    timestamp=_parse_timestamp(row[time_column]),
                )
            )
    return LocationDataset.from_records(records, name or path.stem)


def save_csv(dataset: LocationDataset, path: PathLike, delimiter: str = ",") -> None:
    """Write a dataset as ``entity,lat,lng,timestamp`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["entity", "lat", "lng", "timestamp"])
        for record in dataset.records():
            writer.writerow(
                [
                    record.entity_id,
                    f"{record.lat:.7f}",
                    f"{record.lng:.7f}",
                    f"{record.timestamp:.3f}",
                ]
            )


def _iter_plt_records(entity_id: str, plt_path: Path) -> Iterator[Record]:
    """Parse one GeoLife ``.plt`` trajectory file.

    Format: 6 header lines, then
    ``lat,lng,0,altitude,days,date,time`` rows.
    """
    with plt_path.open() as handle:
        for line_number, line in enumerate(handle):
            if line_number < 6:
                continue
            parts = line.strip().split(",")
            if len(parts) < 7:
                continue
            lat, lng = float(parts[0]), float(parts[1])
            timestamp = _parse_timestamp(f"{parts[5]}T{parts[6]}")
            yield Record(entity_id, lat, lng, timestamp)


def load_geolife(root: PathLike, name: str = "geolife", max_users: Optional[int] = None) -> LocationDataset:
    """Load the GeoLife GPS trajectory corpus.

    Expects the published layout ``<root>/Data/<user>/Trajectory/*.plt``;
    a layout without the ``Data`` level is also accepted.
    """
    root = Path(root)
    data_dir = root / "Data" if (root / "Data").is_dir() else root
    user_dirs = sorted(p for p in data_dir.iterdir() if p.is_dir())
    if max_users is not None:
        user_dirs = user_dirs[:max_users]
    records: List[Record] = []
    for user_dir in user_dirs:
        trajectory_dir = user_dir / "Trajectory"
        if not trajectory_dir.is_dir():
            continue
        for plt_path in sorted(trajectory_dir.glob("*.plt")):
            records.extend(_iter_plt_records(user_dir.name, plt_path))
    if not records:
        raise ValueError(f"no GeoLife trajectories found under {root}")
    return LocationDataset.from_records(records, name)


def load_gowalla(path: PathLike, name: str = "gowalla", max_records: Optional[int] = None) -> LocationDataset:
    """Load a Gowalla/Brightkite-style check-in TSV.

    Format: ``user <TAB> check-in time (ISO) <TAB> lat <TAB> lng <TAB>
    location id`` with no header, as published with the SNAP datasets.
    """
    path = Path(path)
    records: List[Record] = []
    with path.open() as handle:
        for line in handle:
            parts = line.rstrip("\n").split("\t")
            if len(parts) < 4:
                continue
            records.append(
                Record(
                    entity_id=parts[0],
                    lat=float(parts[2]),
                    lng=float(parts[3]),
                    timestamp=_parse_timestamp(parts[1]),
                )
            )
            if max_records is not None and len(records) >= max_records:
                break
    if not records:
        raise ValueError(f"no check-ins found in {path}")
    return LocationDataset.from_records(records, name)

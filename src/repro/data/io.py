"""Dataset loaders and writers.

The paper evaluates on a San Francisco taxi trace and a Twitter/Foursquare
check-in corpus; neither is redistributable, so the benchmarks here run on
the synthetic worlds in :mod:`repro.data.synth`.  These loaders exist so the
library is directly usable on the public datasets named in the reproduction
notes (GeoLife's PLT directory layout, Gowalla/Brightkite check-in TSVs) and
on plain CSV exports — all without a pandas dependency.

Every loader takes ``on_error`` deciding what a malformed or out-of-range
row does.  ``"raise"`` (the default) stops the load at the first bad row —
silent data loss would corrupt linkage ground truth.  ``"skip"`` quarantines
bad rows instead and returns ``(dataset, QuarantineReport)``, so a
multi-gigabyte public trace with a handful of corrupt lines still loads and
the caller can audit exactly what was dropped and why.
"""

from __future__ import annotations

import csv
import datetime as _dt
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

from .records import LocationDataset, Record

__all__ = [
    "QuarantinedRow",
    "QuarantineReport",
    "load_csv",
    "save_csv",
    "load_geolife",
    "load_gowalla",
]

PathLike = Union[str, Path]

_ON_ERROR_MODES = ("raise", "skip")


class QuarantinedRow(NamedTuple):
    """One input row a loader refused, and why."""

    source: str
    line: int
    reason: str
    raw: str


@dataclass
class QuarantineReport:
    """What a ``on_error="skip"`` load kept and what it dropped.

    Attributes
    ----------
    loaded:
        Records that made it into the returned dataset.
    rows:
        The quarantined rows, in input order, each carrying its source
        file, 1-based line number, a short machine-checkable reason and
        the raw line text for forensics.
    """

    loaded: int = 0
    rows: List[QuarantinedRow] = field(default_factory=list)

    @property
    def skipped(self) -> int:
        """Number of quarantined rows."""
        return len(self.rows)

    def reasons(self) -> Dict[str, int]:
        """Quarantined-row count per reason string."""
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.reason] = counts.get(row.reason, 0) + 1
        return counts

    def quarantine(self, source: str, line: int, reason: str, raw: str) -> None:
        self.rows.append(QuarantinedRow(source, line, reason, raw.rstrip("\n")))


def _check_on_error(on_error: str) -> None:
    if on_error not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )


def _coord_problem(lat: float, lng: float) -> Optional[str]:
    """The out-of-range reason for a coordinate pair, or None when valid.

    Mirrors :meth:`LocationDataset._validate_coords` (which guards the
    ``on_error="raise"`` path inside ``from_records``); NaN fails both
    comparisons and is reported as out of range.
    """
    if not (-90.0 <= lat <= 90.0):
        return f"latitude out of range: {lat}"
    if not (-180.0 <= lng <= 180.0):
        return f"longitude out of range: {lng}"
    return None


def _parse_timestamp(raw: str) -> float:
    """Parse a timestamp that is either POSIX seconds or ISO 8601."""
    raw = raw.strip()
    try:
        return float(raw)
    except ValueError:
        pass
    text = raw.replace("Z", "+00:00")
    parsed = _dt.datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
    return parsed.timestamp()


def load_csv(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: str = ",",
    entity_column: str = "entity",
    lat_column: str = "lat",
    lng_column: str = "lng",
    time_column: str = "timestamp",
    on_error: str = "raise",
) -> Union[LocationDataset, Tuple[LocationDataset, QuarantineReport]]:
    """Load records from a delimited text file with a header row.

    The timestamp column may hold POSIX seconds or ISO 8601 strings.  With
    ``on_error="raise"`` (default), rows with unparsable or out-of-range
    coordinates raise immediately and only the dataset is returned.  With
    ``on_error="skip"``, bad rows are quarantined and the return value is
    ``(dataset, QuarantineReport)``.  A missing or incomplete header always
    raises — that is a structural problem, not a bad row.
    """
    _check_on_error(on_error)
    path = Path(path)
    report = QuarantineReport()
    records: List[Record] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        required = {entity_column, lat_column, lng_column, time_column}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: header must contain {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            raw = delimiter.join(
                "" if value is None else str(value) for value in row.values()
            )
            try:
                record = Record(
                    entity_id=row[entity_column],
                    lat=float(row[lat_column]),
                    lng=float(row[lng_column]),
                    timestamp=_parse_timestamp(row[time_column]),
                )
            except (TypeError, ValueError) as error:
                if on_error == "raise":
                    raise ValueError(
                        f"{path}:{reader.line_num}: malformed row: {error}"
                    ) from error
                report.quarantine(
                    str(path), reader.line_num, f"malformed: {error}", raw
                )
                continue
            problem = _coord_problem(record.lat, record.lng)
            if problem is not None:
                if on_error == "raise":
                    raise ValueError(f"{path}:{reader.line_num}: {problem}")
                report.quarantine(str(path), reader.line_num, problem, raw)
                continue
            records.append(record)
    dataset = LocationDataset.from_records(records, name or path.stem)
    if on_error == "skip":
        report.loaded = len(records)
        return dataset, report
    return dataset


def save_csv(dataset: LocationDataset, path: PathLike, delimiter: str = ",") -> None:
    """Write a dataset as ``entity,lat,lng,timestamp`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["entity", "lat", "lng", "timestamp"])
        for record in dataset.records():
            writer.writerow(
                [
                    record.entity_id,
                    f"{record.lat:.7f}",
                    f"{record.lng:.7f}",
                    f"{record.timestamp:.3f}",
                ]
            )


def _iter_plt_records(
    entity_id: str,
    plt_path: Path,
    on_error: str,
    report: QuarantineReport,
) -> Iterator[Record]:
    """Parse one GeoLife ``.plt`` trajectory file.

    Format: 6 header lines, then ``lat,lng,0,altitude,days,date,time``
    rows.  Truncated rows (including the blank trailing line many files
    end with) are skipped as they always were; rows whose fields fail to
    parse or whose coordinates are out of range follow ``on_error``.
    """
    with plt_path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            if line_number <= 6:
                continue
            parts = line.strip().split(",")
            if len(parts) < 7:
                if line.strip() and on_error == "skip":
                    report.quarantine(
                        str(plt_path), line_number, "truncated row", line
                    )
                continue
            try:
                lat, lng = float(parts[0]), float(parts[1])
                timestamp = _parse_timestamp(f"{parts[5]}T{parts[6]}")
            except ValueError as error:
                if on_error == "raise":
                    raise ValueError(
                        f"{plt_path}:{line_number}: malformed row: {error}"
                    ) from error
                report.quarantine(
                    str(plt_path), line_number, f"malformed: {error}", line
                )
                continue
            problem = _coord_problem(lat, lng)
            if problem is not None:
                if on_error == "raise":
                    raise ValueError(f"{plt_path}:{line_number}: {problem}")
                report.quarantine(str(plt_path), line_number, problem, line)
                continue
            yield Record(entity_id, lat, lng, timestamp)


def load_geolife(
    root: PathLike,
    name: str = "geolife",
    max_users: Optional[int] = None,
    on_error: str = "raise",
) -> Union[LocationDataset, Tuple[LocationDataset, QuarantineReport]]:
    """Load the GeoLife GPS trajectory corpus.

    Expects the published layout ``<root>/Data/<user>/Trajectory/*.plt``;
    a layout without the ``Data`` level is also accepted.  With
    ``on_error="skip"``, malformed and out-of-range rows are quarantined
    and the return value is ``(dataset, QuarantineReport)``.
    """
    _check_on_error(on_error)
    root = Path(root)
    data_dir = root / "Data" if (root / "Data").is_dir() else root
    user_dirs = sorted(p for p in data_dir.iterdir() if p.is_dir())
    if max_users is not None:
        user_dirs = user_dirs[:max_users]
    report = QuarantineReport()
    records: List[Record] = []
    for user_dir in user_dirs:
        trajectory_dir = user_dir / "Trajectory"
        if not trajectory_dir.is_dir():
            continue
        for plt_path in sorted(trajectory_dir.glob("*.plt")):
            records.extend(
                _iter_plt_records(user_dir.name, plt_path, on_error, report)
            )
    if not records and not report.rows:
        raise ValueError(f"no GeoLife trajectories found under {root}")
    dataset = LocationDataset.from_records(records, name)
    if on_error == "skip":
        report.loaded = len(records)
        return dataset, report
    return dataset


def load_gowalla(
    path: PathLike,
    name: str = "gowalla",
    max_records: Optional[int] = None,
    on_error: str = "raise",
) -> Union[LocationDataset, Tuple[LocationDataset, QuarantineReport]]:
    """Load a Gowalla/Brightkite-style check-in TSV.

    Format: ``user <TAB> check-in time (ISO) <TAB> lat <TAB> lng <TAB>
    location id`` with no header, as published with the SNAP datasets.
    Truncated lines are skipped as they always were (quarantined under
    ``on_error="skip"``); rows that fail to parse or carry out-of-range
    coordinates follow ``on_error``.
    """
    _check_on_error(on_error)
    path = Path(path)
    report = QuarantineReport()
    records: List[Record] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            parts = line.rstrip("\n").split("\t")
            if len(parts) < 4:
                if line.strip() and on_error == "skip":
                    report.quarantine(
                        str(path), line_number, "truncated row", line
                    )
                continue
            try:
                record = Record(
                    entity_id=parts[0],
                    lat=float(parts[2]),
                    lng=float(parts[3]),
                    timestamp=_parse_timestamp(parts[1]),
                )
            except ValueError as error:
                if on_error == "raise":
                    raise ValueError(
                        f"{path}:{line_number}: malformed row: {error}"
                    ) from error
                report.quarantine(
                    str(path), line_number, f"malformed: {error}", line
                )
                continue
            problem = _coord_problem(record.lat, record.lng)
            if problem is not None:
                if on_error == "raise":
                    raise ValueError(f"{path}:{line_number}: {problem}")
                report.quarantine(str(path), line_number, problem, line)
                continue
            records.append(record)
            if max_records is not None and len(records) >= max_records:
                break
    if not records and not report.rows:
        raise ValueError(f"no check-ins found in {path}")
    dataset = LocationDataset.from_records(records, name)
    if on_error == "skip":
        report.loaded = len(records)
        return dataset, report
    return dataset

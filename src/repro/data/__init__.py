"""Data layer: the record model, loaders, the paper's sampling protocol and
synthetic workload generators."""

from .io import (
    QuarantinedRow,
    QuarantineReport,
    load_csv,
    load_geolife,
    load_gowalla,
    save_csv,
)
from .records import DatasetStats, LocationDataset, Record
from .sampling import LinkagePair, pair_from_two_sources, sample_linkage_pair

__all__ = [
    "Record",
    "LocationDataset",
    "DatasetStats",
    "LinkagePair",
    "sample_linkage_pair",
    "pair_from_two_sources",
    "QuarantinedRow",
    "QuarantineReport",
    "load_csv",
    "save_csv",
    "load_geolife",
    "load_gowalla",
]

"""Experiment harness: run SLIM configurations against sampled pairs and
collect the measures the paper's figures report.

The figure benches in ``benchmarks/`` are thin wrappers around these
helpers, so the same code paths serve tests, examples and benches.
"""

from __future__ import annotations

# repro-lint: timing-module -- the harness reports wall-clock speedups per cell
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.corpus import HistoryCorpus
from ..core.history import build_histories
from ..core.similarity import SimilarityConfig, SimilarityEngine
from ..core.slim import LinkageResult, SlimConfig, SlimLinker
from ..data.sampling import LinkagePair
from ..exec import Executor, as_executor, raise_on_task_errors
from ..pipeline import LinkageConfig, LinkagePipeline
from ..temporal import common_windowing
from .metrics import LinkageQuality, precision_recall_f1

__all__ = [
    "RunMeasures",
    "ScenarioCell",
    "run_slim",
    "run_pipeline",
    "run_grid",
    "run_scenarios",
    "score_all_pairs",
    "grid",
]


@dataclass(frozen=True)
class RunMeasures:
    """Everything one SLIM run contributes to a figure."""

    quality: LinkageQuality
    result: LinkageResult
    runtime_seconds: float

    @property
    def f1(self) -> float:
        """Measured F1 against ground truth."""
        return self.quality.f1

    @property
    def bin_comparisons(self) -> int:
        """Pairwise bin (record) comparisons spent on similarity."""
        return self.result.stats.bin_comparisons

    @property
    def alibi_entity_pairs(self) -> int:
        """Entity pairs in which alibi evidence was found."""
        return self.result.stats.alibi_entity_pairs

    def row(self) -> Dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "precision": self.quality.precision,
            "recall": self.quality.recall,
            "f1": self.quality.f1,
            "links": self.quality.true_positives + self.quality.false_positives,
            "true_links": len(self.result.links) and self.quality.true_positives,
            "candidates": self.result.candidate_pairs,
            "bin_comparisons": self.bin_comparisons,
            "alibi_pairs": self.alibi_entity_pairs,
            "runtime_s": self.runtime_seconds,
            "threshold": self.result.threshold.threshold,
        }


def run_slim(pair: LinkagePair, config: Optional[SlimConfig] = None) -> RunMeasures:
    """Run SLIM on a sampled pair and score it against ground truth.

    ``config`` may be a legacy :class:`~repro.core.slim.SlimConfig` or a
    :class:`~repro.pipeline.config.LinkageConfig` — both run through the
    same stage pipeline.
    """
    linker = SlimLinker(config)
    start = time.perf_counter()
    result = linker.link(pair.left, pair.right)
    elapsed = time.perf_counter() - start
    quality = precision_recall_f1(result.links, pair.ground_truth)
    return RunMeasures(quality=quality, result=result, runtime_seconds=elapsed)


def run_pipeline(
    pair: LinkagePair, config: Optional[LinkageConfig] = None
) -> RunMeasures:
    """Run an arbitrary stage-pipeline configuration on a sampled pair
    and score it against ground truth (the :class:`LinkageConfig`-native
    sibling of :func:`run_slim`)."""
    pipeline = LinkagePipeline(config)
    start = time.perf_counter()
    result = pipeline.run(pair.left, pair.right)
    elapsed = time.perf_counter() - start
    quality = precision_recall_f1(result.links, pair.ground_truth)
    return RunMeasures(quality=quality, result=result, runtime_seconds=elapsed)


def _grid_cell_task(pair: LinkagePair, config: LinkageConfig) -> RunMeasures:
    """Executor task for one grid cell (module-level so the ``"process"``
    backend can pickle it by reference)."""
    return run_pipeline(pair, config)


def run_grid(
    pair: LinkagePair,
    configs: Sequence[LinkageConfig],
    executor: Optional[Union[Executor, str]] = None,
) -> List[RunMeasures]:
    """Run a sweep of pipeline configurations over one sampled pair.

    The workhorse behind parameter-sensitivity figures: each config is one
    grid cell, and cells are independent — so they fan out through the
    same execution API (:mod:`repro.exec`) the scoring stage shards
    through.  ``executor`` is an :class:`~repro.exec.Executor` instance
    (borrowed) or a backend name (``"thread"`` / ``"process"``; created
    and shut down internally); ``None`` runs the cells serially.  Results
    come back in config order either way, and each cell's measures are
    identical to a serial run's.

    Under the ``"process"`` backend the sampled pair ships to the workers
    once and each cell's pipeline runs its scoring stage serially (nested
    process fan-out degrades to serial by design) — the parallelism is
    across cells, which is where a sweep's wall-clock goes.
    """
    configs = list(configs)
    resolved, owned = as_executor(executor)
    try:
        if resolved is not None and resolved.name != "serial":
            outcomes = resolved.map_blocks(
                _grid_cell_task, configs, payload=pair
            )
            # Every surviving cell already ran to completion; a cell that
            # failed past its retry budget fails the sweep cleanly here
            # instead of leaking a None into the measures.
            raise_on_task_errors(outcomes, "grid cell")
            return [outcome.value for outcome in outcomes]
        return [run_pipeline(pair, config) for config in configs]
    finally:
        if owned:
            resolved.shutdown()


@dataclass(frozen=True)
class ScenarioCell:
    """One (scenario, configuration) cell of a scenario matrix."""

    scenario: str
    config_label: str
    measures: RunMeasures

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular reporting, keyed by scenario and config."""
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "config": self.config_label,
        }
        row.update(self.measures.row())
        return row


def _scenario_cell_task(
    payload: Tuple[Optional[int], float],
    item: Tuple[str, str, LinkageConfig],
) -> RunMeasures:
    """Executor task for one scenario-matrix cell.

    Module-level so the ``"process"`` backend can pickle it by reference.
    The cell regenerates its pair from ``(scenario, seed, scale)`` alone —
    scenario builders are deterministic, so a worker-side pair is
    byte-identical to the driver's and nothing heavy ships over the wire.
    """
    from ..scenarios import scenario_pair

    seed, scale = payload
    scenario_name, _, config = item
    pair = scenario_pair(scenario_name, seed=seed, scale=scale)
    return run_pipeline(pair, config)


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    configs: Optional[Mapping[str, LinkageConfig]] = None,
    seed: Optional[int] = None,
    scale: float = 1.0,
    executor: Optional[Union[Executor, str]] = None,
) -> List[ScenarioCell]:
    """Fan the scenario zoo out against a set of configurations.

    The scenario-matrix sibling of :func:`run_grid`: every
    ``(scenario, config)`` cell generates the scenario's ground-truthed
    pair (deterministically from ``seed`` / ``scale``), runs the
    configuration on it and scores against the held-out truth.  Cells are
    independent and fan out through the same execution API
    (:mod:`repro.exec`); results come back in ``(name, config)`` order
    regardless of backend, and each cell's quality measures are identical
    to a serial run's.

    ``names`` defaults to every registered scenario, ``configs`` to one
    default :class:`~repro.pipeline.config.LinkageConfig` labelled
    ``"default"``.  Under the ``"process"`` backend scenario builders are
    looked up by name inside the workers, so scenarios registered at
    runtime (outside an importable module) only work with the serial and
    thread backends.
    """
    from ..scenarios import scenario_names as registered_names

    names = list(names) if names is not None else registered_names()
    if configs is None:
        configs = {"default": LinkageConfig()}
    items: List[Tuple[str, str, LinkageConfig]] = [
        (name, label, config)
        for name in names
        for label, config in configs.items()
    ]
    payload = (seed, float(scale))
    resolved, owned = as_executor(executor)
    try:
        if resolved is not None and resolved.name != "serial":
            outcomes = resolved.map_blocks(
                _scenario_cell_task, items, payload=payload
            )
            raise_on_task_errors(outcomes, "scenario cell")
            measures = [outcome.value for outcome in outcomes]
        else:
            measures = [_scenario_cell_task(payload, item) for item in items]
    finally:
        if owned:
            resolved.shutdown()
    return [
        ScenarioCell(scenario=name, config_label=label, measures=cell)
        for (name, label, _), cell in zip(items, measures)
    ]


def score_all_pairs(
    pair: LinkagePair, similarity: Optional[SimilarityConfig] = None
) -> Tuple[Dict[Tuple[str, str], float], SimilarityEngine]:
    """Brute-force score matrix over every cross pair.

    Needed by ranking metrics (hit-precision@k) which must see the scores
    of *all* right entities for each left entity, not only candidates.
    """
    similarity = similarity or SimilarityConfig()
    windowing = common_windowing(
        (pair.left.time_range(), pair.right.time_range()),
        similarity.window_width_seconds,
    )
    level = similarity.spatial_level
    left_histories = build_histories(pair.left, windowing, level)
    right_histories = build_histories(pair.right, windowing, level)
    engine = SimilarityEngine(
        HistoryCorpus(left_histories, level),
        HistoryCorpus(right_histories, level),
        similarity,
    )
    pairs = [
        (left_entity, right_entity)
        for left_entity in left_histories
        for right_entity in right_histories
    ]
    # Chunked like SlimLinker.score_candidates: one unbounded dispatch over
    # the full cross product would materialise every (pair, window)
    # interaction at once.
    block = SlimLinker.SCORE_BLOCK_SIZE
    scores: Dict[Tuple[str, str], float] = {}
    for start in range(0, len(pairs), block):
        chunk = pairs[start : start + block]
        scores.update(zip(chunk, engine.score_batch(chunk)))
    return scores, engine


@dataclass
class GridResult:
    """Accumulated rows of a parameter sweep."""

    axes: Tuple[str, ...]
    rows: List[Dict[str, float]] = field(default_factory=list)

    def add(self, point: Dict[str, float], measures: Dict[str, float]) -> None:
        """Append one grid point's measures."""
        row = dict(point)
        row.update(measures)
        self.rows.append(row)

    def series(self, key: str) -> List[float]:
        """Extract one measure across the sweep, in insertion order."""
        return [row[key] for row in self.rows]


def grid(axes: Dict[str, Iterable]) -> Tuple[Tuple[str, ...], List[Dict[str, float]]]:
    """Cartesian product of sweep axes as a list of point dicts."""
    names = tuple(axes)
    points: List[Dict[str, float]] = [{}]
    for name in names:
        points = [
            {**point, name: value} for point in points for value in axes[name]
        ]
    return names, points

"""Plain-text reporting for experiment results.

Benches write the series each paper figure plots as aligned ASCII tables —
to stdout and to ``benchmarks/results/`` — so shape comparisons against the
paper need no plotting stack.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["format_table", "write_report"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])
    cells = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[k]) for row in cells))
        for k, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_report(
    text: str, path: Union[str, Path], echo: bool = True
) -> None:
    """Write a report to ``path`` (creating parents) and optionally echo it
    to stdout so it lands in the bench log."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    if echo:
        print(text)

"""Plain-text reporting for experiment results.

Benches write the series each paper figure plots as aligned ASCII tables —
to stdout and to ``benchmarks/results/`` — so shape comparisons against the
paper need no plotting stack.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

__all__ = [
    "format_table",
    "write_report",
    "stage_timings_table",
    "parallel_efficiency_table",
    "retention_table",
    "fault_table",
    "scenario_table",
    "serving_table",
]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])
    cells = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[k]) for row in cells))
        for k, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def stage_timings_table(
    reports: Mapping[str, object],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """One row per linker, one column per canonical pipeline stage.

    ``reports`` maps a label ("slim", "streaming", "stlink", ...) to any
    object with a ``timings`` dict — since every linkage front door now
    emits the same stage keys (``prepare``/``candidates``/``scoring``/
    ``matching``/``threshold``), the columns line up across linkers.
    """
    from ..pipeline import STAGE_NAMES

    rows = []
    for label, report in reports.items():
        timings: Dict[str, float] = dict(getattr(report, "timings"))
        row: Dict[str, object] = {"linker": label}
        for stage in STAGE_NAMES:
            row[stage] = timings.get(stage, 0.0)
        # Sort before summing: float addition is not associative, so
        # folding in set order would make "other" hash-seed dependent.
        extra = set(timings) - set(STAGE_NAMES)
        if extra:
            row["other"] = sum(timings[key] for key in sorted(extra))
        row["total"] = sum(timings.values())
        rows.append(row)
    columns = ["linker", *STAGE_NAMES]
    if any("other" in row for row in rows):
        columns.append("other")
    columns.append("total")
    return format_table(rows, columns=columns, precision=precision, title=title)


def parallel_efficiency_table(
    reports: Mapping[str, object],
    stage: str = "scoring",
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """How well one sharded stage used its execution backend, per report.

    ``reports`` maps a label to any object with the
    :class:`~repro.pipeline.report.LinkageReport` surface (``timings``,
    ``shard_timings``, ``extras``).  Per row: the executor backend and
    worker count, the shard count, the summed worker-side shard seconds
    (*busy*) against the stage's wall-clock seconds, their ratio (the
    realised *speedup* — busy/wall ≈ 1 when serial, approaching the
    worker count under perfect scaling), and that speedup divided by the
    workers (*efficiency*).
    """
    rows = []
    for label, report in reports.items():
        shards = dict(getattr(report, "shard_timings", {})).get(stage, ())
        wall = dict(getattr(report, "timings", {})).get(stage, 0.0)
        extras = getattr(report, "extras", {}) or {}
        info = extras.get("executor", {}) if isinstance(extras, dict) else {}
        workers = int(info.get("workers", 1)) or 1
        busy = float(sum(shards))
        speedup = busy / wall if wall > 0 else float("nan")
        rows.append(
            {
                "linker": label,
                "executor": info.get("name", "serial"),
                "workers": workers,
                "shards": len(shards),
                "busy_s": busy,
                "wall_s": wall,
                "speedup": speedup,
                "efficiency": speedup / workers,
            }
        )
    return format_table(rows, precision=precision, title=title)


#: Column order of :func:`retention_table`; rows may carry any subset.
_RETENTION_COLUMNS = (
    "relink",
    "left_entities",
    "right_entities",
    "evicted_left",
    "evicted_right",
    "left_flat_entries",
    "left_flat_live",
    "right_flat_entries",
    "right_flat_live",
    "score_cache_rows",
    "lsh_entities",
    "relink_s",
)


def retention_table(
    snapshots: Sequence[Mapping[str, object]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Memory/eviction trajectory of a retention-bounded stream.

    ``snapshots`` is one mapping per relink, typically
    :meth:`repro.core.streaming.StreamingLinker.memory_stats` output
    enriched with the relink ordinal, the
    :class:`~repro.core.streaming.RelinkStats` eviction counts and the
    relink wall-clock (``relink_s``).  Columns appearing in no snapshot
    are omitted, so partial instrumentation still renders.  On a bounded
    stream the ``*_flat_entries`` columns plateau (and equal
    ``*_flat_live`` after each eviction — eager compaction) while an
    unbounded baseline's grow with every round.
    """
    columns = [
        column
        for column in _RETENTION_COLUMNS
        if any(column in snapshot for snapshot in snapshots)
    ]
    rows = [
        {column: snapshot.get(column, "") for column in columns}
        for snapshot in snapshots
    ]
    return format_table(rows, columns=columns, precision=precision, title=title)


#: Column order of :func:`fault_table`.
_FAULT_COLUMNS = (
    "linker",
    "executor",
    "faults",
    "retries",
    "timeouts",
    "worker_crashes",
    "task_errors",
    "degraded",
)


def fault_table(
    reports: Mapping[str, object],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Fault-recovery activity of each run's scoring fan-out.

    ``reports`` maps a label to any object with the
    :class:`~repro.pipeline.report.LinkageReport` surface.  Per row: the
    executor backend, the recovery counters the scoring stage deposited
    in ``extras["faults"]`` (failed attempts, retries they triggered, the
    timeout / worker-crash subsets, tasks that stayed failed) and whether
    the dispatch degraded to the serial oracle mid-run.  A run without
    fault activity renders as zeros — the row you *want* to see.
    """
    rows = []
    for label, report in reports.items():
        extras = getattr(report, "extras", {}) or {}
        if not isinstance(extras, dict):
            extras = {}
        info = extras.get("executor", {})
        faults = extras.get("faults", {})
        row: Dict[str, object] = {
            "linker": label,
            "executor": (
                info.get("name", "serial") if isinstance(info, dict) else "serial"
            ),
        }
        for column in _FAULT_COLUMNS[2:]:
            default: object = False if column == "degraded" else 0
            value = (
                faults.get(column, default)
                if isinstance(faults, dict)
                else default
            )
            row[column] = value
        rows.append(row)
    return format_table(
        rows, columns=list(_FAULT_COLUMNS), precision=precision, title=title
    )


#: Column order of :func:`scenario_table`.
_SCENARIO_COLUMNS = (
    "scenario",
    "config",
    "precision",
    "recall",
    "f1",
    "links",
    "candidates",
    "bin_comparisons",
    "runtime_s",
)


def scenario_table(
    cells: Sequence[object],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Per-scenario quality-vs-speed frontier of a scenario matrix.

    ``cells`` is :func:`repro.eval.harness.run_scenarios` output (or any
    sequence of objects with a ``row()`` dict) — one row per
    ``(scenario, config)`` cell, quality columns next to the cost columns
    so robustness cliffs and their price are visible in one table.
    """
    rows = [cell.row() if hasattr(cell, "row") else dict(cell) for cell in cells]
    columns = [
        column
        for column in _SCENARIO_COLUMNS
        if any(column in row for row in rows)
    ]
    return format_table(rows, columns=columns or None, precision=precision, title=title)


#: Column order of :func:`serving_table`; rows may carry any subset.
_SERVING_COLUMNS = (
    "round",
    "events_in",
    "records_in",
    "records_retired",
    "rejected",
    "blocked",
    "queue_depth",
    "queue_peak",
    "relinks",
    "relink_failures",
    "relink_p50_s",
    "relink_p99_s",
    "snapshot_version",
    "snapshot_age_s",
    "staleness_s",
    "ingest_rate",
    "queries",
    "query_p50_ms",
    "query_p99_ms",
)


def serving_table(
    samples: Sequence[Mapping[str, object]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Serving-counter trajectory of an online linkage service.

    ``samples`` is one mapping per observation point — typically
    :meth:`repro.serve.LinkageService.metrics` output enriched with a
    ``round`` ordinal, as :func:`repro.serve.replay_rounds` collects.
    Per row: the ingest counters (events, records, retires), the
    backpressure counters (``rejected`` / ``blocked`` and the queue's
    current depth and high-water mark), the relink scheduler's activity
    and latency percentiles, the published snapshot's version and its
    wall-clock age / event-time staleness, the sustained ingest rate and
    the query-latency percentiles.  Columns appearing in no sample are
    omitted, so partial instrumentation still renders.
    """
    columns = [
        column
        for column in _SERVING_COLUMNS
        if any(column in sample for sample in samples)
    ]
    rows = [
        {column: sample.get(column, "") for column in columns}
        for sample in samples
    ]
    return format_table(rows, columns=columns or None, precision=precision, title=title)


def write_report(
    text: str, path: Union[str, Path], echo: bool = True
) -> None:
    """Write a report to ``path`` (creating parents) and optionally echo it
    to stdout so it lands in the bench log."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    if echo:
        print(text)

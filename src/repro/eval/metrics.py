"""Evaluation metrics for mobility linkage (Sec. 5).

All metrics take the held-out ground truth of a
:class:`~repro.data.sampling.LinkagePair`:

* :func:`precision_recall_f1` — over a produced one-to-one linkage;
* :func:`hit_precision_at_k` — the ranking metric of Fig. 11a:
  per left entity with a true partner, ``1 - rank/k`` (0 below rank ``k``),
  averaged;
* :func:`relative_f1` — LSH quality metric of Sec. 5.3
  (``F1_lsh / F1_brute_force``);
* :func:`speedup` — comparison-count ratio, the hardware-independent
  speed-up the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

__all__ = [
    "LinkageQuality",
    "precision_recall_f1",
    "hit_precision_at_k",
    "relative_f1",
    "speedup",
]


@dataclass(frozen=True)
class LinkageQuality:
    """Measured precision/recall/F1 of one linkage against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 for an empty linkage (no wrong links made)."""
        produced = self.true_positives + self.false_positives
        return self.true_positives / produced if produced else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to find."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def precision_recall_f1(
    links: Mapping[str, str], ground_truth: Mapping[str, str]
) -> LinkageQuality:
    """Score a one-to-one linkage against ground truth.

    A produced link is a true positive iff ground truth maps its left
    entity to exactly its right entity; every unrecovered truth pair is a
    false negative.
    """
    true_positives = sum(
        1 for left, right in links.items() if ground_truth.get(left) == right
    )
    false_positives = len(links) - true_positives
    false_negatives = len(ground_truth) - true_positives
    return LinkageQuality(true_positives, false_positives, false_negatives)


def hit_precision_at_k(
    scores: Mapping[Tuple[str, str], float],
    ground_truth: Mapping[str, str],
    k: int = 40,
) -> float:
    """Hit-precision@k over a full score matrix (Fig. 11a).

    For each left entity with a true partner, all right entities are sorted
    by decreasing score; with the true partner at (0-based) position
    ``rank``, the entity contributes ``max(0, 1 - rank/k)``.  Entities
    whose true partner received no score contribute 0.

    The paper's formula ``1 - max(rank/k, 1)`` is a typo (it would be
    non-positive everywhere); the standard definition from ref [43] is
    used, which matches the reported behaviour.
    """
    if k < 1:
        raise ValueError("k must be positive")
    by_left: Dict[str, list] = {}
    for (left, right), score in scores.items():
        by_left.setdefault(left, []).append((score, right))

    total = 0.0
    counted = 0
    for left, true_right in ground_truth.items():
        counted += 1
        ranked = by_left.get(left)
        if not ranked:
            continue
        ranked.sort(key=lambda item: (-item[0], item[1]))
        rank = next(
            (
                position
                for position, (_, right) in enumerate(ranked)
                if right == true_right
            ),
            None,
        )
        if rank is not None:
            total += max(0.0, 1.0 - rank / k)
    return total / counted if counted else 0.0


def relative_f1(lsh_f1: float, brute_force_f1: float) -> float:
    """``F1_lsh / F1_bf`` (Sec. 5.3); 1.0 when both are zero."""
    if brute_force_f1 == 0.0:
        return 1.0 if lsh_f1 == 0.0 else float("inf")
    return lsh_f1 / brute_force_f1


def speedup(comparisons_without: int, comparisons_with: int) -> float:
    """Ratio of pairwise comparisons without/with the optimisation.

    This is the paper's speed-up metric (Sec. 5.3): hardware-independent,
    unlike wall-clock, and therefore the number EXPERIMENTS.md compares
    against the published factors.
    """
    if comparisons_with <= 0:
        return float("inf") if comparisons_without > 0 else 1.0
    return comparisons_without / comparisons_with

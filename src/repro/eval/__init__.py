"""Evaluation: linkage metrics, the experiment harness and reporting."""

from .harness import RunMeasures, grid, run_grid, run_pipeline, run_slim, score_all_pairs
from .metrics import (
    LinkageQuality,
    hit_precision_at_k,
    precision_recall_f1,
    relative_f1,
    speedup,
)
from .reporting import (
    fault_table,
    format_table,
    parallel_efficiency_table,
    retention_table,
    write_report,
)

__all__ = [
    "LinkageQuality",
    "precision_recall_f1",
    "hit_precision_at_k",
    "relative_f1",
    "speedup",
    "RunMeasures",
    "run_slim",
    "run_pipeline",
    "run_grid",
    "score_all_pairs",
    "grid",
    "format_table",
    "parallel_efficiency_table",
    "retention_table",
    "fault_table",
    "write_report",
]

"""Evaluation: linkage metrics, the experiment harness and reporting."""

from .harness import (
    RunMeasures,
    ScenarioCell,
    grid,
    run_grid,
    run_pipeline,
    run_scenarios,
    run_slim,
    score_all_pairs,
)
from .metrics import (
    LinkageQuality,
    hit_precision_at_k,
    precision_recall_f1,
    relative_f1,
    speedup,
)
from .reporting import (
    fault_table,
    format_table,
    parallel_efficiency_table,
    retention_table,
    scenario_table,
    serving_table,
    write_report,
)

__all__ = [
    "LinkageQuality",
    "precision_recall_f1",
    "hit_precision_at_k",
    "relative_f1",
    "speedup",
    "RunMeasures",
    "ScenarioCell",
    "run_slim",
    "run_pipeline",
    "run_grid",
    "run_scenarios",
    "score_all_pairs",
    "grid",
    "scenario_table",
    "format_table",
    "parallel_efficiency_table",
    "retention_table",
    "fault_table",
    "serving_table",
    "write_report",
]

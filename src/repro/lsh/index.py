"""The LSH candidate-pair index (Sec. 4).

Signatures from both datasets are banded and each non-empty band is hashed
into a finite table of buckets; a cross-dataset pair co-located in any
bucket becomes a *candidate pair* and is the only kind of pair the
similarity engine ever scores.  The bucket count is a real parameter (the
paper sweeps 2^8..2^20 in Fig. 9): fewer buckets mean more accidental
collisions, more candidates, less speed-up — the index therefore hashes
``(band index, band content)`` *modulo* ``num_buckets`` rather than using
Python dict semantics directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.history import MobilityHistory
from .banding import bands_for_threshold, split_bands
from .signature import SignatureSpec, build_signature

__all__ = ["LshConfig", "LshIndex", "LshStats"]


@dataclass(frozen=True)
class LshConfig:
    """Parameters of the LSH procedure (Sec. 4 lists exactly these three,
    plus the bucket-table size studied in Fig. 9).

    Attributes
    ----------
    threshold:
        Target signature similarity ``t`` above which pairs should become
        candidates (paper default 0.6).
    step_windows:
        Query window size in leaf windows (the *temporal step*).
    spatial_level:
        Grid level of the dominating cells.
    num_buckets:
        Size of the bucket table (paper default 4096).
    """

    threshold: float = 0.6
    step_windows: int = 16
    spatial_level: int = 16
    num_buckets: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.step_windows < 1:
            raise ValueError("step must be at least one window")
        if self.num_buckets < 1:
            raise ValueError("need at least one bucket")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")


@dataclass
class LshStats:
    """Diagnostics of one index build."""

    signature_length: int = 0
    num_bands: int = 0
    buckets_used: int = 0
    hashed_bands_left: int = 0
    hashed_bands_right: int = 0
    candidate_pairs: int = 0


class LshIndex:
    """Banded bucket index over dominating-cell signatures."""

    def __init__(self, config: LshConfig, spec: SignatureSpec) -> None:
        if spec.spatial_level != config.spatial_level:
            raise ValueError("signature spec level must match LSH config level")
        self.config = config
        self.spec = spec
        self.num_bands = bands_for_threshold(spec.length, config.threshold)
        self._buckets: Dict[int, Tuple[List[str], List[str]]] = {}
        self.stats = LshStats(
            signature_length=spec.length, num_bands=self.num_bands
        )

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _bucket_of(self, band_index: int, band: Tuple[Tuple[int, int], ...]) -> int:
        # Tuple-of-ints hashing is deterministic across processes
        # (PYTHONHASHSEED only randomises str/bytes), which keeps candidate
        # sets reproducible.
        return hash((band_index, band)) % self.config.num_buckets

    def add(self, entity_id: str, signature: Tuple[Optional[int], ...], side: str) -> None:
        """Insert one signature on ``side`` (``"left"`` or ``"right"``)."""
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        column = 0 if side == "left" else 1
        for band_index, band in enumerate(split_bands(signature, self.num_bands)):
            if band is None:
                continue
            if side == "left":
                self.stats.hashed_bands_left += 1
            else:
                self.stats.hashed_bands_right += 1
            bucket_id = self._bucket_of(band_index, band)
            bucket = self._buckets.get(bucket_id)
            if bucket is None:
                bucket = ([], [])
                self._buckets[bucket_id] = bucket
            bucket[column].append(entity_id)

    def add_histories(
        self,
        left: Dict[str, MobilityHistory],
        right: Dict[str, MobilityHistory],
    ) -> None:
        """Signature and insert every history of both datasets."""
        for entity_id, history in left.items():
            self.add(entity_id, build_signature(history, self.spec), "left")
        for entity_id, history in right.items():
            self.add(entity_id, build_signature(history, self.spec), "right")

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------
    def candidate_pairs(self) -> Set[Tuple[str, str]]:
        """All cross-dataset pairs sharing at least one bucket."""
        candidates: Set[Tuple[str, str]] = set()
        for lefts, rights in self._buckets.values():
            if lefts and rights:
                for left_entity in set(lefts):
                    for right_entity in set(rights):
                        candidates.add((left_entity, right_entity))
        self.stats.buckets_used = len(self._buckets)
        self.stats.candidate_pairs = len(candidates)
        return candidates

    @staticmethod
    def all_pairs(
        left: Iterable[str], right: Iterable[str]
    ) -> Set[Tuple[str, str]]:
        """The brute-force candidate set (no LSH), for speed-up baselines."""
        rights = list(right)
        return {(l, r) for l in left for r in rights}

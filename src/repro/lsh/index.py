"""The LSH candidate-pair index (Sec. 4).

Signatures from both datasets are banded and each non-empty band is hashed
into a finite table of buckets; a cross-dataset pair co-located in any
bucket becomes a *candidate pair* and is the only kind of pair the
similarity engine ever scores.  The bucket count is a real parameter (the
paper sweeps 2^8..2^20 in Fig. 9): fewer buckets mean more accidental
collisions, more candidates, less speed-up — the index therefore hashes
``(band index, band content)`` *modulo* ``num_buckets`` rather than using
Python dict semantics directly.

Band hashing is vectorized: signatures are packed into one uint64 matrix
and every band of every signature is FNV-1a-hashed in a single numpy pass
(:func:`repro.lsh.banding.band_bucket_ids`); single-signature inserts go
through the same code path, so incremental and batch population place
entities in identical buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..core.history import MobilityHistory
from .banding import band_bucket_ids, bands_for_threshold
from .signature import SignatureSpec, build_signature, signatures_to_array

__all__ = ["LshConfig", "LshIndex", "LshStats"]


@dataclass(frozen=True)
class LshConfig:
    """Parameters of the LSH procedure (Sec. 4 lists exactly these three,
    plus the bucket-table size studied in Fig. 9).

    Attributes
    ----------
    threshold:
        Target signature similarity ``t`` above which pairs should become
        candidates (paper default 0.6).
    step_windows:
        Query window size in leaf windows (the *temporal step*).
    spatial_level:
        Grid level of the dominating cells.
    num_buckets:
        Size of the bucket table (paper default 4096).
    """

    threshold: float = 0.6
    step_windows: int = 16
    spatial_level: int = 16
    num_buckets: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.step_windows < 1:
            raise ValueError("step must be at least one window")
        if self.num_buckets < 1:
            raise ValueError("need at least one bucket")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")

    def signature_spec(self, total_windows: int) -> SignatureSpec:
        """The signature layout for a run spanning ``total_windows`` leaf
        windows (under a common windowing, so signatures start at window
        0).  The single policy both the batch pipeline and the streaming
        linker derive their specs from — keep them agreeing bucket for
        bucket."""
        return SignatureSpec(
            start_window=0,
            total_windows=total_windows,
            step_windows=self.step_windows,
            spatial_level=self.spatial_level,
        )


@dataclass
class LshStats:
    """Diagnostics of one index build."""

    signature_length: int = 0
    num_bands: int = 0
    buckets_used: int = 0
    hashed_bands_left: int = 0
    hashed_bands_right: int = 0
    candidate_pairs: int = 0


class LshIndex:
    """Banded bucket index over dominating-cell signatures."""

    def __init__(self, config: LshConfig, spec: SignatureSpec) -> None:
        if spec.spatial_level != config.spatial_level:
            raise ValueError("signature spec level must match LSH config level")
        self.config = config
        self.spec = spec
        self.num_bands = bands_for_threshold(spec.length, config.threshold)
        self._buckets: Dict[int, Tuple[List[str], List[str]]] = {}
        # Which buckets each (side, entity) was hashed into — the undo log
        # that makes incremental re-signaturing (remove + add) possible.
        self._placements: Dict[Tuple[str, str], List[int]] = {}
        self.stats = LshStats(
            signature_length=spec.length, num_bands=self.num_bands
        )

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _insert_bucket_rows(self, entity_ids: List[str], rows: np.ndarray, side: str) -> None:
        """Place entities into the buckets of their hashed bands.

        ``rows`` is the ``(N, num_bands)`` output of
        :func:`~repro.lsh.banding.band_bucket_ids` for ``entity_ids``.
        """
        column = 0 if side == "left" else 1
        buckets = self._buckets
        placements = self._placements
        hashed = 0
        for entity_id, row in zip(entity_ids, rows.tolist()):
            placed = placements.setdefault((side, entity_id), [])
            for bucket_id in row:
                if bucket_id < 0:
                    continue
                hashed += 1
                bucket = buckets.get(bucket_id)
                if bucket is None:
                    bucket = ([], [])
                    buckets[bucket_id] = bucket
                bucket[column].append(entity_id)
                placed.append(bucket_id)
        if side == "left":
            self.stats.hashed_bands_left += hashed
        else:
            self.stats.hashed_bands_right += hashed

    def add(self, entity_id: str, signature: Tuple[Optional[int], ...], side: str) -> None:
        """Insert one signature on ``side`` (``"left"`` or ``"right"``).

        Runs the same vectorized hash as batch population (on a one-row
        matrix), so incremental inserts land in identical buckets.
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        rows = band_bucket_ids(
            signatures_to_array([signature]), self.num_bands, self.config.num_buckets
        )
        self._insert_bucket_rows([entity_id], rows, side)

    def remove(self, entity_id: str, side: str) -> int:
        """Withdraw one entity's band placements (streaming update).

        Together with :meth:`add`, this gives the index *delta
        semantics*: after ``remove`` + ``add`` with a fresh signature, the
        bucket table is element-for-element what a cold rebuild over the
        current histories would produce.  Returns the number of band
        placements removed (0 when the entity was never inserted).
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        placed = self._placements.pop((side, entity_id), None)
        if not placed:
            return 0
        column = 0 if side == "left" else 1
        buckets = self._buckets
        for bucket_id in placed:
            bucket = buckets[bucket_id]
            bucket[column].remove(entity_id)
            if not bucket[0] and not bucket[1]:
                del buckets[bucket_id]
        if side == "left":
            self.stats.hashed_bands_left -= len(placed)
        else:
            self.stats.hashed_bands_right -= len(placed)
        return len(placed)

    def update_spec(self, spec: SignatureSpec) -> None:
        """Adopt a spec whose window span grew without changing the
        signature layout (same length, same level — hence same banding).

        Under a fixed windowing origin, growing ``total_windows`` inside
        the same last signature slot cannot change any *unchanged*
        history's dominating cells, so existing placements stay valid;
        only changed histories need ``remove`` + ``add``.  A span change
        that alters the slot count requires a fresh index.
        """
        if spec.spatial_level != self.config.spatial_level:
            raise ValueError("signature spec level must match LSH config level")
        if spec.length != self.spec.length:
            raise ValueError(
                "signature length changed "
                f"({self.spec.length} -> {spec.length}); rebuild the index"
            )
        self.spec = spec

    # ------------------------------------------------------------------
    # transactional snapshot
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """Opaque snapshot for :meth:`restore` (the transactional-relink
        hook).  ``add`` / ``remove`` append to and pop from the per-bucket
        membership lists and per-entity placement lists *in place*, so
        both levels are copied; the mutable :class:`LshStats` counters and
        the current spec ride along."""
        return {
            "spec": self.spec,
            "buckets": {
                bucket: (list(lefts), list(rights))
                for bucket, (lefts, rights) in self._buckets.items()
            },
            "placements": {
                key: list(rows) for key, rows in self._placements.items()
            },
            "stats": replace(self.stats),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind to a :meth:`checkpoint` snapshot, discarding every
        placement change since.  Containers are re-copied, so one
        snapshot supports any number of restores."""
        self.spec = state["spec"]
        self._buckets = {
            bucket: (list(lefts), list(rights))
            for bucket, (lefts, rights) in state["buckets"].items()
        }
        self._placements = {
            key: list(rows) for key, rows in state["placements"].items()
        }
        self.stats = replace(state["stats"])

    def add_histories(
        self,
        left: Dict[str, MobilityHistory],
        right: Dict[str, MobilityHistory],
    ) -> None:
        """Signature and insert every history of both datasets.

        All signatures of one side are packed into a single uint64 matrix
        and every band of every signature is hashed in one numpy pass.
        """
        for histories, side in ((left, "left"), (right, "right")):
            if not histories:
                continue
            entity_ids = list(histories)
            packed = signatures_to_array(
                build_signature(history, self.spec) for history in histories.values()
            )
            rows = band_bucket_ids(packed, self.num_bands, self.config.num_buckets)
            self._insert_bucket_rows(entity_ids, rows, side)

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------
    def candidate_pairs(self) -> Set[Tuple[str, str]]:
        """All cross-dataset pairs sharing at least one bucket."""
        candidates: Set[Tuple[str, str]] = set()
        for lefts, rights in self._buckets.values():
            if lefts and rights:
                for left_entity in set(lefts):
                    for right_entity in set(rights):
                        candidates.add((left_entity, right_entity))
        self.stats.buckets_used = len(self._buckets)
        self.stats.candidate_pairs = len(candidates)
        return candidates

    @staticmethod
    def all_pairs(
        left: Iterable[str], right: Iterable[str]
    ) -> Set[Tuple[str, str]]:
        """The brute-force candidate set (no LSH), for speed-up baselines."""
        rights = list(right)
        return {
            (left_id, right_id) for left_id in left for right_id in rights
        }

"""Dominating-cell signatures for mobility histories (Sec. 4).

Shingle/min-hash LSH is too strict for sparse, asynchronous mobility data,
so the paper builds signatures from *dominating grid cells*: for each
non-overlapping query window (a fixed number of leaf windows), the cell
holding the most of the entity's records.  Two entities that are the same
person tend to share dominating cells even when their services sampled
different instants.

Signatures must be *structurally aligned* across all histories in a run:
the k-th slot of every signature answers the same query.  Empty query
windows produce a ``None`` placeholder that keeps alignment but is skipped
when hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.history import MobilityHistory

__all__ = [
    "SignatureSpec",
    "build_signature",
    "signature_similarity",
    "signatures_to_array",
]


@dataclass(frozen=True)
class SignatureSpec:
    """The shared signature layout for one linkage run.

    Attributes
    ----------
    start_window:
        First leaf-window index covered (0 under a common windowing).
    total_windows:
        Number of leaf windows spanned by the run's data.
    step_windows:
        Query window size in leaf windows (the paper's *temporal step*;
        e.g. step 48 over 15-minute leaves = 12-hour queries).
    spatial_level:
        Grid level at which dominating cells are computed — independent of
        the similarity level (Sec. 5.3 sweeps them separately).
    """

    start_window: int
    total_windows: int
    step_windows: int
    spatial_level: int

    def __post_init__(self) -> None:
        if self.step_windows < 1:
            raise ValueError("step must be at least one window")
        if self.total_windows < 1:
            raise ValueError("signature needs at least one window")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")

    @property
    def length(self) -> int:
        """Number of slots (queries) in every signature."""
        return math.ceil(self.total_windows / self.step_windows)


def build_signature(
    history: MobilityHistory, spec: SignatureSpec
) -> Tuple[Optional[int], ...]:
    """The dominating-cell signature of one history.

    Slot ``k`` holds the dominating cell over leaf windows
    ``[start + k*step, start + (k+1)*step)`` at ``spec.spatial_level``, or
    ``None`` when the entity has no records there.  Queries run against the
    history's hierarchical count tree, so each costs ``O(log windows)``
    node visits (the "appropriate level of the mobility history tree" remark
    in Sec. 4).
    """
    slots = []
    for k in range(spec.length):
        lo = spec.start_window + k * spec.step_windows
        hi = min(lo + spec.step_windows, spec.start_window + spec.total_windows)
        slots.append(history.dominating_cell(lo, hi, spec.spatial_level))
    return tuple(slots)


def signatures_to_array(
    signatures: Iterable[Tuple[Optional[int], ...]],
) -> np.ndarray:
    """Pack signatures into a ``(N, length)`` uint64 array for the
    vectorized band-hashing pass.

    Placeholder (``None``) slots become 0, which no valid cell id can be
    (every cell id has its level-sentinel bit set, so ids are >= 1).
    """
    rows = [
        tuple(0 if slot is None else slot for slot in signature)
        for signature in signatures
    ]
    if not rows:
        return np.empty((0, 0), dtype=np.uint64)
    return np.asarray(rows, dtype=np.uint64)


def signature_similarity(
    signature_a: Tuple[Optional[int], ...], signature_b: Tuple[Optional[int], ...]
) -> float:
    """The paper's signature similarity ``t``: matching dominating cells
    divided by signature size.

    Placeholder slots never match — a query window in which either entity
    is silent contributes no evidence.
    """
    if len(signature_a) != len(signature_b):
        raise ValueError("signatures must share one SignatureSpec")
    if not signature_a:
        return 0.0
    matches = sum(
        1
        for a, b in zip(signature_a, signature_b)
        if a is not None and a == b
    )
    return matches / len(signature_a)

"""Locality-sensitive hashing for mobility histories (Sec. 4).

The first application of LSH to mobility linkage: per-entity signatures of
*dominating grid cells* (:mod:`~repro.lsh.signature`), banded with the
Lambert-W band count (:mod:`~repro.lsh.banding`), hashed into a finite
bucket table (:mod:`~repro.lsh.index`).  Only co-bucketed cross-dataset
pairs reach the similarity engine, which is where the paper's two-to-four
orders of magnitude speed-up comes from.
"""

from .banding import (
    bands_for_threshold,
    collision_probability,
    implied_threshold,
    split_bands,
)
from .index import LshConfig, LshIndex, LshStats
from .signature import SignatureSpec, build_signature, signature_similarity

__all__ = [
    "LshConfig",
    "LshIndex",
    "LshStats",
    "SignatureSpec",
    "build_signature",
    "signature_similarity",
    "bands_for_threshold",
    "implied_threshold",
    "collision_probability",
    "split_bands",
]

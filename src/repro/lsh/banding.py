"""The banding technique and its parameter arithmetic (Sec. 4).

A signature of length ``s`` is split into ``b`` bands of ``r = s/b`` rows;
each band is hashed whole.  Two signatures with similarity ``t`` share at
least one identical band with probability ``1 - (1 - t^r)^b`` — an S-curve
whose steepest rise sits near ``t ~ (1/b)^(1/r)``.  Solving
``t = (1/b)^(b/s)`` for ``b`` gives the paper's closed form

``b = exp(W(-s * ln t))``

with ``W`` the Lambert W function (scipy supplies it; a Newton fallback is
included for degenerate branches).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import lambertw

__all__ = [
    "bands_for_threshold",
    "implied_threshold",
    "collision_probability",
    "split_bands",
    "band_boundaries",
    "band_bucket_ids",
]

Band = Tuple[Tuple[int, int], ...]

# FNV-1a offset basis / prime — a deterministic, process-independent band
# hash (Python's tuple hash was already deterministic for ints, but cannot
# be evaluated vectorized; FNV-1a mixes the same (slot index, cell id)
# stream with four uint64 ops per slot across a whole signature batch).
_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)

# Murmur3 fmix64 constants for the final avalanche.  FNV's multiply only
# carries entropy towards the high bits, and cell ids at coarse levels keep
# their low bits constant (the level sentinel), so without a downward fold
# every signature would land in the same bucket under power-of-two bucket
# counts.
_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT_33 = np.uint64(33)


def _avalanche(digest: np.ndarray) -> np.ndarray:
    """Murmur3 fmix64: spread every input bit across the whole word."""
    digest = digest ^ (digest >> _SHIFT_33)
    digest = digest * _MIX_1
    digest = digest ^ (digest >> _SHIFT_33)
    digest = digest * _MIX_2
    return digest ^ (digest >> _SHIFT_33)


def bands_for_threshold(signature_length: int, threshold: float) -> int:
    """Number of bands targeting candidate threshold ``t``.

    Derived from ``t = (1/b)^(b/s)`` via Lambert W; clamped to
    ``[1, signature_length]`` and rounded to the nearest integer.
    """
    if signature_length < 1:
        raise ValueError("signature length must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    argument = -signature_length * math.log(threshold)
    # -s ln t > 0 here, so the principal branch is real.
    bands = math.exp(float(lambertw(argument).real))
    if not math.isfinite(bands):  # pragma: no cover - defensive
        bands = 1.0
    return max(1, min(signature_length, int(round(bands))))


def implied_threshold(signature_length: int, num_bands: int) -> float:
    """The approximate threshold ``(1/b)^(1/r)`` realised by a banding."""
    if num_bands < 1 or signature_length < num_bands:
        raise ValueError("need 1 <= bands <= signature length")
    rows = signature_length / num_bands
    return (1.0 / num_bands) ** (1.0 / rows)


def collision_probability(
    similarity: float, signature_length: int, num_bands: int
) -> float:
    """``1 - (1 - t^r)^b`` — probability of sharing at least one band."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must be in [0, 1]")
    rows = signature_length / num_bands
    return 1.0 - (1.0 - similarity**rows) ** num_bands


def band_boundaries(signature_length: int, num_bands: int) -> List[Tuple[int, int]]:
    """The ``[start, end)`` slot range of every band.

    Single source of truth shared by :func:`split_bands` (scalar view) and
    :func:`band_bucket_ids` (vectorized hashing): the first ``length %
    num_bands`` bands get one extra slot.
    """
    if num_bands < 1:
        raise ValueError("need at least one band")
    if num_bands > signature_length:
        raise ValueError(
            f"cannot split {signature_length} slots into {num_bands} bands"
        )
    base = signature_length // num_bands
    remainder = signature_length % num_bands
    boundaries: List[Tuple[int, int]] = []
    position = 0
    for band_index in range(num_bands):
        size = base + (1 if band_index < remainder else 0)
        boundaries.append((position, position + size))
        position += size
    return boundaries


def band_bucket_ids(
    signatures: np.ndarray, num_bands: int, num_buckets: int
) -> np.ndarray:
    """Bucket ids of every band of every signature, in one numpy pass.

    ``signatures`` is the ``(N, length)`` uint64 packing of
    :func:`repro.lsh.signature.signatures_to_array` (0 = placeholder).
    Returns an ``(N, num_bands)`` int64 array of bucket ids in
    ``[0, num_buckets)``, with -1 marking bands whose slots are all
    placeholders (never hashed — otherwise every silent entity would
    collide with every other).

    Each band hashes the stream ``band_index, (slot_index, cell id)...``
    over its non-placeholder slots with FNV-1a, mirroring the structural
    alignment rule of :func:`split_bands`: the *same* query windows must
    agree for two bands to collide.
    """
    if signatures.ndim != 2:
        raise ValueError("signatures must be a 2-D (N, length) array")
    count, length = signatures.shape
    buckets = np.full((count, num_bands), -1, dtype=np.int64)
    if not count:
        return buckets
    valid = signatures != 0
    modulus = np.uint64(num_buckets)
    for band_index, (start, end) in enumerate(band_boundaries(length, num_bands)):
        digest = np.full(count, _FNV_OFFSET, dtype=np.uint64)
        digest = (digest ^ np.uint64(band_index)) * _FNV_PRIME
        for slot in range(start, end):
            mixed = (digest ^ np.uint64(slot)) * _FNV_PRIME
            mixed = (mixed ^ signatures[:, slot]) * _FNV_PRIME
            digest = np.where(valid[:, slot], mixed, digest)
        hashed = valid[:, start:end].any(axis=1)
        buckets[hashed, band_index] = (
            _avalanche(digest[hashed]) % modulus
        ).astype(np.int64)
    return buckets


def split_bands(
    signature: Sequence[Optional[int]], num_bands: int
) -> List[Optional[Band]]:
    """Split a signature into hashable bands.

    Slots are annotated with their index before placeholders are dropped,
    so a match requires the *same* query windows to agree (omitting
    placeholders must not let unrelated slots align).  A band whose slots
    are all placeholders yields ``None`` — it is never hashed, otherwise
    every silent entity would collide with every other.
    """
    bands: List[Optional[Band]] = []
    for start, end in band_boundaries(len(signature), num_bands):
        cells = tuple(
            (slot_index, signature[slot_index])
            for slot_index in range(start, end)
            if signature[slot_index] is not None
        )
        bands.append(cells if cells else None)
    return bands

"""The banding technique and its parameter arithmetic (Sec. 4).

A signature of length ``s`` is split into ``b`` bands of ``r = s/b`` rows;
each band is hashed whole.  Two signatures with similarity ``t`` share at
least one identical band with probability ``1 - (1 - t^r)^b`` — an S-curve
whose steepest rise sits near ``t ~ (1/b)^(1/r)``.  Solving
``t = (1/b)^(b/s)`` for ``b`` gives the paper's closed form

``b = exp(W(-s * ln t))``

with ``W`` the Lambert W function (scipy supplies it; a Newton fallback is
included for degenerate branches).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from scipy.special import lambertw

__all__ = [
    "bands_for_threshold",
    "implied_threshold",
    "collision_probability",
    "split_bands",
]

Band = Tuple[Tuple[int, int], ...]


def bands_for_threshold(signature_length: int, threshold: float) -> int:
    """Number of bands targeting candidate threshold ``t``.

    Derived from ``t = (1/b)^(b/s)`` via Lambert W; clamped to
    ``[1, signature_length]`` and rounded to the nearest integer.
    """
    if signature_length < 1:
        raise ValueError("signature length must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    argument = -signature_length * math.log(threshold)
    # -s ln t > 0 here, so the principal branch is real.
    bands = math.exp(float(lambertw(argument).real))
    if not math.isfinite(bands):  # pragma: no cover - defensive
        bands = 1.0
    return max(1, min(signature_length, int(round(bands))))


def implied_threshold(signature_length: int, num_bands: int) -> float:
    """The approximate threshold ``(1/b)^(1/r)`` realised by a banding."""
    if num_bands < 1 or signature_length < num_bands:
        raise ValueError("need 1 <= bands <= signature length")
    rows = signature_length / num_bands
    return (1.0 / num_bands) ** (1.0 / rows)


def collision_probability(
    similarity: float, signature_length: int, num_bands: int
) -> float:
    """``1 - (1 - t^r)^b`` — probability of sharing at least one band."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must be in [0, 1]")
    rows = signature_length / num_bands
    return 1.0 - (1.0 - similarity**rows) ** num_bands


def split_bands(
    signature: Sequence[Optional[int]], num_bands: int
) -> List[Optional[Band]]:
    """Split a signature into hashable bands.

    Slots are annotated with their index before placeholders are dropped,
    so a match requires the *same* query windows to agree (omitting
    placeholders must not let unrelated slots align).  A band whose slots
    are all placeholders yields ``None`` — it is never hashed, otherwise
    every silent entity would collide with every other.
    """
    if num_bands < 1:
        raise ValueError("need at least one band")
    length = len(signature)
    if num_bands > length:
        raise ValueError(f"cannot split {length} slots into {num_bands} bands")
    base = length // num_bands
    remainder = length % num_bands
    bands: List[Optional[Band]] = []
    position = 0
    for band_index in range(num_bands):
        size = base + (1 if band_index < remainder else 0)
        cells = tuple(
            (slot_index, signature[slot_index])
            for slot_index in range(position, position + size)
            if signature[slot_index] is not None
        )
        bands.append(cells if cells else None)
        position += size
    return bands

"""Pluggable execution backends for the pipeline's parallel fan-outs.

See :mod:`repro.exec.backends` for the :class:`Executor` protocol, the
``"serial"`` / ``"thread"`` / ``"process"`` backends, their fault
tolerance (per-block ``timeout``, bounded ``retries``, degradation to the
serial oracle) and the ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` environment
overrides; :mod:`repro.exec.faults` for the deterministic fault-injection
harness behind ``REPRO_FAULTS``.  The scoring stage
(:class:`~repro.pipeline.stages.ScoringStage`), the auto-tuning
sweep (:mod:`repro.core.tuning`) and the evaluation harness
(:func:`~repro.eval.harness.run_grid`) all fan out through this one API,
configured by :class:`~repro.pipeline.config.LinkageConfig`'s
``executor`` / ``workers`` / ``timeout`` / ``retries`` fields::

    from repro.pipeline import LinkageConfig, LinkagePipeline

    report = LinkagePipeline(
        LinkageConfig(executor="process", workers=4)
    ).run(left, right)
"""

from .backends import (
    AUTO_EXECUTOR,
    DEFAULT_BACKOFF,
    DEFAULT_MAX_FAILURES,
    DEFAULT_RETRIES,
    ENV_EXECUTOR,
    ENV_WORKERS,
    Executor,
    ExecutorStats,
    ProcessExecutor,
    SerialExecutor,
    TaskError,
    TaskResult,
    ThreadExecutor,
    as_executor,
    create_executor,
    executors,
    raise_on_task_errors,
    resolve_executor_name,
    resolve_worker_count,
)
from .faults import (
    ENV_FAULTS,
    FAULT_KINDS,
    CorruptResult,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    fault_plans,
    inject,
    install_fault_plan,
    trigger_fault,
)

__all__ = [
    "AUTO_EXECUTOR",
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_FAILURES",
    "DEFAULT_RETRIES",
    "ENV_EXECUTOR",
    "ENV_FAULTS",
    "ENV_WORKERS",
    "FAULT_KINDS",
    "CorruptResult",
    "Executor",
    "ExecutorStats",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TaskError",
    "TaskResult",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "active_fault_plan",
    "executors",
    "fault_plans",
    "create_executor",
    "as_executor",
    "inject",
    "install_fault_plan",
    "raise_on_task_errors",
    "resolve_executor_name",
    "resolve_worker_count",
    "trigger_fault",
]

"""Pluggable execution backends for the pipeline's parallel fan-outs.

See :mod:`repro.exec.backends` for the :class:`Executor` protocol, the
``"serial"`` / ``"thread"`` / ``"process"`` backends and the
``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` environment overrides.  The scoring
stage (:class:`~repro.pipeline.stages.ScoringStage`), the auto-tuning
sweep (:mod:`repro.core.tuning`) and the evaluation harness
(:func:`~repro.eval.harness.run_grid`) all fan out through this one API,
configured by :class:`~repro.pipeline.config.LinkageConfig`'s
``executor`` / ``workers`` fields::

    from repro.pipeline import LinkageConfig, LinkagePipeline

    report = LinkagePipeline(
        LinkageConfig(executor="process", workers=4)
    ).run(left, right)
"""

from .backends import (
    AUTO_EXECUTOR,
    ENV_EXECUTOR,
    ENV_WORKERS,
    Executor,
    ExecutorStats,
    ProcessExecutor,
    SerialExecutor,
    TaskResult,
    ThreadExecutor,
    as_executor,
    create_executor,
    executors,
    resolve_executor_name,
    resolve_worker_count,
)

__all__ = [
    "AUTO_EXECUTOR",
    "ENV_EXECUTOR",
    "ENV_WORKERS",
    "Executor",
    "ExecutorStats",
    "TaskResult",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "executors",
    "create_executor",
    "as_executor",
    "resolve_executor_name",
    "resolve_worker_count",
]

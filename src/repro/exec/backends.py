"""Execution backends: *how* independent work units run.

The linkage pipeline's expensive fan-outs — score blocks inside
:class:`~repro.pipeline.stages.ScoringStage`, spatial levels inside the
auto-tuning sweep, grid cells inside the evaluation harness — are all
embarrassingly parallel: a list of independent items mapped through a pure
function of some shared read-only state.  This module separates that
*execution strategy* from the stage semantics behind one small protocol:

* :class:`Executor` — ``map_blocks(fn, items, payload)`` applies
  ``fn(payload, item)`` to every item and returns per-item
  :class:`TaskResult`\\ s **in item order**; ``shutdown()`` releases any
  worker resources; :attr:`Executor.stats` counts dispatches/tasks/busy
  seconds;
* the :data:`executors` registry with three built-in backends:

  - ``"serial"`` — an in-process loop.  The parity oracle: every other
    backend must reproduce its results bit for bit;
  - ``"thread"`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
    Cheap to start; wins exactly as much as the mapped function releases
    the GIL (the numpy batch kernel does, partially);
  - ``"process"`` — a :mod:`multiprocessing` pool.  Under the ``fork``
    start method (Linux) the payload — e.g. both history corpora with
    their materialised array views — is shipped to every worker **once**,
    by page-sharing inheritance, not per task; only the per-task items and
    results cross the pipe.

Results are deterministic by construction: items are mapped one-to-one and
returned in submission order, so a caller that shards deterministically
gets bit-identical output from every backend (pinned by
``tests/pipeline/test_executors.py``).

Backend selection honours the ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``
environment overrides when a config leaves them on ``"auto"`` / ``0`` —
that is how the CI executor matrix runs the same test suite under every
backend.

>>> executor = create_executor("serial")
>>> [task.value for task in executor.map_blocks(
...     lambda payload, item: payload + item, [1, 2, 3], payload=10)]
[11, 12, 13]
>>> executor.stats.tasks
3
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..registry import Registry

__all__ = [
    "AUTO_EXECUTOR",
    "ENV_EXECUTOR",
    "ENV_WORKERS",
    "Executor",
    "ExecutorStats",
    "TaskResult",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "executors",
    "create_executor",
    "as_executor",
    "resolve_executor_name",
    "resolve_worker_count",
]

#: Config value meaning "let the environment decide" (``REPRO_EXECUTOR``,
#: else ``"serial"``).
AUTO_EXECUTOR = "auto"

#: Environment override applied to ``executor="auto"`` configs — the CI
#: executor matrix sets this to run the suite under every backend.
ENV_EXECUTOR = "REPRO_EXECUTOR"

#: Environment override applied to ``workers=0`` configs.
ENV_WORKERS = "REPRO_WORKERS"

#: Task function: ``fn(payload, item) -> value``.  For the process backend
#: it must be a module-level (picklable-by-reference) function.
TaskFn = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class TaskResult:
    """One mapped item's outcome: the value plus the worker-measured
    wall-clock seconds spent inside the task function (IPC excluded)."""

    value: Any
    seconds: float


@dataclass
class ExecutorStats:
    """Mutable counters accumulated by an executor across dispatches.

    ``busy_seconds`` sums the per-task seconds of every
    :class:`TaskResult` — compared against a stage's wall-clock time it
    yields the realised parallel speedup (see
    :func:`repro.eval.reporting.parallel_efficiency_table`).
    """

    dispatches: int = 0
    tasks: int = 0
    busy_seconds: float = 0.0

    def account(self, results: Sequence[TaskResult]) -> None:
        """Fold one dispatch's results into the counters."""
        self.dispatches += 1
        self.tasks += len(results)
        self.busy_seconds += sum(result.seconds for result in results)


@runtime_checkable
class Executor(Protocol):
    """Anything that can run independent work units for the pipeline."""

    name: str
    workers: int
    stats: ExecutorStats

    def map_blocks(
        self, fn: TaskFn, items: Sequence[Any], payload: Any = None
    ) -> List[TaskResult]:  # pragma: no cover - protocol
        ...

    def shutdown(self) -> None:  # pragma: no cover - protocol
        ...


#: Execution backends; entries are factories called with the resolved
#: worker count.  Register your own with ``@executors.register("name")``.
executors: Registry[Callable[[int], Executor]] = Registry("executor")


def resolve_executor_name(name: str) -> str:
    """``"auto"`` resolution: the ``REPRO_EXECUTOR`` environment override
    when set, else ``"serial"``.  Explicit names pass through untouched —
    a config that *names* a backend is never overridden by the
    environment (the CI matrix only redirects defaulted configs)."""
    if name != AUTO_EXECUTOR:
        return name
    env = os.environ.get(ENV_EXECUTOR, "").strip()
    return env or "serial"


def resolve_worker_count(workers: int) -> int:
    """``0`` resolution: ``REPRO_WORKERS`` when set, else the machine's
    CPU count.  Explicit positive counts pass through."""
    if workers:
        return workers
    env = os.environ.get(ENV_WORKERS, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            )
        return value
    return os.cpu_count() or 1


def create_executor(name: str = AUTO_EXECUTOR, workers: int = 0) -> Executor:
    """Build an executor from a backend name and a worker count.

    ``name`` may be ``"auto"`` (environment-resolved) or any registered
    backend; unknown names raise a :class:`KeyError` listing what *is*
    registered.  ``workers=0`` resolves to ``REPRO_WORKERS`` / the CPU
    count.  Inside a daemonic pool worker (a nested fan-out — e.g. a
    harness grid cell whose pipeline itself asks for processes) the
    ``"process"`` backend degrades to ``"serial"``: daemonic processes
    cannot spawn children, and silently serialising the inner level is
    the correct behaviour for nested parallelism anyway.
    """
    resolved = resolve_executor_name(name)
    factory = executors.get(resolved)
    if resolved == "process" and multiprocessing.current_process().daemon:
        return SerialExecutor()
    return factory(resolve_worker_count(workers))


def as_executor(
    executor: "Optional[Executor | str]",
) -> Tuple[Optional[Executor], bool]:
    """Normalise an ``executor`` argument: ``None`` stays ``None``, a
    backend name becomes a freshly created executor the *caller* must
    shut down (``owned=True``), an :class:`Executor` instance is borrowed
    (``owned=False``)."""
    if executor is None:
        return None, False
    if isinstance(executor, str):
        return create_executor(executor), True
    return executor, False


# ---------------------------------------------------------------------------
# serial
# ---------------------------------------------------------------------------
@executors.register("serial")
class SerialExecutor:
    """The in-process loop — current behaviour, and the parity oracle."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        self.workers = 1
        self.stats = ExecutorStats()

    def map_blocks(
        self, fn: TaskFn, items: Sequence[Any], payload: Any = None
    ) -> List[TaskResult]:
        results: List[TaskResult] = []
        for item in items:
            start = time.perf_counter()
            value = fn(payload, item)
            results.append(TaskResult(value, time.perf_counter() - start))
        self.stats.account(results)
        return results

    def shutdown(self) -> None:
        """Nothing to release."""


# ---------------------------------------------------------------------------
# thread
# ---------------------------------------------------------------------------
@executors.register("thread")
class ThreadExecutor:
    """A shared thread pool (created lazily, reused across dispatches).

    Wins exactly as much as the mapped function releases the GIL; the
    numpy batch kernel's array passes do, its Python orchestration does
    not — the honest curve is recorded by
    ``benchmarks/bench_parallel_scoring.py``.
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("thread executor needs at least one worker")
        self.workers = workers
        self.stats = ExecutorStats()
        self._pool: Optional[ThreadPoolExecutor] = None

    def map_blocks(
        self, fn: TaskFn, items: Sequence[Any], payload: Any = None
    ) -> List[TaskResult]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec",
            )

        def timed(item: Any) -> TaskResult:
            start = time.perf_counter()
            value = fn(payload, item)
            return TaskResult(value, time.perf_counter() - start)

        results = list(self._pool.map(timed, items))
        self.stats.account(results)
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# process
# ---------------------------------------------------------------------------

# Worker-side state of one process dispatch.  Under the fork start method
# the parent sets these module globals and forks the pool, so every child
# inherits the task function and the (potentially large) payload through
# copy-on-write pages — nothing is pickled but the per-task items and
# results.  Under spawn the initializer ships both, once per worker.
_WORKER_FN: Optional[TaskFn] = None
_WORKER_PAYLOAD: Any = None
#: Serialises the set-globals-then-fork window between concurrent
#: dispatches from different threads.
_FORK_LOCK = threading.Lock()


def _init_worker(fn: TaskFn, payload: Any) -> None:
    """Spawn-path initializer: receive the dispatch state, once."""
    global _WORKER_FN, _WORKER_PAYLOAD
    _WORKER_FN = fn
    _WORKER_PAYLOAD = payload


def _run_task(item: Any) -> TaskResult:
    """Apply the dispatch's task function to one item, in a worker."""
    start = time.perf_counter()
    value = _WORKER_FN(_WORKER_PAYLOAD, item)
    return TaskResult(value, time.perf_counter() - start)


@executors.register("process")
class ProcessExecutor:
    """A multiprocessing pool sharing read-only state by fork inheritance.

    Each :meth:`map_blocks` call forks a fresh pool: the payload must be
    baked into the workers' memory image at fork time (that is what makes
    shipping two full corpora essentially free on Linux), so worker
    lifetime is one dispatch.  Fork startup is a few milliseconds per
    worker; callers dispatch *blocks* of work, not single pairs, so the
    cost amortises.  On platforms without ``fork`` the pool falls back to
    the default start method and pickles the payload once per worker.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("process executor needs at least one worker")
        self.workers = workers
        self.stats = ExecutorStats()

    def map_blocks(
        self, fn: TaskFn, items: Sequence[Any], payload: Any = None
    ) -> List[TaskResult]:
        items = list(items)
        if not items:
            return []
        processes = max(1, min(self.workers, len(items)))
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            with _FORK_LOCK:
                global _WORKER_FN, _WORKER_PAYLOAD
                _WORKER_FN, _WORKER_PAYLOAD = fn, payload
                try:
                    pool = context.Pool(processes)
                finally:
                    _WORKER_FN, _WORKER_PAYLOAD = None, None
        else:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
            pool = context.Pool(
                processes, initializer=_init_worker, initargs=(fn, payload)
            )
        try:
            results = pool.map(_run_task, items, chunksize=1)
        finally:
            pool.terminate()
            pool.join()
        self.stats.account(results)
        return results

    def shutdown(self) -> None:
        """Pools are per-dispatch; nothing outlives a map_blocks call."""

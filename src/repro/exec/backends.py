"""Execution backends: *how* independent work units run.

The linkage pipeline's expensive fan-outs — score blocks inside
:class:`~repro.pipeline.stages.ScoringStage`, spatial levels inside the
auto-tuning sweep, grid cells inside the evaluation harness — are all
embarrassingly parallel: a list of independent items mapped through a pure
function of some shared read-only state.  This module separates that
*execution strategy* from the stage semantics behind one small protocol:

* :class:`Executor` — ``map_blocks(fn, items, payload)`` applies
  ``fn(payload, item)`` to every item and returns per-item
  :class:`TaskResult`\\ s **in item order**; ``shutdown()`` releases any
  worker resources (idempotent; executors are also context managers);
  :attr:`Executor.stats` counts dispatches/tasks/busy seconds and fault
  recovery;
* the :data:`executors` registry with three built-in backends:

  - ``"serial"`` — an in-process loop.  The parity oracle: every other
    backend must reproduce its results bit for bit;
  - ``"thread"`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
    Cheap to start; wins exactly as much as the mapped function releases
    the GIL (the numpy batch kernel does, partially);
  - ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
    Under the ``fork`` start method (Linux) the payload — e.g. both
    history corpora with their materialised array views — is shipped to
    every worker **once**, by page-sharing inheritance, not per task;
    only the per-task items and results cross the pipe.

Fault tolerance
---------------
Every backend runs each block with a bounded retry budget (``retries``,
deterministic exponential backoff) and an optional per-block ``timeout``
(parallel backends only — the serial oracle cannot preempt its own
frame).  The process backend detects a crashed worker
(:class:`~concurrent.futures.process.BrokenProcessPool`) or a hung block,
kills and respawns its pool, and re-dispatches the unfinished blocks.
When one dispatch accumulates more than ``max_failures`` failed attempts,
the backend *degrades*: everything still pending runs inline on the
serial oracle so the run completes (``stats.degraded``).  A task whose
retries are exhausted gets one final inline attempt; only if that also
fails does its :class:`TaskResult` carry an ``error`` — the dispatch
itself never raises, so one poisoned block cannot kill a fan-out.
Because retried blocks recompute the same pure function over the same
inputs, recovered dispatches stay **bit-identical** to fault-free ones —
pinned by ``tests/chaos/``.  Deterministic fault *injection* for all of
this lives in :mod:`repro.exec.faults` (``REPRO_FAULTS``).

Results are deterministic by construction: items are mapped one-to-one and
returned in submission order, so a caller that shards deterministically
gets bit-identical output from every backend (pinned by
``tests/pipeline/test_executors.py``).

Backend selection honours the ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``
environment overrides when a config leaves them on ``"auto"`` / ``0`` —
that is how the CI executor matrix runs the same test suite under every
backend.

>>> executor = create_executor("serial")
>>> [task.value for task in executor.map_blocks(
...     lambda payload, item: payload + item, [1, 2, 3], payload=10)]
[11, 12, 13]
>>> executor.stats.tasks
3
"""

from __future__ import annotations

import multiprocessing
import os
# repro-lint: timing-module -- backends measure task busy-seconds and retry backoff
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..registry import Registry
from .faults import (
    CorruptResult,
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    trigger_fault,
)

__all__ = [
    "AUTO_EXECUTOR",
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_FAILURES",
    "DEFAULT_RETRIES",
    "ENV_EXECUTOR",
    "ENV_WORKERS",
    "Executor",
    "ExecutorStats",
    "TaskError",
    "TaskResult",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "executors",
    "create_executor",
    "as_executor",
    "raise_on_task_errors",
    "resolve_executor_name",
    "resolve_worker_count",
]

#: Config value meaning "let the environment decide" (``REPRO_EXECUTOR``,
#: else ``"serial"``).
AUTO_EXECUTOR = "auto"

#: Environment override applied to ``executor="auto"`` configs — the CI
#: executor matrix sets this to run the suite under every backend.
ENV_EXECUTOR = "REPRO_EXECUTOR"

#: Environment override applied to ``workers=0`` configs.
ENV_WORKERS = "REPRO_WORKERS"

#: Default retry budget per task (attempts beyond the first).
DEFAULT_RETRIES = 2

#: Default failed-attempt budget per dispatch before the backend degrades
#: to the serial oracle for everything still pending.
DEFAULT_MAX_FAILURES = 3

#: Base of the deterministic exponential backoff between retry rounds
#: (``backoff * 2**attempt`` seconds; no jitter — determinism).
DEFAULT_BACKOFF = 0.05

#: Task function: ``fn(payload, item) -> value``.  For the process backend
#: it must be a module-level (picklable-by-reference) function.
TaskFn = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class TaskResult:
    """One mapped item's outcome.

    ``value`` plus the worker-measured wall-clock seconds spent inside
    the task function (IPC excluded).  ``error`` is ``None`` for a
    successful task; a task that kept failing after its retry budget
    *and* the inline serial fallback carries the formatted exception here
    (with ``value=None``) instead of aborting the whole dispatch.
    ``attempts`` counts executions of this item (1 = first try clean).
    """

    value: Any
    seconds: float
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.error is None


class TaskError(RuntimeError):
    """Raised by fan-out *callers* (via :func:`raise_on_task_errors`)
    when a dispatch came back with permanently failed tasks.  Raised only
    after the full dispatch completed and pools were released — a clean
    failure, not a mid-flight abort."""

    def __init__(self, what: str, failures: Sequence[Tuple[int, str]]) -> None:
        self.failures = list(failures)
        lines = "; ".join(
            f"item {index}: {error.splitlines()[-1] if error else 'failed'}"
            for index, error in self.failures
        )
        super().__init__(
            f"{len(self.failures)} {what} task(s) failed permanently: {lines}"
        )


def raise_on_task_errors(
    results: Sequence[TaskResult], what: str
) -> Sequence[TaskResult]:
    """Raise :class:`TaskError` if any result carries an error; otherwise
    return ``results`` unchanged.  The standard epilogue of a fan-out that
    cannot tolerate missing values."""
    failures = [
        (index, result.error)
        for index, result in enumerate(results)
        if result.error is not None
    ]
    if failures:
        raise TaskError(what, failures)
    return results


@dataclass
class ExecutorStats:
    """Mutable counters accumulated by an executor across dispatches.

    ``busy_seconds`` sums the per-task seconds of every
    :class:`TaskResult` — compared against a stage's wall-clock time it
    yields the realised parallel speedup (see
    :func:`repro.eval.reporting.parallel_efficiency_table`).

    The fault counters record recovery work: ``faults`` counts failed
    task attempts (including recovered ones), ``retries`` the
    re-submissions they caused, ``timeouts`` / ``worker_crashes`` the
    infrastructure subsets, ``task_errors`` the tasks that stayed failed
    after every recovery path, and ``degraded`` whether any dispatch fell
    back to the serial oracle mid-flight.
    """

    dispatches: int = 0
    tasks: int = 0
    busy_seconds: float = 0.0
    faults: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    task_errors: int = 0
    degraded: bool = False

    def account(self, results: Sequence[TaskResult]) -> None:
        """Fold one dispatch's results into the counters."""
        self.dispatches += 1
        self.tasks += len(results)
        self.busy_seconds += sum(result.seconds for result in results)
        self.task_errors += sum(
            1 for result in results if result.error is not None
        )

    def fault_summary(self) -> Dict[str, Any]:
        """The fault counters as one plain dict (report extras)."""
        return {
            "faults": self.faults,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "task_errors": self.task_errors,
            "degraded": self.degraded,
        }


@runtime_checkable
class Executor(Protocol):
    """Anything that can run independent work units for the pipeline.

    The built-in backends additionally honour the resilience attributes
    ``timeout`` / ``retries`` / ``max_failures`` / ``backoff`` (set by
    :func:`create_executor`) and are context managers whose ``__exit__``
    calls :meth:`shutdown` — custom registrations are encouraged, but not
    required, to do the same.
    """

    name: str
    workers: int
    stats: ExecutorStats

    def map_blocks(
        self, fn: TaskFn, items: Sequence[Any], payload: Any = None
    ) -> List[TaskResult]:  # pragma: no cover - protocol
        ...

    def shutdown(self) -> None:  # pragma: no cover - protocol
        ...


#: Execution backends; entries are factories called with the resolved
#: worker count.  Register your own with ``@executors.register("name")``.
executors: Registry[Callable[[int], Executor]] = Registry("executor")


def resolve_executor_name(name: str) -> str:
    """``"auto"`` resolution: the ``REPRO_EXECUTOR`` environment override
    when set, else ``"serial"``.  Explicit names pass through untouched —
    a config that *names* a backend is never overridden by the
    environment (the CI matrix only redirects defaulted configs)."""
    if name != AUTO_EXECUTOR:
        return name
    env = os.environ.get(ENV_EXECUTOR, "").strip()
    return env or "serial"


def resolve_worker_count(workers: int) -> int:
    """``0`` resolution: ``REPRO_WORKERS`` when set, else the machine's
    CPU count.  Explicit positive counts pass through."""
    if workers:
        return workers
    env = os.environ.get(ENV_WORKERS, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            )
        return value
    return os.cpu_count() or 1


_RESILIENCE_ATTRS = ("timeout", "retries", "max_failures", "backoff")


def create_executor(
    name: str = AUTO_EXECUTOR,
    workers: int = 0,
    *,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    max_failures: Optional[int] = None,
    backoff: Optional[float] = None,
) -> Executor:
    """Build an executor from a backend name and a worker count.

    ``name`` may be ``"auto"`` (environment-resolved) or any registered
    backend; unknown names raise a :class:`KeyError` listing what *is*
    registered.  ``workers=0`` resolves to ``REPRO_WORKERS`` / the CPU
    count.  The keyword-only resilience knobs, when given, are set as
    plain attributes on the built executor (so they work for custom
    registrations too): ``timeout`` seconds per block (``None``/0 =
    unbounded), ``retries`` attempts beyond the first per block,
    ``max_failures`` failed attempts per dispatch before degradation to
    the serial oracle, ``backoff`` base seconds of the deterministic
    exponential retry backoff.

    Inside a daemonic pool worker (a nested fan-out — e.g. a harness grid
    cell whose pipeline itself asks for processes) the ``"process"``
    backend degrades to ``"serial"``: daemonic processes cannot spawn
    children, and silently serialising the inner level is the correct
    behaviour for nested parallelism anyway.
    """
    resolved = resolve_executor_name(name)
    factory = executors.get(resolved)
    if resolved == "process" and (
        multiprocessing.current_process().daemon or _WORKER_FN is not None
    ):
        executor: Executor = SerialExecutor()
    else:
        executor = factory(resolve_worker_count(workers))
    for attr, value in zip(
        _RESILIENCE_ATTRS, (timeout, retries, max_failures, backoff)
    ):
        if value is not None:
            setattr(executor, attr, value)
    return executor


def as_executor(
    executor: "Optional[Executor | str]",
) -> Tuple[Optional[Executor], bool]:
    """Normalise an ``executor`` argument: ``None`` stays ``None``, a
    backend name becomes a freshly created executor the *caller* must
    shut down (``owned=True``), an :class:`Executor` instance is borrowed
    (``owned=False``)."""
    if executor is None:
        return None, False
    if isinstance(executor, str):
        return create_executor(executor), True
    return executor, False


# ---------------------------------------------------------------------------
# shared resilience machinery
# ---------------------------------------------------------------------------
def _describe(error: BaseException) -> str:
    """A compact, picklable rendering of a task failure."""
    return "".join(
        traceback.format_exception_only(type(error), error)
    ).strip()


def _execute_task(
    fn: TaskFn,
    payload: Any,
    item: Any,
    plan: Optional[FaultPlan],
    ordinal: int,
    attempt: int,
) -> TaskResult:
    """Run one task attempt (inside whatever worker hosts it), consulting
    the fault plan first so injected failures happen in the real
    execution frame."""
    start = time.perf_counter()
    if plan is not None:
        spec = plan.fault_for(ordinal, attempt)
        if spec is not None:
            value = trigger_fault(spec, ordinal, attempt)
            return TaskResult(
                value, time.perf_counter() - start, attempts=attempt + 1
            )
    value = fn(payload, item)
    return TaskResult(value, time.perf_counter() - start, attempts=attempt + 1)


class _ResilientBase:
    """Shared retry/backoff/fallback plumbing of the built-in backends."""

    #: Per-block timeout in seconds (parallel backends; ``None``/0 = off).
    timeout: Optional[float] = None
    #: Retry budget per task beyond the first attempt.
    retries: int = DEFAULT_RETRIES
    #: Failed attempts per dispatch before degradation to serial.
    max_failures: int = DEFAULT_MAX_FAILURES
    #: Base seconds of the deterministic exponential retry backoff.
    backoff: float = DEFAULT_BACKOFF

    def __enter__(self) -> "Executor":
        return self  # type: ignore[return-value]

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()  # type: ignore[attr-defined]

    def _backoff_sleep(self, attempt: int) -> None:
        if self.backoff > 0:
            time.sleep(self.backoff * (2**attempt))

    def _resolve_knobs(
        self, timeout: Optional[float], retries: Optional[int]
    ) -> Tuple[Optional[float], int]:
        timeout = self.timeout if timeout is None else timeout
        if timeout is not None and timeout <= 0:
            timeout = None
        return timeout, self.retries if retries is None else retries

    def _run_inline(
        self,
        fn: TaskFn,
        payload: Any,
        item: Any,
        plan: Optional[FaultPlan],
        ordinal: int,
        first_attempt: int,
        retries: int,
    ) -> TaskResult:
        """The serial-oracle attempt loop: run the task in this process,
        retrying with backoff until it succeeds, the budget is spent, or
        — past the budget — it fails permanently (``error`` slot)."""
        attempt = first_attempt
        while True:
            try:
                result = _execute_task(fn, payload, item, plan, ordinal, attempt)
                if isinstance(result.value, CorruptResult):
                    raise InjectedFault("corrupt", ordinal, attempt)
                return result
            except Exception as error:
                self.stats.faults += 1  # type: ignore[attr-defined]
                if attempt >= retries:
                    return TaskResult(
                        None, 0.0, error=_describe(error), attempts=attempt + 1
                    )
                self.stats.retries += 1  # type: ignore[attr-defined]
                self._backoff_sleep(attempt)
                attempt += 1


# ---------------------------------------------------------------------------
# serial
# ---------------------------------------------------------------------------
@executors.register("serial")
class SerialExecutor(_ResilientBase):
    """The in-process loop — current behaviour, and the parity oracle.

    Retries and fault injection apply; ``timeout`` does not (an
    in-process frame cannot preempt itself — a hung block hangs, which is
    why the parallel backends exist)."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        self.workers = 1
        self.stats = ExecutorStats()
        self._ordinal = 0

    def map_blocks(
        self,
        fn: TaskFn,
        items: Sequence[Any],
        payload: Any = None,
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> List[TaskResult]:
        items = list(items)
        _, retries = self._resolve_knobs(timeout, retries)
        plan = active_fault_plan()
        base = self._ordinal
        self._ordinal += len(items)
        results = [
            self._run_inline(fn, payload, item, plan, base + k, 0, retries)
            for k, item in enumerate(items)
        ]
        self.stats.account(results)
        return results

    def shutdown(self) -> None:
        """Nothing to release (safe to call any number of times)."""


# ---------------------------------------------------------------------------
# thread
# ---------------------------------------------------------------------------
@executors.register("thread")
class ThreadExecutor(_ResilientBase):
    """A shared thread pool (created lazily, reused across dispatches).

    Wins exactly as much as the mapped function releases the GIL; the
    numpy batch kernel's array passes do, its Python orchestration does
    not — the honest curve is recorded by
    ``benchmarks/bench_parallel_scoring.py``.

    A block that exceeds ``timeout`` is abandoned (threads cannot be
    killed; the stray attempt finishes harmlessly in the pool) and
    retried as a fresh submission.
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("thread executor needs at least one worker")
        self.workers = workers
        self.stats = ExecutorStats()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._ordinal = 0

    def map_blocks(
        self,
        fn: TaskFn,
        items: Sequence[Any],
        payload: Any = None,
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> List[TaskResult]:
        items = list(items)
        timeout, retries = self._resolve_knobs(timeout, retries)
        plan = active_fault_plan()
        base = self._ordinal
        self._ordinal += len(items)
        count = len(items)
        results: List[Optional[TaskResult]] = [None] * count
        if count:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-exec",
                )
            attempts = [0] * count
            pending = list(range(count))
            failures = 0
            while pending:
                if failures > self.max_failures:
                    # Degrade: finish everything still pending on the
                    # serial oracle so the dispatch completes.
                    self.stats.degraded = True
                    for k in pending:
                        results[k] = self._run_inline(
                            fn, payload, items[k], plan,
                            base + k, attempts[k], retries,
                        )
                    break
                futures = {
                    k: self._pool.submit(
                        _execute_task, fn, payload, items[k],
                        plan, base + k, attempts[k],
                    )
                    for k in pending
                }
                failed: List[int] = []
                for k in pending:
                    try:
                        result = futures[k].result(timeout=timeout)
                        if isinstance(result.value, CorruptResult):
                            raise InjectedFault("corrupt", base + k, attempts[k])
                        results[k] = result
                    except FuturesTimeout:
                        futures[k].cancel()
                        self.stats.faults += 1
                        self.stats.timeouts += 1
                        failures += 1
                        failed.append(k)
                    except Exception:
                        self.stats.faults += 1
                        failures += 1
                        failed.append(k)
                pending = []
                for k in failed:
                    if attempts[k] >= retries:
                        # Budget spent: one last inline attempt decides
                        # between a late value and a permanent error.
                        results[k] = self._run_inline(
                            fn, payload, items[k], plan,
                            base + k, attempts[k], attempts[k],
                        )
                    else:
                        self.stats.retries += 1
                        self._backoff_sleep(attempts[k])
                        attempts[k] += 1
                        pending.append(k)
        final = [result for result in results if result is not None]
        self.stats.account(final)
        return final

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# process
# ---------------------------------------------------------------------------

# Worker-side state of one process dispatch.  Under the fork start method
# the initializer arguments reach every child through copy-on-write
# memory inheritance, so the task function and the (potentially large)
# payload are shipped once per pool — nothing is pickled but the per-task
# items and results.  Under spawn the initializer ships both, once per
# worker.
_WORKER_FN: Optional[TaskFn] = None
_WORKER_PAYLOAD: Any = None
_WORKER_PLAN: Optional[FaultPlan] = None


def _init_worker(
    fn: TaskFn, payload: Any, plan: Optional[FaultPlan]
) -> None:
    """Pool initializer: receive the dispatch state, once per worker."""
    global _WORKER_FN, _WORKER_PAYLOAD, _WORKER_PLAN
    _WORKER_FN = fn
    _WORKER_PAYLOAD = payload
    _WORKER_PLAN = plan


def _run_task(task: Tuple[Any, int, int]) -> TaskResult:
    """Apply the dispatch's task function to one item, in a worker."""
    item, ordinal, attempt = task
    return _execute_task(
        _WORKER_FN, _WORKER_PAYLOAD, item, _WORKER_PLAN, ordinal, attempt
    )


@executors.register("process")
class ProcessExecutor(_ResilientBase):
    """A process pool sharing read-only state by fork inheritance.

    Each :meth:`map_blocks` call forks a fresh pool: the payload must be
    baked into the workers' memory image at fork time (that is what makes
    shipping two full corpora essentially free on Linux), so pool
    lifetime is one dispatch.  Fork startup is a few milliseconds per
    worker; callers dispatch *blocks* of work, not single pairs, so the
    cost amortises.  On platforms without ``fork`` the pool falls back to
    the default start method and pickles the payload once per worker.

    This is the one backend whose workers can genuinely die or hang.  A
    crashed worker surfaces as
    :class:`~concurrent.futures.process.BrokenProcessPool`; a block that
    exceeds ``timeout`` marks the pool suspect.  Either way the pool is
    killed and respawned, finished blocks keep their results, the failed
    block is retried against its budget, and innocent in-flight blocks
    are re-dispatched without consuming theirs.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("process executor needs at least one worker")
        self.workers = workers
        self.stats = ExecutorStats()
        self._ordinal = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle -------------------------------------------------
    def _make_pool(
        self, fn: TaskFn, payload: Any, plan: Optional[FaultPlan], processes: int
    ) -> ProcessPoolExecutor:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=processes,
            mp_context=context,
            initializer=_init_worker,
            initargs=(fn, payload, plan),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*: cancel queued work, kill workers (they
        may be hung — a graceful join could block forever)."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
                process.join(timeout=1.0)
            except Exception:  # pragma: no cover - defensive
                pass

    # -- dispatch -------------------------------------------------------
    def map_blocks(
        self,
        fn: TaskFn,
        items: Sequence[Any],
        payload: Any = None,
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> List[TaskResult]:
        items = list(items)
        timeout, retries = self._resolve_knobs(timeout, retries)
        plan = active_fault_plan()
        base = self._ordinal
        self._ordinal += len(items)
        count = len(items)
        results: List[Optional[TaskResult]] = [None] * count
        if count:
            processes = max(1, min(self.workers, count))
            attempts = [0] * count
            pending = list(range(count))
            failures = 0
            pool = self._pool = self._make_pool(fn, payload, plan, processes)
            try:
                while pending:
                    if failures > self.max_failures:
                        self.stats.degraded = True
                        for k in pending:
                            results[k] = self._run_inline(
                                fn, payload, items[k], plan,
                                base + k, attempts[k], retries,
                            )
                        break
                    futures = {
                        k: pool.submit(
                            _run_task, (items[k], base + k, attempts[k])
                        )
                        for k in pending
                    }
                    guilty: List[int] = []
                    collateral: List[int] = []
                    broken = False
                    for position, k in enumerate(pending):
                        try:
                            effective = 0.0 if broken else timeout
                            result = futures[k].result(timeout=effective)
                            if isinstance(result.value, CorruptResult):
                                raise InjectedFault(
                                    "corrupt", base + k, attempts[k]
                                )
                            results[k] = result
                        except FuturesTimeout:
                            self.stats.faults += 1
                            self.stats.timeouts += 1
                            failures += 1
                            guilty.append(k)
                            broken = True  # the worker may be hung
                        except BrokenProcessPool:
                            # The pool died; *which* block killed it is
                            # unknowable from here.  With a fault plan the
                            # scheduled crash identifies the culprit
                            # deterministically; without one, charge every
                            # interrupted block (real-world crashes).
                            if not broken:
                                self.stats.worker_crashes += 1
                            broken = True
                            spec = (
                                plan.fault_for(base + k, attempts[k])
                                if plan is not None
                                else None
                            )
                            if plan is None or (
                                spec is not None and spec.kind == "crash"
                            ):
                                self.stats.faults += 1
                                failures += 1
                                guilty.append(k)
                            else:
                                collateral.append(k)
                        except Exception:
                            self.stats.faults += 1
                            failures += 1
                            guilty.append(k)
                    if broken:
                        self._kill_pool(pool)
                        pool = self._pool = self._make_pool(
                            fn, payload, plan, processes
                        )
                    pending = []
                    # Innocent blocks interrupted by a neighbour's crash
                    # re-dispatch at the *same* attempt (their budget and
                    # their fault schedule are untouched).
                    pending.extend(collateral)
                    for k in guilty:
                        if attempts[k] >= retries:
                            results[k] = self._run_inline(
                                fn, payload, items[k], plan,
                                base + k, attempts[k], attempts[k],
                            )
                        else:
                            self.stats.retries += 1
                            self._backoff_sleep(attempts[k])
                            attempts[k] += 1
                            pending.append(k)
                    pending.sort()
            finally:
                self._kill_pool(pool)
                self._pool = None
        final = [result for result in results if result is not None]
        self.stats.account(final)
        return final

    def shutdown(self) -> None:
        """Kill any live dispatch pool (idempotent; pools are normally
        per-dispatch and already released by ``map_blocks``)."""
        pool = self._pool
        if pool is not None:
            self._kill_pool(pool)
            self._pool = None

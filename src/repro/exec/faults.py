"""Deterministic fault injection for the execution backends.

The resilience contract of :mod:`repro.exec.backends` — per-block
timeouts, bounded retries, worker respawn, degradation to the serial
oracle — is only trustworthy if it can be *exercised on demand*, under
every backend, with reproducible outcomes.  This module is that harness:
a :class:`FaultPlan` names exactly which task invocations fail, how, and
how many times, keyed on the executor's deterministic task ordinal
(submission order) and the attempt number.  Because ordinals are
identical across ``"serial"`` / ``"thread"`` / ``"process"`` (items are
submitted in order), one plan produces the same fault schedule under
every backend — which is what lets ``tests/chaos/`` assert that recovered
runs are bit-identical to fault-free runs.

Fault kinds (:data:`FAULT_KINDS`):

* ``"transient"`` — the task raises :class:`InjectedFault`; a retry of
  the same ordinal succeeds once the spec's ``attempts`` are spent.
* ``"timeout"`` — the task sleeps ``seconds`` before raising.  Parallel
  backends with a per-block ``timeout`` shorter than the sleep detect a
  genuine hang and retry; the serial oracle (which cannot preempt its own
  frame) recovers when the sleeping attempt finally raises.
* ``"crash"`` — inside a worker *process* the task calls ``os._exit``,
  killing the worker mid-task (the process pool respawns and retries);
  in-process backends simulate the crash as an exception.
* ``"corrupt"`` — the task returns a :class:`CorruptResult` marker in
  place of its value (modelling a payload that fails its checksum);
  executors detect the marker and treat the attempt as failed.

Activation is either programmatic (:func:`install_fault_plan`, or the
:func:`inject` context manager) or environment-driven via
``REPRO_FAULTS`` — the hook the CI chaos job uses.  The variable holds
either a raw spec string::

    REPRO_FAULTS="transient@1;crash@3;timeout@0~0.4;corrupt@5*2"

(``kind@ordinal``, optionally ``*attempts`` and ``~seconds``), or a named
plan from the :data:`fault_plans` registry with an optional seed::

    REPRO_FAULTS="mixed:7"

>>> plan = FaultPlan.from_spec("transient@1;corrupt@3")
>>> plan.fault_for(1, 0).kind
'transient'
>>> plan.fault_for(1, 1) is None  # retry attempt runs clean
True
>>> FaultPlan.from_spec(plan.to_spec()) == plan
True
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from ..registry import Registry

__all__ = [
    "ENV_FAULTS",
    "ENV_KILL_SWITCH",
    "FAULT_KINDS",
    "CorruptResult",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_fault_plan",
    "fault_plans",
    "inject",
    "install_fault_plan",
    "kill_switch",
    "trigger_fault",
]

#: Environment variable enabling a fault plan process-wide (a raw spec
#: string or a ``name[:seed]`` reference into :data:`fault_plans`).
ENV_FAULTS = "REPRO_FAULTS"

#: The injectable failure modes, in registry order.
FAULT_KINDS = ("transient", "timeout", "crash", "corrupt")

#: Exit code of an injected worker crash (distinctive in core dumps/logs).
_CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """A failure manufactured by the harness (or detected corruption).

    Carries ``kind`` / ``ordinal`` / ``attempt`` so recovery paths and
    tests can tell injected failures from organic ones.  Constructed with
    exactly those three positional arguments — which also keeps instances
    picklable across the process boundary.
    """

    def __init__(self, kind: str, ordinal: int, attempt: int) -> None:
        super().__init__(kind, ordinal, attempt)
        self.kind = kind
        self.ordinal = ordinal
        self.attempt = attempt

    def __str__(self) -> str:
        return (
            f"injected {self.kind} fault at task ordinal {self.ordinal} "
            f"(attempt {self.attempt})"
        )


@dataclass(frozen=True)
class CorruptResult:
    """Marker an injected ``"corrupt"`` fault returns instead of the real
    task value — the stand-in for a payload that fails its checksum.
    Executors must never let one escape a dispatch."""

    ordinal: int


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    index:
        The executor-lifetime task ordinal (submission order, starting at
        0) whose execution is sabotaged.
    attempts:
        How many consecutive attempts at that ordinal fail before the
        task is allowed to succeed.  An ``attempts`` larger than the
        executor's retry budget makes the fault *permanent* — the path
        that exercises clean failure instead of recovery.
    seconds:
        Hang duration of a ``"timeout"`` fault (ignored by other kinds).
    """

    kind: str
    index: int
    attempts: int = 1
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; kinds: {list(FAULT_KINDS)}"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be >= 0, got {self.index}")
        if self.attempts < 1:
            raise ValueError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec`\\ s.

    Pure data: :meth:`fault_for` is a function of ``(ordinal, attempt)``
    with no internal state, so the same plan object can be shared across
    threads and shipped to worker processes (plans are picklable) without
    any coordination — determinism comes for free.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        by_index: Dict[int, FaultSpec] = {}
        for spec in self.specs:
            if spec.index in by_index:
                raise ValueError(
                    f"duplicate fault at task ordinal {spec.index}"
                )
            by_index[spec.index] = spec
        self._by_index = by_index

    def fault_for(self, ordinal: int, attempt: int) -> Optional[FaultSpec]:
        """The fault scheduled for this task invocation, or ``None``."""
        spec = self._by_index.get(ordinal)
        if spec is not None and attempt < spec.attempts:
            return spec
        return None

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return sorted(self.specs, key=lambda s: s.index) == sorted(
            other.specs, key=lambda s: s.index
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.specs, key=lambda s: s.index)))

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: Sequence[str] = FAULT_KINDS,
        faults: int = 3,
        span: int = 16,
        attempts: int = 1,
        seconds: float = 0.25,
    ) -> "FaultPlan":
        """A reproducible random plan: ``faults`` distinct ordinals drawn
        from ``range(span)``, each assigned a kind from ``kinds`` — all
        driven by one :class:`random.Random` seed."""
        if faults > span:
            raise ValueError(
                f"cannot place {faults} faults in a span of {span} ordinals"
            )
        rng = Random(seed)
        indices = sorted(rng.sample(range(span), faults))
        return cls(
            FaultSpec(
                kind=rng.choice(list(kinds)),
                index=index,
                attempts=attempts,
                seconds=seconds,
            )
            for index in indices
        )

    # ------------------------------------------------------------------
    # spec-string round trip (the REPRO_FAULTS wire format)
    # ------------------------------------------------------------------
    def to_spec(self) -> str:
        """The raw spec string :meth:`from_spec` inverts."""
        parts = []
        for spec in self.specs:
            part = f"{spec.kind}@{spec.index}"
            if spec.attempts != 1:
                part += f"*{spec.attempts}"
            if spec.kind == "timeout" and spec.seconds != 0.25:
                part += f"~{spec.seconds:g}"
            parts.append(part)
        return ";".join(parts)

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse ``kind@index[*attempts][~seconds];...`` (whitespace and
        empty segments tolerated)."""
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected kind@index"
                    "[*attempts][~seconds]"
                )
            kind, _, rest = chunk.partition("@")
            seconds = 0.25
            attempts = 1
            if "~" in rest:
                rest, _, raw_seconds = rest.partition("~")
                seconds = float(raw_seconds)
            if "*" in rest:
                rest, _, raw_attempts = rest.partition("*")
                attempts = int(raw_attempts)
            specs.append(
                FaultSpec(
                    kind=kind.strip(),
                    index=int(rest),
                    attempts=attempts,
                    seconds=seconds,
                )
            )
        return cls(specs)


#: Named, seeded fault-plan factories (``factory(seed) -> FaultPlan``) —
#: what a ``REPRO_FAULTS=name:seed`` reference resolves through.  Register
#: your own scenario with ``@fault_plans.register("name")``.
fault_plans: Registry = Registry("fault plan")  # repro-lint: disable=registry-config-knob -- plans are selected by the REPRO_FAULTS env spec, not LinkageConfig


@fault_plans.register("transient")
def _transient_plan(seed: int) -> FaultPlan:
    """Transient exceptions only — the pure retry path."""
    return FaultPlan.seeded(seed, kinds=("transient",))


@fault_plans.register("crash")
def _crash_plan(seed: int) -> FaultPlan:
    """Worker crashes only — the respawn-and-retry path."""
    return FaultPlan.seeded(seed, kinds=("crash",))


@fault_plans.register("timeout")
def _timeout_plan(seed: int) -> FaultPlan:
    """Block hangs only — the per-block timeout path."""
    return FaultPlan.seeded(seed, kinds=("timeout",))


@fault_plans.register("corrupt")
def _corrupt_plan(seed: int) -> FaultPlan:
    """Corrupt payloads only — the result-validation path."""
    return FaultPlan.seeded(seed, kinds=("corrupt",))


@fault_plans.register("mixed")
def _mixed_plan(seed: int) -> FaultPlan:
    """Every fault kind in one schedule."""
    return FaultPlan.seeded(seed, kinds=FAULT_KINDS, faults=4, span=24)


def _parse_env(value: str) -> FaultPlan:
    """Resolve a ``REPRO_FAULTS`` value: raw spec strings contain ``@``;
    anything else is a ``name[:seed]`` reference into the registry."""
    value = value.strip()
    if "@" in value:
        return FaultPlan.from_spec(value)
    name, _, raw_seed = value.partition(":")
    factory = fault_plans.get(name.strip())
    try:
        seed = int(raw_seed) if raw_seed.strip() else 0
    except ValueError:
        raise ValueError(
            f"{ENV_FAULTS} seed must be an integer, got {raw_seed!r}"
        ) from None
    return factory(seed)


# ---------------------------------------------------------------------------
# activation
# ---------------------------------------------------------------------------
_INSTALLED: Optional[FaultPlan] = None
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` process-wide (``None`` deactivates).  A
    programmatically installed plan takes precedence over ``REPRO_FAULTS``."""
    global _INSTALLED
    _INSTALLED = plan


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan executors must consult right now: the installed plan,
    else the (cached) parse of ``REPRO_FAULTS``, else ``None``."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    value = os.environ.get(ENV_FAULTS, "").strip() or None
    if value is None:
        return None
    cached_value, cached_plan = _ENV_CACHE
    if value != cached_value:
        _ENV_CACHE = (value, _parse_env(value))
    return _ENV_CACHE[1]


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a fault plan to a ``with`` block (always uninstalls)."""
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(None)


#: Environment variable arming the hard-kill chaos hook:
#: ``"<event>:<ordinal>"`` SIGKILLs the process at the ordinal-th
#: occurrence of the named :func:`kill_switch` event.
ENV_KILL_SWITCH = "REPRO_KILL_SWITCH"

#: Per-event occurrence counters for :func:`kill_switch` (process-local,
#: deterministic: events are counted in program order).
_KILL_COUNTS: Dict[str, int] = {}


def kill_switch(event: str) -> None:
    """Deterministic hard-kill hook for crash-restart drills.

    Writers of durable state call this after every externally visible
    step (e.g. the snapshot protocol of :mod:`repro.store.snapshot`
    fires ``"snapshot-file"`` after each payload write and
    ``"snapshot-promote"`` after the atomic rename).  With
    ``REPRO_KILL_SWITCH="<event>:<n>"`` in the environment, the n-th
    occurrence of that event SIGKILLs the process — no cleanup, no
    ``atexit``, exactly the power-loss a crash-safe protocol must
    survive.  Because events are counted in program order, the same
    spec kills at the same point on every run.

    Unarmed (the default), the hook is a cheap no-op.
    """
    spec = os.environ.get(ENV_KILL_SWITCH, "").strip()
    if not spec:
        return
    name, _, ordinal_text = spec.partition(":")
    if name != event:
        return
    try:
        ordinal = int(ordinal_text)
    except ValueError:
        raise ValueError(
            f"{ENV_KILL_SWITCH} must look like '<event>:<ordinal>', "
            f"got {spec!r}"
        ) from None
    count = _KILL_COUNTS.get(event, 0) + 1
    _KILL_COUNTS[event] = count
    if count >= ordinal:
        os.kill(os.getpid(), signal.SIGKILL)


def trigger_fault(spec: FaultSpec, ordinal: int, attempt: int):
    """Perform one scheduled fault *inside the task frame*.

    Raises for ``"transient"`` / ``"timeout"`` (after sleeping) /
    in-process ``"crash"``; kills the current process for a ``"crash"``
    inside a pool worker; returns a :class:`CorruptResult` for
    ``"corrupt"`` (the caller returns it as the task value).
    """
    if spec.kind == "corrupt":
        return CorruptResult(ordinal)
    if spec.kind == "timeout":
        time.sleep(spec.seconds)
        raise InjectedFault("timeout", ordinal, attempt)
    if spec.kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(_CRASH_EXIT_CODE)
        # No worker process to kill (serial/thread backends): the crash
        # degenerates to an abrupt exception, which is the closest
        # in-process analogue.
        raise InjectedFault("crash", ordinal, attempt)
    raise InjectedFault("transient", ordinal, attempt)

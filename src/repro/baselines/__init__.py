"""State-of-the-art comparators re-implemented for Sec. 5.5.

* :class:`~repro.baselines.stlink.StLinkLinker` — ST-Link (ref [3]):
  k-co-occurrence / l-diversity / alibi-tolerance linkage with ambiguity
  dropping.
* :class:`~repro.baselines.gm.GmLinker` — GM (ref [43]): per-entity
  Gaussian-mixture + Markov mobility models, record-pair kernel scores
  (cross-window pairs included), SLIM's matching + threshold on top.
"""

from .gm import GmConfig, GmLinker, GmResult
from .pois import PoisConfig, PoisLinker, PoisResult
from .stlink import StLinkConfig, StLinkLinker, StLinkResult

__all__ = [
    "StLinkConfig",
    "StLinkLinker",
    "StLinkResult",
    "GmConfig",
    "GmLinker",
    "GmResult",
    "PoisConfig",
    "PoisLinker",
    "PoisResult",
]

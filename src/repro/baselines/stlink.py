"""ST-Link baseline (Basık et al., IEEE TMC 2018 — the paper's ref [3]).

ST-Link performs a sliding-window comparison over record streams and links
an entity pair when it has

* at least ``k`` *co-occurring* records (same temporal window, same grid
  cell),
* across at least ``l`` *diverse* locations (distinct cells among the
  co-occurrences),
* and at most ``alibi_tolerance`` alibi window pairs (same window, farther
  apart than the runaway distance) — the comparison experiments of the SLIM
  paper run ST-Link with tolerance 3.

``k`` and ``l`` are not supervised: they are read off the knee of the
distribution of per-pair co-occurrence and diversity counts, the trade-off
procedure described in ref [3] (we reuse the Kneedle detector).

If an entity satisfies the link conditions against *more than one* entity
from the other dataset, all of its candidate pairs are considered ambiguous
and dropped — ST-Link has no scoring-based disambiguation, which is exactly
the weakness Fig. 11b exposes at low record counts.

For hit-precision ranking, pairs are ordered by co-occurrence count (ties
broken by diversity).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.elbow import kneedle_index
from ..core.history import MobilityHistory, build_histories
from ..core.proximity import DEFAULT_MAX_SPEED_MPS, runaway_distance
from ..data.records import LocationDataset
from ..geo.cell import CellId
from ..temporal import common_windowing

__all__ = ["StLinkConfig", "StLinkResult", "StLinkLinker"]


@dataclass(frozen=True)
class StLinkConfig:
    """ST-Link parameters.

    ``k`` / ``l`` default to ``None`` = auto-detect via the knee of the
    respective count distributions.
    """

    window_width_minutes: float = 15.0
    spatial_level: int = 12
    max_speed_mps: float = DEFAULT_MAX_SPEED_MPS
    alibi_tolerance: int = 3
    k: Optional[int] = None
    l: Optional[int] = None
    min_candidate_cooccurrences: int = 1

    def __post_init__(self) -> None:
        if self.window_width_minutes <= 0:
            raise ValueError("window width must be positive")
        if self.alibi_tolerance < 0:
            raise ValueError("alibi tolerance must be non-negative")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0


@dataclass
class StLinkResult:
    """Linkage output plus the diagnostics the comparison benches report.

    ``record_comparisons`` counts the work *this* implementation performs
    (it blocks co-occurrence counting behind an inverted index, a
    substantial optimisation over the original).
    ``window_join_comparisons`` is the record-pair count the original
    ST-Link's sliding-window comparison performs — every cross-dataset
    record pair sharing a temporal window — and is the cost model behind
    the paper's "three orders of magnitude" comparison (Fig. 11d).
    """

    links: Dict[str, str]
    scores: Dict[Tuple[str, str], float]
    k: int
    l: int
    ambiguous_entities: Set[str]
    record_comparisons: int
    runtime_seconds: float
    candidates_considered: int = 0
    diversity: Dict[Tuple[str, str], int] = field(default_factory=dict)
    window_join_comparisons: int = 0


class StLinkLinker:
    """Links two datasets with the ST-Link co-occurrence procedure."""

    def __init__(self, config: Optional[StLinkConfig] = None) -> None:
        self.config = config or StLinkConfig()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cooccurrences(
        self,
        left_histories: Dict[str, MobilityHistory],
        right_histories: Dict[str, MobilityHistory],
    ) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], Set[int]], int]:
        """Count same-window/same-cell co-occurrences via an inverted index
        over (window, cell) bins."""
        level = self.config.spatial_level
        index: Dict[Tuple[int, int], Tuple[List[str], List[str]]] = defaultdict(
            lambda: ([], [])
        )
        for entity, history in left_histories.items():
            for window, cells in history.bins(level).items():
                for cell in cells:
                    index[(window, cell)][0].append(entity)
        for entity, history in right_histories.items():
            for window, cells in history.bins(level).items():
                for cell in cells:
                    index[(window, cell)][1].append(entity)

        counts: Dict[Tuple[str, str], int] = defaultdict(int)
        locations: Dict[Tuple[str, str], Set[int]] = defaultdict(set)
        comparisons = 0
        for (window, cell), (lefts, rights) in index.items():
            if not lefts or not rights:
                continue
            comparisons += len(lefts) * len(rights)
            for left_entity in lefts:
                for right_entity in rights:
                    pair = (left_entity, right_entity)
                    counts[pair] += 1
                    locations[pair].add(cell)
        return dict(counts), dict(locations), comparisons

    def _alibi_count(
        self,
        left_history: MobilityHistory,
        right_history: MobilityHistory,
        runaway: float,
        distance_cache: Dict[Tuple[int, int], float],
    ) -> Tuple[int, int]:
        """Number of common windows whose farthest cross pair exceeds the
        runaway distance; also returns the comparisons spent."""
        level = self.config.spatial_level
        bins_left = left_history.bins(level)
        bins_right = right_history.bins(level)
        if len(bins_left) > len(bins_right):
            bins_left, bins_right = bins_right, bins_left
        alibis = 0
        comparisons = 0
        for window, cells_a in bins_left.items():
            cells_b = bins_right.get(window)
            if cells_b is None:
                continue
            worst = 0.0
            for cell_a in cells_a:
                for cell_b in cells_b:
                    comparisons += 1
                    if cell_a == cell_b:
                        continue
                    key = (
                        (cell_a, cell_b) if cell_a < cell_b else (cell_b, cell_a)
                    )
                    cached = distance_cache.get(key)
                    if cached is None:
                        cached = CellId(key[0]).distance_meters(CellId(key[1]))
                        distance_cache[key] = cached
                    if cached > worst:
                        worst = cached
            if worst > runaway:
                alibis += 1
        return alibis, comparisons

    @staticmethod
    def _knee_threshold(values: List[int]) -> int:
        """Auto-detect a count threshold (ref [3]'s trade-off point).

        For each candidate threshold ``t``, count how many pairs reach it
        (the CCDF of the per-pair counts).  The curve drops steeply while
        ``t`` still separates noise pairs and flattens once only genuinely
        co-occurring pairs remain; the knee of that curve is the threshold.
        """
        if not values:
            return 1
        unique = sorted(set(values))
        if len(unique) < 3:
            return max(1, unique[-1])
        ordered = sorted(values)
        total = len(ordered)
        # pairs_reaching[i] = #values >= unique[i], via bisect on the sorted list.
        import bisect

        pairs_reaching = [
            total - bisect.bisect_left(ordered, threshold) for threshold in unique
        ]
        knee = kneedle_index(
            unique, pairs_reaching, curve="convex", direction="decreasing"
        )
        return max(1, unique[knee])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def link(self, left: LocationDataset, right: LocationDataset) -> StLinkResult:
        """Run ST-Link and return links plus diagnostics."""
        start = time.perf_counter()
        config = self.config
        windowing = common_windowing(
            (left.time_range(), right.time_range()), config.window_width_seconds
        )
        left_histories = build_histories(left, windowing, config.spatial_level)
        right_histories = build_histories(right, windowing, config.spatial_level)

        counts, locations, comparisons = self._cooccurrences(
            left_histories, right_histories
        )

        k = config.k if config.k is not None else self._knee_threshold(
            list(counts.values())
        )
        l = config.l if config.l is not None else self._knee_threshold(
            [len(cells) for cells in locations.values()]
        )

        runaway = runaway_distance(config.window_width_seconds, config.max_speed_mps)
        distance_cache: Dict[Tuple[int, int], float] = {}
        qualified: List[Tuple[str, str]] = []
        candidates = 0
        for pair, count in counts.items():
            if count < max(k, config.min_candidate_cooccurrences):
                continue
            if len(locations[pair]) < l:
                continue
            candidates += 1
            alibis, spent = self._alibi_count(
                left_histories[pair[0]],
                right_histories[pair[1]],
                runaway,
                distance_cache,
            )
            comparisons += spent
            if alibis <= config.alibi_tolerance:
                qualified.append(pair)

        # Ambiguity resolution: an entity in more than one qualified pair
        # invalidates all of its pairs.
        left_degree: Dict[str, int] = defaultdict(int)
        right_degree: Dict[str, int] = defaultdict(int)
        for left_entity, right_entity in qualified:
            left_degree[left_entity] += 1
            right_degree[right_entity] += 1
        ambiguous = {
            entity for entity, degree in left_degree.items() if degree > 1
        } | {entity for entity, degree in right_degree.items() if degree > 1}
        links = {
            left_entity: right_entity
            for left_entity, right_entity in qualified
            if left_entity not in ambiguous and right_entity not in ambiguous
        }

        scores = {
            pair: float(count) + len(locations[pair]) / 1_000.0
            for pair, count in counts.items()
        }

        # Cost of the original's sliding-window comparison: sum over windows
        # of (left records in window) x (right records in window).
        left_per_window: Dict[int, int] = defaultdict(int)
        right_per_window: Dict[int, int] = defaultdict(int)
        for history in left_histories.values():
            for window in history.windows():
                left_per_window[window] += history.records_in_window(window)
        for history in right_histories.values():
            for window in history.windows():
                right_per_window[window] += history.records_in_window(window)
        window_join = sum(
            count * right_per_window.get(window, 0)
            for window, count in left_per_window.items()
        )
        return StLinkResult(
            links=links,
            scores=scores,
            k=k,
            l=l,
            ambiguous_entities=ambiguous,
            record_comparisons=comparisons,
            runtime_seconds=time.perf_counter() - start,
            candidates_considered=candidates,
            diversity={pair: len(cells) for pair, cells in locations.items()},
            window_join_comparisons=window_join,
        )

"""ST-Link baseline (Basık et al., IEEE TMC 2018 — the paper's ref [3]).

ST-Link performs a sliding-window comparison over record streams and links
an entity pair when it has

* at least ``k`` *co-occurring* records (same temporal window, same grid
  cell),
* across at least ``l`` *diverse* locations (distinct cells among the
  co-occurrences),
* and at most ``alibi_tolerance`` alibi window pairs (same window, farther
  apart than the runaway distance) — the comparison experiments of the SLIM
  paper run ST-Link with tolerance 3.

``k`` and ``l`` are not supervised: they are read off the knee of the
distribution of per-pair co-occurrence and diversity counts, the trade-off
procedure described in ref [3] (we reuse the Kneedle detector).

If an entity satisfies the link conditions against *more than one* entity
from the other dataset, all of its candidate pairs are considered ambiguous
and dropped — ST-Link has no scoring-based disambiguation, which is exactly
the weakness Fig. 11b exposes at low record counts.  That ambiguity rule is
registered as the ``"stlink"`` strategy in the pipeline's matcher registry
(:data:`repro.pipeline.matchers`), so :meth:`StLinkLinker.link_report`
runs through the *same* stage pipeline as every other linker.

For hit-precision ranking, pairs are ordered by co-occurrence count (ties
broken by diversity).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.elbow import kneedle_index
from ..core.history import MobilityHistory, build_histories
from ..core.matching import Edge
from ..core.proximity import DEFAULT_MAX_SPEED_MPS, runaway_distance
from ..core.similarity import SimilarityStats
from ..data.records import LocationDataset
from ..geo.cell import CellId
from ..pipeline import (
    STAGE_CANDIDATES,
    STAGE_PREPARE,
    STAGE_SCORING,
    LinkageConfig,
    LinkageContext,
    LinkagePipeline,
    LinkageReport,
    MatchingStage,
    ThresholdStage,
    matchers,
)
from ..temporal import common_windowing

__all__ = [
    "StLinkConfig",
    "StLinkResult",
    "StLinkLinker",
    "stlink_ambiguity_matching",
    "ambiguous_entities",
]


def ambiguous_entities(qualified: Sequence[Edge]) -> Set[str]:
    """Entities appearing in more than one qualified pair — the single
    source of truth for ST-Link's ambiguity rule, shared by the
    ``"stlink"`` matcher and the :class:`StLinkResult` diagnostics."""
    left_degree: Dict[str, int] = defaultdict(int)
    right_degree: Dict[str, int] = defaultdict(int)
    for edge in qualified:
        left_degree[edge.left] += 1
        right_degree[edge.right] += 1
    return {
        entity for entity, degree in left_degree.items() if degree > 1
    } | {entity for entity, degree in right_degree.items() if degree > 1}


def stlink_ambiguity_matching(edges: Sequence[Edge]) -> List[Edge]:
    """ST-Link's "matcher": keep a qualified pair only when *neither*
    endpoint appears in any other qualified pair (no scoring-based
    disambiguation — ambiguous entities drop out entirely)."""
    ambiguous = ambiguous_entities(edges)
    return [
        edge
        for edge in edges
        if edge.left not in ambiguous and edge.right not in ambiguous
    ]


if "stlink" not in matchers:
    matchers.register("stlink")(stlink_ambiguity_matching)


@dataclass(frozen=True)
class StLinkConfig:
    """ST-Link parameters.

    ``k`` / ``l`` default to ``None`` = auto-detect via the knee of the
    respective count distributions.
    """

    window_width_minutes: float = 15.0
    spatial_level: int = 12
    max_speed_mps: float = DEFAULT_MAX_SPEED_MPS
    alibi_tolerance: int = 3
    k: Optional[int] = None
    l: Optional[int] = None
    min_candidate_cooccurrences: int = 1

    def __post_init__(self) -> None:
        if self.window_width_minutes <= 0:
            raise ValueError("window width must be positive")
        if self.alibi_tolerance < 0:
            raise ValueError("alibi tolerance must be non-negative")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0


@dataclass
class StLinkResult:
    """Linkage output plus the diagnostics the comparison benches report.

    ``record_comparisons`` counts the work *this* implementation performs
    (it blocks co-occurrence counting behind an inverted index, a
    substantial optimisation over the original).
    ``window_join_comparisons`` is the record-pair count the original
    ST-Link's sliding-window comparison performs — every cross-dataset
    record pair sharing a temporal window — and is the cost model behind
    the paper's "three orders of magnitude" comparison (Fig. 11d).
    """

    links: Dict[str, str]
    scores: Dict[Tuple[str, str], float]
    k: int
    l: int
    ambiguous_entities: Set[str]
    record_comparisons: int
    runtime_seconds: float
    candidates_considered: int = 0
    diversity: Dict[Tuple[str, str], int] = field(default_factory=dict)
    window_join_comparisons: int = 0


class StLinkLinker:
    """Links two datasets with the ST-Link co-occurrence procedure."""

    def __init__(self, config: Optional[StLinkConfig] = None) -> None:
        self.config = config or StLinkConfig()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cooccurrences(
        self,
        left_histories: Dict[str, MobilityHistory],
        right_histories: Dict[str, MobilityHistory],
    ) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], Set[int]], int]:
        """Count same-window/same-cell co-occurrences via an inverted index
        over (window, cell) bins."""
        level = self.config.spatial_level
        index: Dict[Tuple[int, int], Tuple[List[str], List[str]]] = defaultdict(
            lambda: ([], [])
        )
        for entity, history in left_histories.items():
            for window, cells in history.bins(level).items():
                for cell in cells:
                    index[(window, cell)][0].append(entity)
        for entity, history in right_histories.items():
            for window, cells in history.bins(level).items():
                for cell in cells:
                    index[(window, cell)][1].append(entity)

        counts: Dict[Tuple[str, str], int] = defaultdict(int)
        locations: Dict[Tuple[str, str], Set[int]] = defaultdict(set)
        comparisons = 0
        for (window, cell), (lefts, rights) in index.items():
            if not lefts or not rights:
                continue
            comparisons += len(lefts) * len(rights)
            for left_entity in lefts:
                for right_entity in rights:
                    pair = (left_entity, right_entity)
                    counts[pair] += 1
                    locations[pair].add(cell)
        return dict(counts), dict(locations), comparisons

    def _alibi_count(
        self,
        left_history: MobilityHistory,
        right_history: MobilityHistory,
        runaway: float,
        distance_cache: Dict[Tuple[int, int], float],
    ) -> Tuple[int, int]:
        """Number of common windows whose farthest cross pair exceeds the
        runaway distance; also returns the comparisons spent."""
        level = self.config.spatial_level
        bins_left = left_history.bins(level)
        bins_right = right_history.bins(level)
        if len(bins_left) > len(bins_right):
            bins_left, bins_right = bins_right, bins_left
        alibis = 0
        comparisons = 0
        for window, cells_a in bins_left.items():
            cells_b = bins_right.get(window)
            if cells_b is None:
                continue
            worst = 0.0
            for cell_a in cells_a:
                for cell_b in cells_b:
                    comparisons += 1
                    if cell_a == cell_b:
                        continue
                    key = (
                        (cell_a, cell_b) if cell_a < cell_b else (cell_b, cell_a)
                    )
                    cached = distance_cache.get(key)
                    if cached is None:
                        cached = CellId(key[0]).distance_meters(CellId(key[1]))
                        distance_cache[key] = cached
                    if cached > worst:
                        worst = cached
            if worst > runaway:
                alibis += 1
        return alibis, comparisons

    @staticmethod
    def _knee_threshold(values: List[int]) -> int:
        """Auto-detect a count threshold (ref [3]'s trade-off point).

        For each candidate threshold ``t``, count how many pairs reach it
        (the CCDF of the per-pair counts).  The curve drops steeply while
        ``t`` still separates noise pairs and flattens once only genuinely
        co-occurring pairs remain; the knee of that curve is the threshold.
        """
        if not values:
            return 1
        unique = sorted(set(values))
        if len(unique) < 3:
            return max(1, unique[-1])
        ordered = sorted(values)
        total = len(ordered)
        # pairs_reaching[i] = #values >= unique[i], via bisect on the sorted list.
        import bisect

        pairs_reaching = [
            total - bisect.bisect_left(ordered, threshold) for threshold in unique
        ]
        knee = kneedle_index(
            unique, pairs_reaching, curve="convex", direction="decreasing"
        )
        return max(1, unique[knee])

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def pipeline_config(self) -> LinkageConfig:
        """The stage choices ST-Link plugs into the shared pipeline:
        ambiguity-drop "matching", no stop threshold."""
        return LinkageConfig(matching="stlink", threshold="none")

    def stages(self) -> List[object]:
        """The stage composition :meth:`link_report` runs."""
        config = self.pipeline_config()
        return [
            _StLinkPrepare(self.config),
            _StLinkCandidates(self),
            _StLinkScoring(self),
            MatchingStage(config),
            ThresholdStage(config),
        ]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def link_report(
        self, left: LocationDataset, right: LocationDataset
    ) -> LinkageReport:
        """Run ST-Link through the shared stage pipeline.

        The report's ``extras`` carry the ST-Link-specific diagnostics
        (``k``, ``l``, the full score dict, ambiguity set, comparison
        counters); :meth:`link` repackages them as the legacy
        :class:`StLinkResult`.
        """
        pipeline = LinkagePipeline(self.pipeline_config(), stages=self.stages())
        return pipeline.run(left, right)

    def link(self, left: LocationDataset, right: LocationDataset) -> StLinkResult:
        """Run ST-Link and return links plus diagnostics."""
        report = self.link_report(left, right)
        extras = report.extras
        return StLinkResult(
            links=report.links,
            scores=extras["scores"],
            k=extras["k"],
            l=extras["l"],
            ambiguous_entities=extras["ambiguous_entities"],
            record_comparisons=extras["record_comparisons"],
            runtime_seconds=report.runtime_seconds,
            candidates_considered=extras["candidates_considered"],
            diversity=extras["diversity"],
            window_join_comparisons=extras["window_join_comparisons"],
        )


class _StLinkPrepare:
    """Windowing + histories at the ST-Link spatial level."""

    name = STAGE_PREPARE

    def __init__(self, config: StLinkConfig) -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        left, right = context.left, context.right
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            self.config.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        context.windowing = windowing
        context.total_windows = windowing.index_of(latest) + 1
        context.left_histories = build_histories(
            left, windowing, self.config.spatial_level
        )
        context.right_histories = build_histories(
            right, windowing, self.config.spatial_level
        )


class _StLinkCandidates:
    """Co-occurrence counting via the inverted (window, cell) index; the
    co-occurring pairs are ST-Link's candidate set."""

    name = STAGE_CANDIDATES

    def __init__(self, linker: "StLinkLinker") -> None:
        self.linker = linker

    def run(self, context: LinkageContext) -> None:
        counts, locations, comparisons = self.linker._cooccurrences(
            context.left_histories, context.right_histories
        )
        context.candidates = sorted(counts)
        context.extras["counts"] = counts
        context.extras["locations"] = locations
        context.extras["record_comparisons"] = comparisons


class _StLinkScoring:
    """k/l knee detection, alibi screening, and the co-occurrence score
    (count, diversity as the tie-break decimal)."""

    name = STAGE_SCORING

    def __init__(self, linker: "StLinkLinker") -> None:
        self.linker = linker

    def run(self, context: LinkageContext) -> None:
        linker = self.linker
        config = linker.config
        counts: Dict[Tuple[str, str], int] = context.extras["counts"]
        locations: Dict[Tuple[str, str], Set[int]] = context.extras["locations"]
        comparisons: int = context.extras["record_comparisons"]

        k = config.k if config.k is not None else linker._knee_threshold(
            list(counts.values())
        )
        l = config.l if config.l is not None else linker._knee_threshold(
            [len(cells) for cells in locations.values()]
        )

        runaway = runaway_distance(
            config.window_width_seconds, config.max_speed_mps
        )
        distance_cache: Dict[Tuple[int, int], float] = {}
        scores = {
            pair: float(count) + len(locations[pair]) / 1_000.0
            for pair, count in counts.items()
        }
        edges: List[Edge] = []
        candidates_considered = 0
        for pair in context.candidates:
            count = counts[pair]
            if count < max(k, config.min_candidate_cooccurrences):
                continue
            if len(locations[pair]) < l:
                continue
            candidates_considered += 1
            alibis, spent = linker._alibi_count(
                context.left_histories[pair[0]],
                context.right_histories[pair[1]],
                runaway,
                distance_cache,
            )
            comparisons += spent
            if alibis <= config.alibi_tolerance:
                edges.append(Edge(pair[0], pair[1], scores[pair]))

        # Cost of the original's sliding-window comparison: sum over windows
        # of (left records in window) x (right records in window).
        left_per_window: Dict[int, int] = defaultdict(int)
        right_per_window: Dict[int, int] = defaultdict(int)
        for history in context.left_histories.values():
            for window in history.windows():
                left_per_window[window] += history.records_in_window(window)
        for history in context.right_histories.values():
            for window in history.windows():
                right_per_window[window] += history.records_in_window(window)
        window_join = sum(
            count * right_per_window.get(window, 0)
            for window, count in left_per_window.items()
        )

        context.edges = edges
        context.stats = SimilarityStats(
            pairs_scored=len(counts), bin_comparisons=comparisons
        )
        context.extras.update(
            k=k,
            l=l,
            record_comparisons=comparisons,
            candidates_considered=candidates_considered,
            diversity={pair: len(cells) for pair, cells in locations.items()},
            window_join_comparisons=window_join,
            scores=scores,
            ambiguous_entities=ambiguous_entities(edges),
        )

"""POIS baseline (Riederer et al., WWW 2016 — the paper's ref [32]).

POIS links users across services under a generative model: each user
visits location-time bins following a Poisson process, and each service
observes those visits through independent Bernoulli thinning.  The
resulting maximum-likelihood pair score reduces to a co-occurrence sum in
which a bin's contribution grows with both sides' visit counts and with the
bin's *rarity* (popular bins are likely chance collisions):

``score(u, v) = sum_bins n_u(bin) * n_v(bin) * (-log p(bin))``

with ``p(bin)`` the bin's share of all records.  One-to-one linkage then
comes from a maximum-weight bipartite matching, as in the original paper.

SLIM's authors discuss POIS in related work (Sec. 6): it "assumes that
visits of each user to a location during a time period follow a Poisson
distribution and records on each service are independent ... following a
Bernoulli distribution", whereas SLIM makes no mobility-model assumption.
This implementation rounds out the comparator set for users who want the
model-based alternative; it is not part of the paper's Fig. 11 evaluation
(the paper compares against GM, which subsumed POIS in its own evaluation).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.history import build_histories
from ..core.matching import Edge
from ..core.similarity import SimilarityStats
from ..data.records import LocationDataset
from ..pipeline import (
    STAGE_CANDIDATES,
    STAGE_PREPARE,
    STAGE_SCORING,
    LinkageConfig,
    LinkageContext,
    LinkagePipeline,
    LinkageReport,
    MatchingStage,
    ThresholdStage,
)
from ..temporal import common_windowing

__all__ = ["PoisConfig", "PoisResult", "PoisLinker"]


@dataclass(frozen=True)
class PoisConfig:
    """POIS parameters: the spatio-temporal bin grid and a minimum score."""

    window_width_minutes: float = 15.0
    spatial_level: int = 12
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.window_width_minutes <= 0:
            raise ValueError("window width must be positive")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0


@dataclass
class PoisResult:
    """POIS linkage output."""

    links: Dict[str, str]
    scores: Dict[Tuple[str, str], float]
    record_comparisons: int
    runtime_seconds: float


class PoisLinker:
    """Links two datasets with the POIS rarity-weighted co-occurrence score."""

    def __init__(self, config: Optional[PoisConfig] = None) -> None:
        self.config = config or PoisConfig()

    # ------------------------------------------------------------------
    # pipeline composition
    # ------------------------------------------------------------------
    def pipeline_config(self) -> LinkageConfig:
        """POIS's stage choices: exact (Hungarian) matching, no stop
        threshold — every matched pair links, as in the original."""
        return LinkageConfig(matching="hungarian", threshold="none")

    def stages(self) -> List[object]:
        """The stage composition :meth:`link_report` runs."""
        config = self.pipeline_config()
        return [
            _PoisPrepare(self.config),
            _PoisCandidates(self.config),
            _PoisScoring(self.config),
            MatchingStage(config),
            ThresholdStage(config),
        ]

    def link_report(
        self, left: LocationDataset, right: LocationDataset
    ) -> LinkageReport:
        """Run POIS through the shared stage pipeline (extras carry the
        full score dict and the comparison count)."""
        pipeline = LinkagePipeline(self.pipeline_config(), stages=self.stages())
        return pipeline.run(left, right)

    def link(self, left: LocationDataset, right: LocationDataset) -> PoisResult:
        """Score all co-occurring pairs and link via exact matching."""
        report = self.link_report(left, right)
        return PoisResult(
            links=report.links,
            scores=report.extras["scores"],
            record_comparisons=report.extras["record_comparisons"],
            runtime_seconds=report.runtime_seconds,
        )


class _PoisPrepare:
    """Windowing + histories at the POIS bin grid."""

    name = STAGE_PREPARE

    def __init__(self, config: PoisConfig) -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        left, right = context.left, context.right
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            self.config.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        context.windowing = windowing
        context.total_windows = windowing.index_of(latest) + 1
        level = self.config.spatial_level
        context.left_histories = build_histories(left, windowing, level)
        context.right_histories = build_histories(right, windowing, level)


class _PoisCandidates:
    """The bin join: rarity-weighted co-occurrence mass accumulated per
    cross pair; co-occurring pairs are the candidate set."""

    name = STAGE_CANDIDATES

    def __init__(self, config: PoisConfig) -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        level = self.config.spatial_level
        # Per-bin visit counts per side, plus global bin popularity.
        left_bins: Dict[Tuple[int, int], Dict[str, float]] = defaultdict(dict)
        right_bins: Dict[Tuple[int, int], Dict[str, float]] = defaultdict(dict)
        bin_mass: Dict[Tuple[int, int], float] = defaultdict(float)
        total_mass = 0.0
        for entity, history in context.left_histories.items():
            for window in history.windows():
                for cell, count in history.counts_in_window(window, level).items():
                    left_bins[(window, cell)][entity] = float(count)
                    bin_mass[(window, cell)] += count
                    total_mass += count
        for entity, history in context.right_histories.items():
            for window in history.windows():
                for cell, count in history.counts_in_window(window, level).items():
                    right_bins[(window, cell)][entity] = float(count)
                    bin_mass[(window, cell)] += count
                    total_mass += count

        scores: Dict[Tuple[str, str], float] = defaultdict(float)
        comparisons = 0
        for bin_key, left_counts in left_bins.items():
            right_counts = right_bins.get(bin_key)
            if not right_counts:
                continue
            rarity = -math.log(bin_mass[bin_key] / total_mass)
            comparisons += len(left_counts) * len(right_counts)
            for left_entity, left_count in left_counts.items():
                for right_entity, right_count in right_counts.items():
                    scores[(left_entity, right_entity)] += (
                        left_count * right_count * rarity
                    )
        context.candidates = sorted(scores)
        context.extras["scores"] = dict(scores)
        context.extras["record_comparisons"] = comparisons


class _PoisScoring:
    """Positive-evidence edges from the accumulated pair scores."""

    name = STAGE_SCORING

    def __init__(self, config: PoisConfig) -> None:
        self.config = config

    def run(self, context: LinkageContext) -> None:
        scores: Dict[Tuple[str, str], float] = context.extras["scores"]
        context.edges = [
            Edge(left_entity, right_entity, value)
            for (left_entity, right_entity), value in scores.items()
            if value > self.config.min_score
        ]
        context.stats = SimilarityStats(
            pairs_scored=len(scores),
            bin_comparisons=context.extras["record_comparisons"],
        )

"""GM baseline (Wang et al., NDSS 2018 — the paper's ref [43]).

GM links mobility traces by *learning a per-entity mobility model* — a
Gaussian-mixture spatial model plus a Markov model over coarse cells — and
scoring candidate pairs with weighted spatio-temporally-close record pairs.
Two properties distinguish it from SLIM (and are called out in Sec. 5.5):

* it awards record pairs from *different* temporal windows (with temporal
  decay), where SLIM only pairs within a window;
* the mobility models are used to estimate *missing* locations: when one
  entity is silent in a window where the other has records, the model's
  predicted location still contributes (discounted) evidence.

GM has no blocking/scalability mechanism and works at record granularity,
which is why the paper measures it two orders of magnitude slower; this
implementation intentionally preserves that cost profile (per-record kernel
sums) rather than optimising it away.

Like the paper's comparison, GM produces pair scores only; one-to-one
linkage is obtained by running SLIM's matching + stop-threshold over the GM
score matrix ("we apply our linkage and stop threshold algorithm over their
similarity scores").
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.matching import Edge
from ..core.similarity import SimilarityStats
from ..core.threshold import ThresholdDecision
from ..data.records import LocationDataset
from ..geo import cell_ids_from_degrees
from ..pipeline import (
    STAGE_CANDIDATES,
    STAGE_PREPARE,
    STAGE_SCORING,
    LinkageConfig,
    LinkageContext,
    LinkagePipeline,
    LinkageReport,
    MatchingStage,
    ThresholdStage,
)
from ..temporal import Windowing, common_windowing

__all__ = ["GmConfig", "EntityMobilityModel", "GmResult", "GmLinker"]

_METERS_PER_DEGREE_LAT = 111_320.0


@dataclass(frozen=True)
class GmConfig:
    """GM parameters (kernel bandwidths, model sizes).

    ``sigma_meters`` is the spatial kernel bandwidth; ``temporal_decay`` the
    per-window discount for cross-window record pairs, considered up to
    ``max_window_gap`` windows apart; ``missing_weight`` discounts evidence
    against model-estimated (rather than observed) locations.
    """

    window_width_minutes: float = 15.0
    sigma_meters: float = 400.0
    temporal_decay: float = 0.5
    max_window_gap: int = 4
    markov_level: int = 11
    gmm_components: int = 3
    missing_weight: float = 0.3
    seed: int = 13

    def __post_init__(self) -> None:
        if self.sigma_meters <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 < self.temporal_decay <= 1.0:
            raise ValueError("temporal decay must be in (0, 1]")
        if self.max_window_gap < 0:
            raise ValueError("window gap must be non-negative")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0


class EntityMobilityModel:
    """The per-entity model GM learns: spatial GMM + cell-level Markov chain.

    Coordinates are projected onto a local tangent plane (metres) around the
    entity's centroid; the GMM runs diagonal-covariance EM there.
    """

    def __init__(
        self,
        entity_id: str,
        timestamps: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        windowing: Windowing,
        config: GmConfig,
    ) -> None:
        self.entity_id = entity_id
        self.config = config
        self.lats = lats
        self.lngs = lngs
        self.num_records = int(timestamps.shape[0])

        self.window_records: Dict[int, List[int]] = defaultdict(list)
        indices = np.floor(
            (timestamps - windowing.origin) / windowing.width_seconds
        ).astype(np.int64)
        for row, window in enumerate(indices.tolist()):
            self.window_records[window].append(row)
        self.windows = sorted(self.window_records)

        self._fit_spatial_gmm()
        self._fit_markov(indices)

    # ------------------------------------------------------------------
    # model fitting
    # ------------------------------------------------------------------
    def _project(self, lats: np.ndarray, lngs: np.ndarray) -> np.ndarray:
        """Local tangent-plane projection to metres (N x 2)."""
        y = (lats - self.center_lat) * _METERS_PER_DEGREE_LAT
        x = (
            (lngs - self.center_lng)
            * _METERS_PER_DEGREE_LAT
            * math.cos(math.radians(self.center_lat))
        )
        return np.stack([x, y], axis=1)

    def _fit_spatial_gmm(self) -> None:
        """Diagonal-covariance 2-D GMM over the entity's locations."""
        self.center_lat = float(self.lats.mean())
        self.center_lng = float(self.lngs.mean())
        points = self._project(self.lats, self.lngs)
        n = points.shape[0]
        k = max(1, min(self.config.gmm_components, n // 4 if n >= 8 else 1))
        rng = np.random.default_rng(self.config.seed)

        # k-means-style init on a deterministic subsample.
        order = rng.permutation(n)
        means = points[order[:k]].astype(np.float64)
        variances = np.full((k, 2), max(points.var(axis=0).mean(), 1.0))
        weights = np.full(k, 1.0 / k)

        for _ in range(25):
            # E step (diagonal Gaussian responsibilities).
            log_prob = np.zeros((n, k))
            for component in range(k):
                diff = points - means[component]
                log_prob[:, component] = (
                    math.log(max(weights[component], 1e-12))
                    - 0.5 * np.sum(np.log(2 * np.pi * variances[component]))
                    - 0.5 * np.sum(diff**2 / variances[component], axis=1)
                )
            log_norm = np.logaddexp.reduce(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            mass = np.maximum(resp.sum(axis=0), 1e-12)
            weights = mass / n
            new_means = (resp[:, :, None] * points[:, None, :]).sum(axis=0) / mass[:, None]
            if np.allclose(new_means, means, atol=1e-3):
                means = new_means
                break
            means = new_means
            for component in range(k):
                diff = points - means[component]
                variances[component] = np.maximum(
                    (resp[:, component, None] * diff**2).sum(axis=0) / mass[component],
                    1.0,
                )
        self.gmm_weights = weights
        self.gmm_means = means
        self.gmm_variances = variances

    def _fit_markov(self, window_indices: np.ndarray) -> None:
        """First-order Markov chain over coarse cells along the record
        sequence, plus per-window observed cells."""
        cells = cell_ids_from_degrees(self.lats, self.lngs, self.config.markov_level)
        self.cell_by_row = cells
        transitions: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        order = np.argsort(window_indices, kind="stable")
        ordered_cells = cells[order]
        for previous, current in zip(ordered_cells[:-1], ordered_cells[1:]):
            transitions[int(previous)][int(current)] += 1
        self.transitions = {
            source: dict(targets) for source, targets in transitions.items()
        }
        # Cell centroid lookup (mean of this entity's fixes in the cell).
        sums: Dict[int, List[float]] = defaultdict(lambda: [0.0, 0.0, 0.0])
        for row, cell in enumerate(cells.tolist()):
            entry = sums[int(cell)]
            entry[0] += float(self.lats[row])
            entry[1] += float(self.lngs[row])
            entry[2] += 1.0
        self.cell_centroids = {
            cell: (lat_sum / count, lng_sum / count)
            for cell, (lat_sum, lng_sum, count) in sums.items()
        }

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def estimate_location(self, window: int) -> Optional[Tuple[float, float]]:
        """Estimate the entity's location in an *unobserved* window.

        Finds the nearest observed window, takes that window's cell, and
        follows the most likely Markov transition; falls back to the
        heaviest GMM component mean when the chain has no outgoing mass.
        """
        if not self.windows:
            return None
        nearest = min(self.windows, key=lambda w: abs(w - window))
        row = self.window_records[nearest][0]
        cell = int(self.cell_by_row[row])
        targets = self.transitions.get(cell)
        if targets:
            best = max(targets.items(), key=lambda item: item[1])[0]
            return self.cell_centroids[best]
        component = int(np.argmax(self.gmm_weights))
        x, y = self.gmm_means[component]
        lat = self.center_lat + y / _METERS_PER_DEGREE_LAT
        lng = self.center_lng + x / (
            _METERS_PER_DEGREE_LAT * math.cos(math.radians(self.center_lat))
        )
        return lat, lng


@dataclass
class GmResult:
    """GM linkage output and cost diagnostics."""

    links: Dict[str, str]
    scores: Dict[Tuple[str, str], float]
    threshold: ThresholdDecision
    record_comparisons: int
    runtime_seconds: float


class GmLinker:
    """Scores pairs with GM's record-pair kernel and links via SLIM's
    matching + stop threshold (as the paper's comparison does)."""

    def __init__(self, config: Optional[GmConfig] = None) -> None:
        self.config = config or GmConfig()
        self.record_comparisons = 0

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _kernel(self, lat_a, lng_a, lat_b, lng_b) -> float:
        """Squared-exponential spatial kernel on tangent-plane distance."""
        dy = (lat_a - lat_b) * _METERS_PER_DEGREE_LAT
        dx = (
            (lng_a - lng_b)
            * _METERS_PER_DEGREE_LAT
            * math.cos(math.radians(lat_a))
        )
        sigma = self.config.sigma_meters
        return math.exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma))

    def score(
        self, model_u: EntityMobilityModel, model_v: EntityMobilityModel
    ) -> float:
        """GM pair score: decayed kernel sum over close record pairs plus
        discounted model-estimated evidence for missing windows."""
        config = self.config
        decay = config.temporal_decay
        gap = config.max_window_gap
        total = 0.0
        comparisons = 0

        for window in model_v.windows:
            v_rows = model_v.window_records[window]
            matched_any = False
            for delta in range(-gap, gap + 1):
                u_rows = model_u.window_records.get(window + delta)
                if not u_rows:
                    continue
                matched_any = True
                weight = decay ** abs(delta)
                for v_row in v_rows:
                    lat_v = model_v.lats[v_row]
                    lng_v = model_v.lngs[v_row]
                    for u_row in u_rows:
                        comparisons += 1
                        total += weight * self._kernel(
                            model_u.lats[u_row],
                            model_u.lngs[u_row],
                            lat_v,
                            lng_v,
                        )
            if not matched_any and config.missing_weight > 0:
                estimate = model_u.estimate_location(window)
                if estimate is not None:
                    lat_u, lng_u = estimate
                    for v_row in v_rows:
                        comparisons += 1
                        total += config.missing_weight * self._kernel(
                            lat_u, lng_u, model_v.lats[v_row], model_v.lngs[v_row]
                        )

        self.record_comparisons += comparisons
        # Normalise by geometric mean record count so heavy loggers do not
        # dominate (GM's per-user models are likelihood-normalised).
        norm = math.sqrt(model_u.num_records * model_v.num_records)
        return total / norm if norm > 0 else 0.0

    # ------------------------------------------------------------------
    # linkage
    # ------------------------------------------------------------------
    def build_models(
        self, dataset: LocationDataset, windowing: Windowing
    ) -> Dict[str, EntityMobilityModel]:
        """Fit one mobility model per entity."""
        models = {}
        for entity in dataset.entities:
            timestamps, lats, lngs = dataset.columns(entity)
            models[entity] = EntityMobilityModel(
                entity, timestamps, lats, lngs, windowing, self.config
            )
        return models

    # ------------------------------------------------------------------
    # pipeline composition
    # ------------------------------------------------------------------
    def pipeline_config(self) -> LinkageConfig:
        """GM's stage choices: SLIM's greedy matcher + GMM stop threshold
        over the GM score matrix (as the paper's comparison runs it)."""
        return LinkageConfig(matching="greedy", threshold="gmm")

    def stages(self) -> List[object]:
        """The stage composition :meth:`link_report` runs."""
        config = self.pipeline_config()
        return [
            _GmPrepare(self),
            _GmCandidates(),
            _GmScoring(self),
            MatchingStage(config),
            ThresholdStage(config),
        ]

    def link_report(
        self, left: LocationDataset, right: LocationDataset
    ) -> LinkageReport:
        """Run GM through the shared stage pipeline (extras carry the
        full score matrix and the record-comparison count)."""
        pipeline = LinkagePipeline(self.pipeline_config(), stages=self.stages())
        return pipeline.run(left, right)

    def link(self, left: LocationDataset, right: LocationDataset) -> GmResult:
        """Score all pairs (GM has no blocking) and link with SLIM's
        matching and stop threshold."""
        report = self.link_report(left, right)
        return GmResult(
            links=report.links,
            scores=report.extras["scores"],
            threshold=report.threshold,
            record_comparisons=report.extras["record_comparisons"],
            runtime_seconds=report.runtime_seconds,
        )


class _GmPrepare:
    """Windowing + one fitted mobility model per entity on both sides."""

    name = STAGE_PREPARE

    def __init__(self, linker: "GmLinker") -> None:
        self.linker = linker

    def run(self, context: LinkageContext) -> None:
        left, right = context.left, context.right
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            self.linker.config.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        context.windowing = windowing
        context.total_windows = windowing.index_of(latest) + 1
        context.extras["left_models"] = self.linker.build_models(left, windowing)
        context.extras["right_models"] = self.linker.build_models(right, windowing)


class _GmCandidates:
    """Every cross pair — GM has no blocking mechanism (Sec. 5.5)."""

    name = STAGE_CANDIDATES

    def run(self, context: LinkageContext) -> None:
        rights = sorted(context.extras["right_models"])
        context.candidates = [
            (left, right)
            for left in sorted(context.extras["left_models"])
            for right in rights
        ]


class _GmScoring:
    """The GM record-pair kernel over every candidate pair."""

    name = STAGE_SCORING

    def __init__(self, linker: "GmLinker") -> None:
        self.linker = linker

    def run(self, context: LinkageContext) -> None:
        linker = self.linker
        linker.record_comparisons = 0
        left_models = context.extras["left_models"]
        right_models = context.extras["right_models"]
        scores: Dict[Tuple[str, str], float] = {}
        edges: List[Edge] = []
        for left_entity, right_entity in context.candidates:
            value = linker.score(
                left_models[left_entity], right_models[right_entity]
            )
            scores[(left_entity, right_entity)] = value
            if value > 0:
                edges.append(Edge(left_entity, right_entity, value))
        context.edges = edges
        context.stats = SimilarityStats(
            pairs_scored=len(context.candidates),
            bin_comparisons=linker.record_comparisons,
        )
        context.extras["scores"] = scores
        context.extras["record_comparisons"] = linker.record_comparisons

"""Replay a dataset pair through a :class:`~repro.serve.LinkageService`.

The load generator behind the ``slim-link serve`` front door, the serving
benchmark and the serving test-suite: a
:class:`~repro.data.sampling.LinkagePair`'s (or any two datasets') records
are cut into time-ordered rounds by
:func:`repro.scenarios.stream_rounds`, each round is submitted to the
service with an interleaved query load, and the per-round serving counters
are collected as :func:`repro.eval.reporting.serving_table` rows.

Replays flush after every round, so the relink schedule is deterministic
(one relink boundary per round) — which makes the final snapshot
comparable round-for-round against an offline
:class:`~repro.core.streaming.StreamingLinker` replay even when a
retention policy (whose evictions depend on the relink schedule) is
configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional, Sequence

from ..pipeline.config import LinkageConfig
from ..scenarios.base import ScenarioRound, stream_rounds
from .service import LinkageService
from .snapshot import LinkSnapshot

__all__ = ["ReplayResult", "replay_rounds", "replay_pair"]


@dataclass
class ReplayResult:
    """What one replayed event stream produced.

    ``snapshot`` is the final published :class:`LinkSnapshot`; ``samples``
    holds one serving-counter row per round (ready for
    :func:`repro.eval.reporting.serving_table`).
    """

    snapshot: LinkSnapshot
    samples: List[Dict[str, object]] = field(default_factory=list)


def replay_origin(rounds: Sequence[ScenarioRound]) -> float:
    """The windowing origin for a replay: the earliest record timestamp."""
    stamps = [
        record.timestamp
        for cell in rounds
        for side in (cell.left, cell.right)
        for record in side
    ]
    if not stamps:
        raise ValueError("cannot replay an empty event stream")
    return min(stamps)


async def replay_rounds(
    service: LinkageService,
    rounds: Sequence[ScenarioRound],
    queries_per_round: int = 0,
) -> ReplayResult:
    """Drive ``rounds`` through a *started* service, flushing per round.

    ``queries_per_round`` issues that many ``links_for`` queries against
    the entities seen so far after each round's flush (a deterministic
    cycle over the known left ids), so query-latency counters have data.
    """
    result = ReplayResult(snapshot=service.snapshot())
    seen_left: List[str] = []
    known: set = set()
    for cell in rounds:
        await service.submit("left", cell.left, source="left")
        await service.submit("right", cell.right, source="right")
        for record in cell.left:
            if record.entity_id not in known:
                known.add(record.entity_id)
                seen_left.append(record.entity_id)
        result.snapshot = await service.flush()
        for entity in islice(_cycle(seen_left), queries_per_round):
            await service.links_for(entity)
        result.samples.append(
            {"round": cell.round_index, **service.metrics()}
        )
    return result


def _cycle(items: List[str]):
    while items:
        yield from items


async def replay_pair(
    left,
    right,
    config: Optional[LinkageConfig] = None,
    rounds: int = 4,
    queries_per_round: int = 0,
    **service_kwargs,
) -> ReplayResult:
    """Replay two :class:`~repro.data.dataset.LocationDataset` sides
    through a fresh service (started and stopped around the replay)."""
    cells = stream_rounds(left, right, rounds)
    service = LinkageService(
        replay_origin(cells), config=config, **service_kwargs
    )
    async with service:
        return await replay_rounds(service, cells, queries_per_round)

"""`LinkageService`: the asyncio online serving loop over a streaming linker.

Architecture (one writer, many readers, bounded everything):

* **Ingestion** — :meth:`LinkageService.submit` (add records) and
  :meth:`LinkageService.retire` (delete entities) enqueue events on one
  bounded :class:`asyncio.Queue`.  A full queue engages the configured
  backpressure policy: ``"block"`` awaits capacity, ``"reject"`` raises
  :class:`BackpressureError` immediately (and counts the rejection).  An
  optional per-source in-flight cap bounds any single producer
  independently of the global queue depth.
* **Debounced relink scheduler** — a single pump coroutine drains the
  queue, coalescing deltas until either ``serve_batch`` records are
  pending or the oldest pending event is ``serve_staleness`` seconds old,
  then applies the whole batch to the
  :class:`~repro.core.streaming.StreamingLinker` and relinks.  The linker
  is single-writer by design, so the batch runs in a dedicated worker
  thread — off the event loop, which keeps ingesting — and the relink's
  sharded scoring fans out through the config's :mod:`repro.exec`
  backend (``executor`` / ``workers``) inside that thread.
* **Versioned reads** — every completed relink publishes an immutable
  :class:`~repro.serve.snapshot.LinkSnapshot` by swapping one reference;
  :meth:`links_for` / :meth:`match` / :meth:`stats` answer from the
  published snapshot and never block on the writer.  Every answer carries
  the snapshot version and event-time watermark.

Because a delta relink is bit-identical to a cold relink over the same
state (``idf_tolerance=0``), the final published snapshot equals an
offline :class:`~repro.core.streaming.StreamingLinker` replay of the same
events regardless of how the scheduler batched them — the parity anchor
``tests/serve/`` pins per executor backend.

>>> import asyncio
>>> from repro.data import Record
>>> async def demo():
...     service = LinkageService(origin=0.0)
...     async with service:
...         await service.submit("left", [Record("u", 37.77, -122.42, 100.0),
...                                       Record("w", 37.90, -122.40, 100.0)])
...         await service.submit("right", [Record("v", 37.77, -122.42, 130.0),
...                                        Record("x", 37.90, -122.40, 130.0)])
...         snapshot = await service.flush()
...         answer = await service.links_for("u")
...         return snapshot.version, answer.linked
>>> asyncio.run(demo())
(1, 'v')
"""

from __future__ import annotations

import asyncio
# repro-lint: timing-module -- staleness/latency metrics are this service's contract
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.streaming import StreamingLinker
from ..data.records import Record
from ..pipeline.config import SERVE_BACKPRESSURE_POLICIES, LinkageConfig
from ..pipeline.report import LinkageReport
from .snapshot import LinkAnswer, LinkSnapshot, MatchAnswer

__all__ = ["LinkageService", "BackpressureError", "SERVE_BACKPRESSURE_POLICIES"]

#: How many recent query latencies the service retains for percentiles.
_QUERY_LATENCY_WINDOW = 8192


class BackpressureError(RuntimeError):
    """An ingest was refused because a bound was hit under the
    ``"reject"`` policy — the global queue depth or a per-source cap.
    The caller owns the retry decision (back off, shed load, ...)."""


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile; NaN on empty input (renders as ``nan``)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class _Event:
    """One queued ingestion event (internal)."""

    kind: str  # "observe" | "retire" | "flush" | "stop"
    side: str = ""
    records: Tuple[Record, ...] = ()
    entity_ids: Tuple[str, ...] = ()
    source: Optional[str] = None
    future: Optional[asyncio.Future] = None

    @property
    def record_count(self) -> int:
        return len(self.records) + len(self.entity_ids)


@dataclass
class _Counters:
    """Mutable serving counters behind :meth:`LinkageService.metrics`."""

    events_in: int = 0
    records_in: int = 0
    records_retired: int = 0
    rejected: int = 0
    blocked: int = 0
    queue_peak: int = 0
    relinks: int = 0
    relink_failures: int = 0
    queries: int = 0
    relink_seconds: List[float] = field(default_factory=list)
    query_seconds: Deque[float] = field(
        default_factory=lambda: deque(maxlen=_QUERY_LATENCY_WINDOW)
    )


class LinkageService:
    """Online linkage: event ingestion, debounced relinks, snapshot reads.

    Parameters
    ----------
    origin:
        The windowing origin handed to the underlying
        :class:`~repro.core.streaming.StreamingLinker` — fix it at or
        before the stream's earliest timestamp.
    config:
        The :class:`~repro.pipeline.config.LinkageConfig` (its
        ``serve_*`` fields configure the queue and scheduler; its
        ``executor`` / ``workers`` drive the relink's scoring fan-out).
    queue_depth, batch_records, max_staleness, backpressure:
        Keyword overrides of the config's ``serve_queue_depth`` /
        ``serve_batch`` / ``serve_staleness`` / ``serve_backpressure``.
    max_pending_per_source:
        At most this many queued-but-unapplied events per ``source``
        label (0 = unbounded).  A producer at its cap blocks or rejects
        according to the backpressure policy while the global queue may
        still have room — one chatty source cannot starve the rest.
    linker:
        An existing linker to serve (defaults to a fresh one built from
        ``origin`` and ``config``).
    state_dir:
        Optional snapshot directory (see
        :meth:`~repro.core.streaming.StreamingLinker.save`).  On
        construction the service restores the linker from the newest
        snapshot there (cold start if none is readable — corrupt
        snapshots warn by name); after every published relink it
        checkpoints the linker back, so a killed service resumes from
        its last published state.  Ignored when an explicit ``linker``
        is passed.

    The service must be started before use — ``async with service:`` or
    an explicit :meth:`start` / :meth:`stop` pair.  :meth:`stop` drains
    the queue and folds every accepted event into a final relink, so no
    accepted event is ever dropped.
    """

    def __init__(
        self,
        origin: float,
        config: Optional[LinkageConfig] = None,
        *,
        queue_depth: Optional[int] = None,
        batch_records: Optional[int] = None,
        max_staleness: Optional[float] = None,
        backpressure: Optional[str] = None,
        max_pending_per_source: int = 0,
        linker: Optional[StreamingLinker] = None,
        state_dir: Optional[object] = None,
    ) -> None:
        self.config = config if config is not None else LinkageConfig()
        self.queue_depth = (
            self.config.serve_queue_depth if queue_depth is None else queue_depth
        )
        self.batch_records = (
            self.config.serve_batch if batch_records is None else batch_records
        )
        self.max_staleness = (
            self.config.serve_staleness if max_staleness is None else max_staleness
        )
        self.backpressure = (
            self.config.serve_backpressure if backpressure is None else backpressure
        )
        if self.backpressure not in SERVE_BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown serve_backpressure {self.backpressure!r}; "
                f"valid policies: {list(SERVE_BACKPRESSURE_POLICIES)}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"serve_queue_depth must be a positive integer, "
                f"got {self.queue_depth!r}"
            )
        if self.batch_records < 1:
            raise ValueError(
                f"serve_batch must be a positive integer, "
                f"got {self.batch_records!r}"
            )
        if not self.max_staleness > 0:
            raise ValueError(
                f"serve_staleness must be a positive number of seconds, "
                f"got {self.max_staleness!r}"
            )
        if max_pending_per_source < 0:
            raise ValueError(
                "max_pending_per_source must be >= 0 (0 = unbounded), "
                f"got {max_pending_per_source!r}"
            )
        self.max_pending_per_source = max_pending_per_source
        self._state_dir = None if state_dir is None else Path(state_dir)
        restored: Optional[StreamingLinker] = None
        if linker is None and self._state_dir is not None:
            restored = StreamingLinker.restore(self._state_dir)
            linker = restored
        self.linker = (
            linker if linker is not None else StreamingLinker(origin, self.config)
        )
        self.counters = _Counters()
        self.last_error: Optional[BaseException] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending_by_source: Dict[str, int] = {}
        self._source_waiters: Optional[asyncio.Condition] = None
        # Event time accepted so far; a restored linker already holds
        # events up to its snapshot watermark.
        self._watermark = (
            restored.watermark if restored is not None else float("-inf")
        )
        self._started_at: Optional[float] = None
        self._snapshot = LinkSnapshot(
            version=0, watermark=float("-inf"), published_at=time.time()
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the pump; idempotent start is an error (stop first)."""
        if self._pump_task is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._source_waiters = asyncio.Condition()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="slim-link-serve"
        )
        self._started_at = time.monotonic()
        self._pump_task = asyncio.create_task(self._pump())

    async def stop(self) -> None:
        """Drain the queue, fold pending events into a final relink, stop."""
        if self._pump_task is None:
            return
        assert self._queue is not None
        await self._queue.put(_Event("stop"))
        try:
            await self._pump_task
        finally:
            self._pump_task = None
            self._queue = None
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    async def __aenter__(self) -> "LinkageService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._pump_task is not None

    # ------------------------------------------------------------------
    # ingestion front end
    # ------------------------------------------------------------------
    async def submit(
        self,
        side: str,
        records: Iterable[Record],
        source: Optional[str] = None,
    ) -> int:
        """Enqueue an add-records event; returns the record count.

        Under ``"reject"`` backpressure a full queue (or a source at its
        cap) raises :class:`BackpressureError` without enqueueing
        anything; under ``"block"`` the call awaits capacity.
        """
        batch = tuple(records)
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        if not batch:
            return 0
        await self._enqueue(
            _Event("observe", side=side, records=batch, source=source)
        )
        self.counters.records_in += len(batch)
        self._watermark = max(
            self._watermark, max(record.timestamp for record in batch)
        )
        return len(batch)

    async def retire(
        self,
        side: str,
        entity_ids: Iterable[str],
        source: Optional[str] = None,
    ) -> int:
        """Enqueue a retire-entities event; returns the entity count."""
        ids = tuple(str(entity_id) for entity_id in entity_ids)
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        if not ids:
            return 0
        await self._enqueue(
            _Event("retire", side=side, entity_ids=ids, source=source)
        )
        self.counters.records_retired += len(ids)
        return len(ids)

    async def flush(self) -> LinkSnapshot:
        """Force a relink over everything accepted so far and await the
        resulting published snapshot (the current one when nothing was
        pending)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        await self._enqueue(_Event("flush", future=future), force=True)
        return await future

    async def _enqueue(self, event: _Event, force: bool = False) -> None:
        if self._queue is None:
            raise RuntimeError("service is not running (call start())")
        await self._acquire_source_slot(event)
        try:
            if force or self.backpressure == "block":
                if self._queue.full():
                    self.counters.blocked += 1
                await self._queue.put(event)
            else:
                try:
                    self._queue.put_nowait(event)
                except asyncio.QueueFull:
                    self.counters.rejected += 1
                    raise BackpressureError(
                        f"ingest queue full ({self.queue_depth} events) and "
                        "serve_backpressure='reject'"
                    ) from None
        except BaseException:
            self._release_source_slot(event)
            raise
        if event.kind in ("observe", "retire"):
            self.counters.events_in += 1
        self.counters.queue_peak = max(
            self.counters.queue_peak, self._queue.qsize()
        )

    async def _acquire_source_slot(self, event: _Event) -> None:
        if not self.max_pending_per_source or event.source is None:
            return
        assert self._source_waiters is not None
        pending = self._pending_by_source
        if self.backpressure == "reject":
            if pending.get(event.source, 0) >= self.max_pending_per_source:
                self.counters.rejected += 1
                raise BackpressureError(
                    f"source {event.source!r} has "
                    f"{self.max_pending_per_source} events in flight and "
                    "serve_backpressure='reject'"
                )
        else:
            async with self._source_waiters:
                while (
                    pending.get(event.source, 0) >= self.max_pending_per_source
                ):
                    self.counters.blocked += 1
                    await self._source_waiters.wait()
        pending[event.source] = pending.get(event.source, 0) + 1

    def _release_source_slot(self, event: _Event) -> None:
        if not self.max_pending_per_source or event.source is None:
            return
        pending = self._pending_by_source
        left = pending.get(event.source, 0) - 1
        if left <= 0:
            pending.pop(event.source, None)
        else:
            pending[event.source] = left

    async def _notify_source_waiters(self) -> None:
        if self._source_waiters is not None:
            async with self._source_waiters:
                self._source_waiters.notify_all()

    # ------------------------------------------------------------------
    # debounced relink scheduler
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        """Single writer: coalesce events, apply batches, publish."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        pending: List[_Event] = []
        pending_records = 0
        deadline: Optional[float] = None
        flush_futures: List[asyncio.Future] = []
        stopping = False
        while True:
            event: Optional[_Event] = None
            if not stopping:
                timeout = (
                    None if deadline is None else max(0.0, deadline - loop.time())
                )
                try:
                    if timeout is None:
                        event = await self._queue.get()
                    else:
                        event = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                except (asyncio.TimeoutError, TimeoutError):
                    event = None
            # Coalesce: drain whatever else is already queued.
            events = [] if event is None else [event]
            while True:
                try:
                    events.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            force_relink = False
            for item in events:
                self._release_source_slot(item)
                if item.kind == "stop":
                    stopping = True
                elif item.kind == "flush":
                    flush_futures.append(item.future)
                    force_relink = True
                else:
                    pending.append(item)
                    pending_records += item.record_count
                    if deadline is None:
                        deadline = loop.time() + self.max_staleness
            if events:
                await self._notify_source_waiters()
            timed_out = deadline is not None and loop.time() >= deadline
            due = (
                force_relink
                or stopping
                or pending_records >= self.batch_records
                or (pending and timed_out)
            )
            if due and (pending or flush_futures):
                await self._apply(pending, flush_futures)
                pending = []
                pending_records = 0
                deadline = None
                flush_futures = []
            if stopping and self._queue.empty():
                return

    async def _apply(
        self, batch: List[_Event], flush_futures: List[asyncio.Future]
    ) -> None:
        """Apply one coalesced batch in the worker thread and publish."""
        assert self._pool is not None
        loop = asyncio.get_running_loop()
        try:
            report, relink_seconds = await loop.run_in_executor(
                self._pool, self._apply_batch, list(batch)
            )
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            # The linker rolled itself back (PR 6 transaction): the batch
            # stays folded in and rides along with the next relink, the
            # previous snapshot keeps serving.  Flush callers get the
            # error; background batches surface it via ``last_error`` and
            # the ``relink_failures`` counter — the pump itself survives.
            self.counters.relink_failures += 1
            self.last_error = error
            for future in flush_futures:
                if not future.done():
                    future.set_exception(error)
            return
        if report is not None:
            self._publish(report, relink_seconds)
            if self._state_dir is not None:
                # Same single worker thread as the batch apply, so the
                # checkpoint serializes with the next batch and reads a
                # quiescent linker; the event loop keeps ingesting.
                await loop.run_in_executor(
                    self._pool, self.linker.save, self._state_dir
                )
        for future in flush_futures:
            if not future.done():
                future.set_result(self._snapshot)

    def _apply_batch(
        self, batch: List[_Event]
    ) -> Tuple[Optional[LinkageReport], float]:
        """Worker-thread body: observe/retire the batch, then relink.

        The linker is only ever touched here (the pump awaits this call
        before dispatching the next batch), so the single-writer contract
        holds without locks.  A relink that raises rolls the linker back
        to its pre-relink state (PR 6 transaction) — the observed events
        stay folded in and ride along with the next attempt.
        """
        for event in batch:
            if event.kind == "observe":
                self.linker.observe(event.side, list(event.records))
            elif event.kind == "retire":
                self.linker.retire(event.side, event.entity_ids)
        if not self.linker.num_left_entities or not self.linker.num_right_entities:
            # One-sided state cannot relink yet; the events are folded in
            # and the current snapshot keeps serving.
            return None, 0.0
        clock = time.perf_counter()
        report = self.linker.relink()
        return report, time.perf_counter() - clock

    def _publish(self, report: LinkageReport, relink_seconds: float) -> None:
        snapshot = LinkSnapshot(
            version=self._snapshot.version + 1,
            watermark=self._watermark,
            published_at=time.time(),
            links=report.links,
            link_scores=report.link_scores,
            threshold=report.threshold.threshold,
            threshold_method=report.threshold.method,
            relink=report.extras.get("relink"),
            relink_seconds=relink_seconds,
            records_ingested=self.counters.records_in,
        )
        self.counters.relinks += 1
        self.counters.relink_seconds.append(relink_seconds)
        self._snapshot = snapshot  # atomic reference swap: the publish

    # ------------------------------------------------------------------
    # versioned reads (never block on the writer)
    # ------------------------------------------------------------------
    def snapshot(self) -> LinkSnapshot:
        """The currently published snapshot (synchronous, non-blocking)."""
        return self._snapshot

    async def links_for(self, entity: str, side: str = "left") -> LinkAnswer:
        """The entity's link in the published snapshot."""
        clock = time.perf_counter()
        answer = self._snapshot.links_for(entity, side)
        self._record_query(time.perf_counter() - clock)
        return answer

    async def match(self, left: str, right: str) -> MatchAnswer:
        """Whether ``(left, right)`` is a link in the published snapshot."""
        clock = time.perf_counter()
        answer = self._snapshot.match(left, right)
        self._record_query(time.perf_counter() - clock)
        return answer

    async def stats(self) -> Dict[str, object]:
        """Snapshot-level statistics (version, watermark, link count, stop
        threshold, the producing relink's reuse diagnostics)."""
        clock = time.perf_counter()
        snapshot = self._snapshot
        answer: Dict[str, object] = {
            "version": snapshot.version,
            "watermark": snapshot.watermark,
            "links": len(snapshot.links),
            "threshold": snapshot.threshold,
            "threshold_method": snapshot.threshold_method,
            "records_ingested": snapshot.records_ingested,
            "relink": snapshot.relink,
            "relink_seconds": snapshot.relink_seconds,
        }
        self._record_query(time.perf_counter() - clock)
        return answer

    def _record_query(self, seconds: float) -> None:
        self.counters.queries += 1
        self.counters.query_seconds.append(seconds)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """One flat serving-counter sample — a
        :func:`repro.eval.reporting.serving_table` row."""
        counters = self.counters
        snapshot = self._snapshot
        now = time.monotonic()
        elapsed = (
            now - self._started_at
            if self._started_at is not None
            else float("nan")
        )
        query_ms = [s * 1e3 for s in counters.query_seconds]
        staleness = (
            self._watermark - snapshot.watermark
            if snapshot.watermark != float("-inf")
            and self._watermark != float("-inf")
            else float("nan")
        )
        return {
            "events_in": counters.events_in,
            "records_in": counters.records_in,
            "records_retired": counters.records_retired,
            "rejected": counters.rejected,
            "blocked": counters.blocked,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_peak": counters.queue_peak,
            "relinks": counters.relinks,
            "relink_failures": counters.relink_failures,
            "relink_p50_s": _percentile(counters.relink_seconds, 0.50),
            "relink_p99_s": _percentile(counters.relink_seconds, 0.99),
            "snapshot_version": snapshot.version,
            "snapshot_age_s": snapshot.age(),
            "staleness_s": staleness,
            "ingest_rate": (
                counters.records_in / elapsed if elapsed and elapsed > 0
                else float("nan")
            ),
            "queries": counters.queries,
            "query_p50_ms": _percentile(query_ms, 0.50),
            "query_p99_ms": _percentile(query_ms, 0.99),
        }

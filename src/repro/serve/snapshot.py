"""Immutable, versioned read snapshots of an online linkage.

The serving layer never lets a query touch the live
:class:`~repro.core.streaming.StreamingLinker`: every relink publishes a
fresh :class:`LinkSnapshot` — the final links, their scores, the stop
threshold and the relink's reuse diagnostics, stamped with a monotonically
increasing ``version`` and an event-time ``watermark`` — and queries read
whichever snapshot is currently published.  Readers therefore never block
writers (publishing is one reference swap), and every answer carries the
version and watermark of the state it was computed from, so a caller can
reason about staleness explicitly (the dynamic-query-under-updates model:
maintain incrementally, answer from materialized state with bounded
staleness).

Snapshots are deeply immutable: the mappings are
:class:`types.MappingProxyType` views over private copies, and the
dataclass itself is frozen.
"""

from __future__ import annotations

# repro-lint: timing-module -- snapshot age() reports wall-clock staleness by design
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, NamedTuple, Optional, Tuple

from ..core.streaming import RelinkStats

__all__ = ["LinkSnapshot", "LinkAnswer", "MatchAnswer"]


class LinkAnswer(NamedTuple):
    """Answer to :meth:`LinkSnapshot.links_for`.

    ``linked`` is the partner entity (``None`` when the queried entity is
    unlinked in this snapshot), ``score`` its Eq. 2 similarity.  Every
    answer names the snapshot ``version`` and event-time ``watermark`` it
    was served from.
    """

    entity: str
    side: str
    linked: Optional[str]
    score: Optional[float]
    version: int
    watermark: float


class MatchAnswer(NamedTuple):
    """Answer to :meth:`LinkSnapshot.match`: is ``(left, right)`` a link
    in this snapshot, and at what score (``None`` when the pair is not
    linked)."""

    left: str
    right: str
    linked: bool
    score: Optional[float]
    version: int
    watermark: float


@dataclass(frozen=True)
class LinkSnapshot:
    """One published state of the online linkage.

    Attributes
    ----------
    version:
        Monotonically increasing publish ordinal; the service's initial
        empty snapshot is version 0, every completed relink bumps it.
    watermark:
        Event-time high-water mark: the largest record timestamp folded
        into this snapshot.  A reader comparing it against the stream's
        current event time gets the snapshot's event-time staleness.
    published_at:
        Wall-clock publish instant (``time.time()``); :meth:`age` measures
        against it.
    links:
        The linkage ``{left entity: right entity}`` at or above the stop
        threshold (read-only view).
    link_scores:
        ``{(left, right): score}`` for every link (read-only view).
    threshold:
        The stop threshold the links cleared.
    threshold_method:
        The threshold method that produced it (``"gmm"``, ...).
    relink:
        The producing relink's :class:`~repro.core.streaming.RelinkStats`
        (``None`` only on the initial empty snapshot).
    relink_seconds:
        Wall-clock seconds the producing relink took (0.0 initially).
    records_ingested:
        Cumulative records the linker had folded in when this snapshot
        was published.
    """

    version: int
    watermark: float
    published_at: float
    links: Mapping[str, str] = field(default_factory=dict)
    link_scores: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    threshold: float = float("nan")
    threshold_method: str = "none"
    relink: Optional[RelinkStats] = None
    relink_seconds: float = 0.0
    records_ingested: int = 0

    def __post_init__(self) -> None:
        # Freeze the mappings behind read-only proxies over private
        # copies, so no caller can mutate a published snapshot — not even
        # the one who built it.
        object.__setattr__(self, "links", MappingProxyType(dict(self.links)))
        object.__setattr__(
            self, "link_scores", MappingProxyType(dict(self.link_scores))
        )
        reverse = {right: left for left, right in self.links.items()}
        object.__setattr__(self, "_reverse", MappingProxyType(reverse))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def links_for(self, entity: str, side: str = "left") -> LinkAnswer:
        """The entity's link partner in this snapshot (either side)."""
        if side not in ("left", "right"):
            raise ValueError(f"side must be left or right, got {side!r}")
        if side == "left":
            linked = self.links.get(entity)
            pair = (entity, linked)
        else:
            linked = self._reverse.get(entity)
            pair = (linked, entity)
        score = self.link_scores.get(pair) if linked is not None else None
        return LinkAnswer(
            entity=entity,
            side=side,
            linked=linked,
            score=score,
            version=self.version,
            watermark=self.watermark,
        )

    def match(self, left: str, right: str) -> MatchAnswer:
        """Whether ``(left, right)`` is a link in this snapshot."""
        linked = self.links.get(left) == right
        return MatchAnswer(
            left=left,
            right=right,
            linked=linked,
            score=self.link_scores.get((left, right)) if linked else None,
            version=self.version,
            watermark=self.watermark,
        )

    def age(self, now: Optional[float] = None) -> float:
        """Wall-clock seconds since this snapshot was published."""
        return max(0.0, (time.time() if now is None else now) - self.published_at)

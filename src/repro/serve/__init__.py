"""Linkage-as-a-service: the asyncio online serving layer.

The batch pipeline and the streaming linker answer "link these two
datasets"; this package answers "keep them linked while records keep
arriving, and answer queries *now*".  Three pieces:

* :class:`LinkageService` — event ingestion (add / retire) on a bounded
  queue with explicit backpressure (``block`` or ``reject``, per-source
  caps), a debounced relink scheduler (batch-size + max-staleness
  triggers) that runs :meth:`~repro.core.streaming.StreamingLinker.relink`
  off the event loop, and snapshot-serving queries.
* :class:`LinkSnapshot` — the immutable, versioned, watermarked read
  state every query answers from; publishing is one reference swap, so
  readers never block writers.
* :func:`replay_pair` / :func:`replay_rounds` — replay a dataset pair as
  a time-ordered event stream through a service (the ``slim-link serve``
  front door and the serving benchmark's load generator).

The correctness anchor (pinned in ``tests/serve/`` per executor backend):
the links in the final published snapshot are bit-identical to an offline
:class:`~repro.core.streaming.StreamingLinker` replay of the same events,
because a delta relink equals a cold relink over the same state.
"""

from .replay import ReplayResult, replay_pair, replay_rounds
from .service import SERVE_BACKPRESSURE_POLICIES, BackpressureError, LinkageService
from .snapshot import LinkAnswer, LinkSnapshot, MatchAnswer

__all__ = [
    "LinkageService",
    "LinkSnapshot",
    "LinkAnswer",
    "MatchAnswer",
    "BackpressureError",
    "ReplayResult",
    "replay_pair",
    "replay_rounds",
    "SERVE_BACKPRESSURE_POLICIES",
]

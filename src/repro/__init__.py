"""SLIM: Scalable Linkage of Mobility Data — a full reproduction.

Reproduces Basık, Ferhatosmanoğlu & Gedik, *SLIM: Scalable Linkage of
Mobility Data*, SIGMOD 2020 (DOI 10.1145/3318464.3389761): linking entities
across mobility datasets from spatio-temporal information alone.

Quickstart::

    from repro import LinkageConfig, LinkagePipeline
    from repro.data.synth import default_cab_world
    from repro.data import sample_linkage_pair

    world = default_cab_world(num_taxis=40, duration_days=1.0).generate()
    pair = sample_linkage_pair(world, intersection_ratio=0.5,
                               inclusion_probability=0.5, rng=7)
    report = LinkagePipeline(LinkageConfig()).run(pair.left, pair.right)
    print(len(report.links), "links at threshold", report.threshold.threshold)

Package map — see DESIGN.md for the full inventory:

* :mod:`repro.geo` — S2-like hierarchical spatial grid;
* :mod:`repro.temporal` — windowing + hierarchical count trees;
* :mod:`repro.data` — record model, loaders, sampling protocol, synthetic
  worlds;
* :mod:`repro.core` — histories, similarity (Eq. 1-3), matching, stop
  threshold, auto-tuning, the streaming linker;
* :mod:`repro.pipeline` — the composable stage pipeline (Alg. 1): stage
  protocol, plugin registries, :class:`LinkageConfig`,
  :class:`LinkageReport`, the runner;
* :mod:`repro.lsh` — dominating-cell signatures and banded bucketing;
* :mod:`repro.baselines` — ST-Link, GM and POIS comparators (ported onto
  the same stage pipeline);
* :mod:`repro.eval` — metrics and the experiment harness.

``SlimLinker``/``SlimConfig`` remain as deprecated shims over the
pipeline package.
"""

from .core import (
    LinkageResult,
    SimilarityConfig,
    SlimConfig,
    SlimLinker,
)
from .lsh import LshConfig
from .pipeline import (
    LinkageConfig,
    LinkagePipeline,
    LinkageReport,
)

__version__ = "1.1.0"

__all__ = [
    "LinkagePipeline",
    "LinkageConfig",
    "LinkageReport",
    "SlimLinker",
    "SlimConfig",
    "SimilarityConfig",
    "LshConfig",
    "LinkageResult",
    "__version__",
]

"""SLIM: Scalable Linkage of Mobility Data — a full reproduction.

Reproduces Basık, Ferhatosmanoğlu & Gedik, *SLIM: Scalable Linkage of
Mobility Data*, SIGMOD 2020 (DOI 10.1145/3318464.3389761): linking entities
across mobility datasets from spatio-temporal information alone.

Quickstart::

    from repro import SlimLinker, SlimConfig
    from repro.data.synth import default_cab_world
    from repro.data import sample_linkage_pair

    world = default_cab_world(num_taxis=40, duration_days=1.0).generate()
    pair = sample_linkage_pair(world, intersection_ratio=0.5,
                               inclusion_probability=0.5, rng=7)
    result = SlimLinker().link(pair.left, pair.right)
    print(len(result.links), "links at threshold", result.threshold.threshold)

Package map — see DESIGN.md for the full inventory:

* :mod:`repro.geo` — S2-like hierarchical spatial grid;
* :mod:`repro.temporal` — windowing + hierarchical count trees;
* :mod:`repro.data` — record model, loaders, sampling protocol, synthetic
  worlds;
* :mod:`repro.core` — histories, similarity (Eq. 1-3), matching, stop
  threshold, auto-tuning, the SLIM pipeline (Alg. 1);
* :mod:`repro.lsh` — dominating-cell signatures and banded bucketing;
* :mod:`repro.baselines` — ST-Link and GM comparators;
* :mod:`repro.eval` — metrics and the experiment harness.
"""

from .core import (
    LinkageResult,
    SimilarityConfig,
    SlimConfig,
    SlimLinker,
)
from .lsh import LshConfig

__version__ = "1.0.0"

__all__ = [
    "SlimLinker",
    "SlimConfig",
    "SimilarityConfig",
    "LshConfig",
    "LinkageResult",
    "__version__",
]

"""Spherical point arithmetic.

The paper measures all spatial quantities as great-circle distances on the
Earth's surface (e.g. the *runaway distance* ``R`` in Eq. 1).  This module
provides the small amount of spherical geometry SLIM needs: a ``LatLng``
point type, conversion to/from unit 3-vectors, and haversine distances.

All angles are stored in radians internally; constructors and accessors are
explicit about units.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

#: Mean Earth radius in metres (the value used by the S2 library).
EARTH_RADIUS_METERS = 6_371_010.0

_DEG_TO_RAD = math.pi / 180.0
_RAD_TO_DEG = 180.0 / math.pi


class LatLng:
    """A point on the unit sphere, stored as latitude/longitude in radians.

    Instances are immutable and hashable.  Use :meth:`from_degrees` for the
    common case; the bare constructor takes radians.

    >>> sf = LatLng.from_degrees(37.7749, -122.4194)
    >>> round(sf.lat_degrees, 4)
    37.7749
    """

    __slots__ = ("_lat", "_lng")

    def __init__(self, lat_radians: float, lng_radians: float) -> None:
        self._lat = float(lat_radians)
        self._lng = float(lng_radians)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_degrees(cls, lat: float, lng: float) -> "LatLng":
        """Build a point from latitude/longitude in degrees."""
        return cls(lat * _DEG_TO_RAD, lng * _DEG_TO_RAD)

    @classmethod
    def from_radians(cls, lat: float, lng: float) -> "LatLng":
        """Build a point from latitude/longitude in radians."""
        return cls(lat, lng)

    @classmethod
    def from_xyz(cls, x: float, y: float, z: float) -> "LatLng":
        """Build a point from a (not necessarily unit) 3-vector."""
        lat = math.atan2(z, math.hypot(x, y))
        lng = math.atan2(y, x)
        return cls(lat, lng)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def lat_radians(self) -> float:
        """Latitude in radians."""
        return self._lat

    @property
    def lng_radians(self) -> float:
        """Longitude in radians."""
        return self._lng

    @property
    def lat_degrees(self) -> float:
        """Latitude in degrees."""
        return self._lat * _RAD_TO_DEG

    @property
    def lng_degrees(self) -> float:
        """Longitude in degrees."""
        return self._lng * _RAD_TO_DEG

    def is_valid(self) -> bool:
        """True when latitude is in [-90, 90] and longitude in [-180, 180]."""
        return (
            abs(self._lat) <= math.pi / 2 + 1e-12
            and abs(self._lng) <= math.pi + 1e-12
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def to_xyz(self) -> Tuple[float, float, float]:
        """Return the unit 3-vector for this point."""
        cos_lat = math.cos(self._lat)
        return (
            cos_lat * math.cos(self._lng),
            cos_lat * math.sin(self._lng),
            math.sin(self._lat),
        )

    def angle_to(self, other: "LatLng") -> float:
        """Central angle to ``other`` in radians (haversine formula).

        The haversine formulation is numerically stable for both very small
        and near-antipodal separations, which matters because SLIM compares
        cells that are frequently metres apart.
        """
        dlat = other._lat - self._lat
        dlng = other._lng - self._lng
        sin_dlat = math.sin(dlat / 2.0)
        sin_dlng = math.sin(dlng / 2.0)
        h = (
            sin_dlat * sin_dlat
            + math.cos(self._lat) * math.cos(other._lat) * sin_dlng * sin_dlng
        )
        return 2.0 * math.asin(min(1.0, math.sqrt(h)))

    def distance_meters(self, other: "LatLng") -> float:
        """Great-circle distance to ``other`` in metres."""
        return self.angle_to(other) * EARTH_RADIUS_METERS

    def destination(self, bearing_radians: float, distance_meters: float) -> "LatLng":
        """Return the point reached by travelling along a great circle.

        ``bearing_radians`` is measured clockwise from true north.  Used by
        the synthetic trace generators to move entities at bounded speed,
        which is what makes alibi bins physically meaningful.
        """
        delta = distance_meters / EARTH_RADIUS_METERS
        sin_lat = (
            math.sin(self._lat) * math.cos(delta)
            + math.cos(self._lat) * math.sin(delta) * math.cos(bearing_radians)
        )
        lat2 = math.asin(max(-1.0, min(1.0, sin_lat)))
        y = math.sin(bearing_radians) * math.sin(delta) * math.cos(self._lat)
        x = math.cos(delta) - math.sin(self._lat) * math.sin(lat2)
        lng2 = self._lng + math.atan2(y, x)
        # normalise longitude to [-pi, pi]
        lng2 = (lng2 + math.pi) % (2.0 * math.pi) - math.pi
        return LatLng(lat2, lng2)

    def interpolate(self, other: "LatLng", fraction: float) -> "LatLng":
        """Spherical linear interpolation between two points.

        ``fraction`` = 0 returns ``self``; 1 returns ``other``.
        """
        angle = self.angle_to(other)
        if angle < 1e-12:
            return self
        sin_angle = math.sin(angle)
        a = math.sin((1.0 - fraction) * angle) / sin_angle
        b = math.sin(fraction * angle) / sin_angle
        x1, y1, z1 = self.to_xyz()
        x2, y2, z2 = other.to_xyz()
        return LatLng.from_xyz(a * x1 + b * x2, a * y1 + b * y2, a * z1 + b * z2)

    def approx_equals(self, other: "LatLng", tolerance_radians: float = 1e-9) -> bool:
        """True when both coordinates are within ``tolerance_radians``."""
        return (
            abs(self._lat - other._lat) <= tolerance_radians
            and abs(self._lng - other._lng) <= tolerance_radians
        )

    # ------------------------------------------------------------------
    # dunder methods
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self._lat
        yield self._lng

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatLng):
            return NotImplemented
        return self._lat == other._lat and self._lng == other._lng

    def __hash__(self) -> int:
        return hash((self._lat, self._lng))

    def __repr__(self) -> str:
        return f"LatLng({self.lat_degrees:.6f}, {self.lng_degrees:.6f})"

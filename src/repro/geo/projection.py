"""Cube-face projection for the hierarchical spatial grid.

The paper partitions space with Google's S2 library (Sec. 2.3).  S2 projects
the sphere onto the six faces of a circumscribed cube and then subdivides
each face as a 30-level quadtree.  This module implements that projection:

* ``xyz -> (face, u, v)``: pick the face whose axis has the largest absolute
  component, then project onto the face plane (``u``, ``v`` in ``[-1, 1]``).
* ``(u, v) <-> (s, t)``: S2's *quadratic* reprojection, which equalises cell
  areas across a face far better than a linear mapping.
* ``(s, t) <-> (i, j)``: discretisation into ``2**MAX_LEVEL`` leaf steps.

The functions are deliberately tiny and branch-light: :mod:`repro.geo.cell`
calls them once per record during history construction, and
:mod:`repro.geo.batch` re-implements the same math in vectorised numpy for
bulk conversion.
"""

from __future__ import annotations

import math
from typing import Tuple

#: Depth of the cell hierarchy.  Matches S2: leaf cells at level 30 cover
#: roughly 1 cm^2, the granularity quoted in the paper.
MAX_LEVEL = 30

#: Number of discrete (i, j) steps along one axis of a face.
IJ_SIZE = 1 << MAX_LEVEL


def st_to_uv(s: float) -> float:
    """Map ``s`` in [0, 1] to ``u`` in [-1, 1] (S2 quadratic projection)."""
    if s >= 0.5:
        return (1.0 / 3.0) * (4.0 * s * s - 1.0)
    return (1.0 / 3.0) * (1.0 - 4.0 * (1.0 - s) * (1.0 - s))


def uv_to_st(u: float) -> float:
    """Inverse of :func:`st_to_uv`."""
    if u >= 0.0:
        return 0.5 * math.sqrt(1.0 + 3.0 * u)
    return 1.0 - 0.5 * math.sqrt(1.0 - 3.0 * u)


def st_to_ij(s: float) -> int:
    """Discretise ``s`` in [0, 1] to an integer cell coordinate."""
    return max(0, min(IJ_SIZE - 1, int(math.floor(s * IJ_SIZE))))


def ij_to_st(i: int) -> float:
    """Centre ``s`` value of integer coordinate ``i`` (leaf granularity)."""
    return (i + 0.5) / IJ_SIZE


def xyz_to_face_uv(x: float, y: float, z: float) -> Tuple[int, float, float]:
    """Project a 3-vector to ``(face, u, v)``.

    Faces follow the S2 convention: 0=+x, 1=+y, 2=+z, 3=-x, 4=-y, 5=-z.
    """
    ax, ay, az = abs(x), abs(y), abs(z)
    if ax >= ay and ax >= az:
        face = 0 if x > 0 else 3
    elif ay >= az:
        face = 1 if y > 0 else 4
    else:
        face = 2 if z > 0 else 5
    if face == 0:
        return face, y / x, z / x
    if face == 1:
        return face, -x / y, z / y
    if face == 2:
        return face, -x / z, -y / z
    if face == 3:
        return face, z / x, y / x
    if face == 4:
        return face, z / y, -x / y
    return face, -y / z, -x / z


def face_uv_to_xyz(face: int, u: float, v: float) -> Tuple[float, float, float]:
    """Inverse of :func:`xyz_to_face_uv` (the result is not normalised)."""
    if face == 0:
        return 1.0, u, v
    if face == 1:
        return -u, 1.0, v
    if face == 2:
        return -u, -v, 1.0
    if face == 3:
        return -1.0, -v, -u
    if face == 4:
        return v, -1.0, -u
    if face == 5:
        return v, u, -1.0
    raise ValueError(f"face must be in 0..5, got {face}")

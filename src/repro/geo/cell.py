"""Hierarchical spatial grid cells (S2-like, Morton-ordered).

SLIM bins record locations into grid cells drawn from a 31-level hierarchy
(level 0 = a whole cube face, level 30 = ~1 cm^2 leaves), mirroring the S2
library the paper uses.  A cell is a 64-bit integer:

``[3 bits face | 2 bits per level of Morton position | 1 sentinel bit | 0s]``

The sentinel (lowest set bit) encodes the level, so parent/child navigation
and containment tests are pure bit arithmetic — the property the mobility
history and LSH layers rely on to re-bin records at coarser spatial detail
without touching raw coordinates.

Divergence from Google S2 (documented in DESIGN.md): children are ordered by
Morton (Z-order) rather than a Hilbert curve.  SLIM never depends on sibling
ordering — only on containment, centres and distances — so linkage behaviour
is unaffected, but tokens are not interchangeable with S2 tokens.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from .point import EARTH_RADIUS_METERS, LatLng
from .projection import (
    IJ_SIZE,
    MAX_LEVEL,
    face_uv_to_xyz,
    st_to_ij,
    st_to_uv,
    uv_to_st,
    xyz_to_face_uv,
)

__all__ = ["CellId", "MAX_LEVEL", "cell_union_normalize", "parent_id", "id_level"]

# ----------------------------------------------------------------------
# Morton interleave tables: spread 8 bits of a coordinate across 16 bits.
# ----------------------------------------------------------------------
_SPREAD: List[int] = []
for _byte in range(256):
    _spread = 0
    for _bit in range(8):
        if _byte & (1 << _bit):
            _spread |= 1 << (2 * _bit)
    _SPREAD.append(_spread)

# Reverse table: compact the even bits of a 16-bit word into 8 bits.
_COMPACT: List[int] = [0] * 65536
for _word in range(65536):
    _compact = 0
    for _bit in range(8):
        if _word & (1 << (2 * _bit)):
            _compact |= 1 << _bit
    _COMPACT[_word] = _compact


def _interleave(i: int, j: int) -> int:
    """Interleave two 30-bit coordinates: bit k of ``j`` goes to bit 2k,
    bit k of ``i`` to bit 2k+1."""
    return (
        (_SPREAD[i & 0xFF] << 1 | _SPREAD[j & 0xFF])
        | (_SPREAD[(i >> 8) & 0xFF] << 1 | _SPREAD[(j >> 8) & 0xFF]) << 16
        | (_SPREAD[(i >> 16) & 0xFF] << 1 | _SPREAD[(j >> 16) & 0xFF]) << 32
        | (_SPREAD[(i >> 24) & 0xFF] << 1 | _SPREAD[(j >> 24) & 0xFF]) << 48
    )


def _deinterleave(morton: int) -> Tuple[int, int]:
    """Inverse of :func:`_interleave`: returns ``(i, j)``."""
    j = (
        _COMPACT[morton & 0xFFFF]
        | _COMPACT[(morton >> 16) & 0xFFFF] << 8
        | _COMPACT[(morton >> 32) & 0xFFFF] << 16
        | _COMPACT[(morton >> 48) & 0xFFFF] << 24
    )
    mi = morton >> 1
    i = (
        _COMPACT[mi & 0xFFFF]
        | _COMPACT[(mi >> 16) & 0xFFFF] << 8
        | _COMPACT[(mi >> 32) & 0xFFFF] << 16
        | _COMPACT[(mi >> 48) & 0xFFFF] << 24
    )
    return i, j


# Caches shared by all CellId instances.  Experiments touch at most a few
# hundred thousand distinct cells, so unbounded dicts are fine and much
# faster than functools.lru_cache for this access pattern.
_CENTER_CACHE: dict = {}
_RADIUS_CACHE: dict = {}


class CellId:
    """An immutable cell in the hierarchical spatial grid.

    >>> cell = CellId.from_lat_lng(LatLng.from_degrees(37.77, -122.42), level=12)
    >>> cell.level()
    12
    >>> cell.parent(10).contains(cell)
    True
    """

    __slots__ = ("_id",)

    def __init__(self, cell_id: int) -> None:
        self._id = int(cell_id)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_face_ij(cls, face: int, i: int, j: int, level: int = MAX_LEVEL) -> "CellId":
        """Build a cell from face and leaf-granularity (i, j) coordinates."""
        if not 0 <= face <= 5:
            raise ValueError(f"face must be in 0..5, got {face}")
        if not 0 <= level <= MAX_LEVEL:
            raise ValueError(f"level must be in 0..{MAX_LEVEL}, got {level}")
        morton = _interleave(i, j)
        leaf = (face << 61) | (morton << 1) | 1
        if level == MAX_LEVEL:
            return cls(leaf)
        lsb = 1 << (2 * (MAX_LEVEL - level))
        return cls((leaf & ~((lsb << 1) - 1)) | lsb)

    @classmethod
    def from_lat_lng(cls, point: LatLng, level: int = MAX_LEVEL) -> "CellId":
        """Build the cell at ``level`` containing ``point``."""
        x, y, z = point.to_xyz()
        face, u, v = xyz_to_face_uv(x, y, z)
        i = st_to_ij(uv_to_st(u))
        j = st_to_ij(uv_to_st(v))
        return cls.from_face_ij(face, i, j, level)

    @classmethod
    def from_degrees(cls, lat: float, lng: float, level: int = MAX_LEVEL) -> "CellId":
        """Convenience: build the cell containing (lat, lng) in degrees."""
        return cls.from_lat_lng(LatLng.from_degrees(lat, lng), level)

    @classmethod
    def from_token(cls, token: str) -> "CellId":
        """Parse a hex token produced by :meth:`to_token`."""
        if not token or len(token) > 16:
            raise ValueError(f"invalid cell token: {token!r}")
        return cls(int(token.ljust(16, "0"), 16))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def id(self) -> int:
        """The raw 64-bit integer id."""
        return self._id

    def is_valid(self) -> bool:
        """True for well-formed ids: face in range, sentinel at an even
        bit offset, no bits below the sentinel."""
        if self._id <= 0 or (self._id >> 61) > 5:
            return False
        lsb = self._id & -self._id
        offset = lsb.bit_length() - 1
        return offset % 2 == 0 and offset <= 2 * MAX_LEVEL

    def face(self) -> int:
        """The cube face (0..5) this cell lies on."""
        return self._id >> 61

    def lsb(self) -> int:
        """The lowest set bit (the level sentinel)."""
        return self._id & -self._id

    def level(self) -> int:
        """The subdivision level of this cell (0..30)."""
        return MAX_LEVEL - (self.lsb().bit_length() - 1) // 2

    def is_leaf(self) -> bool:
        """True for level-30 cells."""
        return bool(self._id & 1)

    def parent(self, level: int) -> "CellId":
        """The ancestor of this cell at ``level`` (must not exceed own level)."""
        if level > self.level():
            raise ValueError(
                f"parent level {level} is finer than cell level {self.level()}"
            )
        if level == self.level():
            return self
        lsb = 1 << (2 * (MAX_LEVEL - level))
        return CellId((self._id & ~((lsb << 1) - 1)) | lsb)

    def immediate_parent(self) -> "CellId":
        """The parent one level up."""
        return self.parent(self.level() - 1)

    def child(self, position: int) -> "CellId":
        """The child at Morton position 0..3 (cell must not be a leaf)."""
        if self.is_leaf():
            raise ValueError("leaf cells have no children")
        if not 0 <= position <= 3:
            raise ValueError(f"child position must be 0..3, got {position}")
        lsb = self.lsb()
        child_lsb = lsb >> 2
        return CellId((self._id - lsb) | (position * (child_lsb << 1)) | child_lsb)

    def children(self) -> Iterator["CellId"]:
        """Iterate over the four children in Morton order."""
        for position in range(4):
            yield self.child(position)

    def range_min(self) -> int:
        """Smallest leaf id contained in this cell."""
        return self._id - self.lsb() + 1

    def range_max(self) -> int:
        """Largest leaf id contained in this cell."""
        return self._id + self.lsb() - 1

    def contains(self, other: "CellId") -> bool:
        """True when ``other`` is this cell or a descendant of it."""
        return self.range_min() <= other._id <= self.range_max()

    def intersects(self, other: "CellId") -> bool:
        """True when one cell contains the other."""
        return self.contains(other) or other.contains(self)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def to_face_ij(self) -> Tuple[int, int, int, int]:
        """Return ``(face, i_min, j_min, size)`` at leaf granularity."""
        lsb = self.lsb()
        pos = self._id & ((1 << 61) - 1)
        morton = (pos - lsb) >> 1
        i, j = _deinterleave(morton)
        size = 1 << (MAX_LEVEL - self.level())
        return self.face(), i, j, size

    def center(self) -> LatLng:
        """The centre point of this cell (cached)."""
        cached = _CENTER_CACHE.get(self._id)
        if cached is not None:
            return cached
        face, i, j, size = self.to_face_ij()
        s = (i + size * 0.5) / IJ_SIZE
        t = (j + size * 0.5) / IJ_SIZE
        x, y, z = face_uv_to_xyz(face, st_to_uv(s), st_to_uv(t))
        center = LatLng.from_xyz(x, y, z)
        _CENTER_CACHE[self._id] = center
        return center

    def vertices(self) -> List[LatLng]:
        """The four corner points of this cell."""
        face, i, j, size = self.to_face_ij()
        corners = []
        for di, dj in ((0, 0), (size, 0), (size, size), (0, size)):
            s = (i + di) / IJ_SIZE
            t = (j + dj) / IJ_SIZE
            x, y, z = face_uv_to_xyz(face, st_to_uv(s), st_to_uv(t))
            corners.append(LatLng.from_xyz(x, y, z))
        return corners

    def circumradius_meters(self) -> float:
        """Distance from the centre to the farthest corner (cached)."""
        cached = _RADIUS_CACHE.get(self._id)
        if cached is not None:
            return cached
        center = self.center()
        radius = max(center.distance_meters(v) for v in self.vertices())
        _RADIUS_CACHE[self._id] = radius
        return radius

    def distance_meters(self, other: "CellId") -> float:
        """Approximate minimum great-circle distance between two cells.

        This is the ``d`` of Eq. 1.  Overlapping cells (one containing the
        other, or identical) are at distance 0; otherwise we lower-bound the
        separation by the centre distance minus both circumradii, clamped at
        zero.  The bound is exact for identical cells and tight for the
        same-level disjoint cells SLIM compares.
        """
        if self.intersects(other):
            return 0.0
        separation = (
            self.center().distance_meters(other.center())
            - self.circumradius_meters()
            - other.circumradius_meters()
        )
        return max(0.0, separation)

    @staticmethod
    def average_edge_meters(level: int) -> float:
        """Rough average edge length of a cell at ``level``.

        A quarter great-circle spans a cube face edge, so the average edge is
        ``(pi/2) * R / 2**level``.  Used only for documentation/heuristics
        (e.g. picking sensible default levels); actual geometry always goes
        through cell vertices.
        """
        return (math.pi / 2.0) * EARTH_RADIUS_METERS / (1 << level)

    # ------------------------------------------------------------------
    # encoding / dunder methods
    # ------------------------------------------------------------------
    def to_token(self) -> str:
        """Compact hex token (trailing zeros stripped, like S2 tokens)."""
        token = format(self._id, "016x").rstrip("0")
        return token if token else "X"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellId):
            return NotImplemented
        return self._id == other._id

    def __lt__(self, other: "CellId") -> bool:
        return self._id < other._id

    def __le__(self, other: "CellId") -> bool:
        return self._id <= other._id

    def __hash__(self) -> int:
        return hash(self._id)

    def __repr__(self) -> str:
        return f"CellId({self.to_token()}, level={self.level()})"


def parent_id(cell_id: int, level: int) -> int:
    """Raw-integer fast path for :meth:`CellId.parent`.

    Mobility histories store cell ids as bare integers for speed and memory;
    re-binning a history at a coarser spatial level (similarity level, LSH
    signature level) runs this in a tight loop.
    """
    lsb = 1 << (2 * (MAX_LEVEL - level))
    return (cell_id & ~((lsb << 1) - 1)) | lsb


def id_level(cell_id: int) -> int:
    """Raw-integer fast path for :meth:`CellId.level`."""
    lsb = cell_id & -cell_id
    return MAX_LEVEL - (lsb.bit_length() - 1) // 2


def cell_union_normalize(cells: List[CellId]) -> List[CellId]:
    """Normalise a collection of cells: drop duplicates and cells contained
    in another cell of the collection, and return them sorted by id.

    Useful for building compact spatial covers in examples and tests.
    """
    ordered = sorted(set(cells), key=lambda c: (c.range_min(), -c.lsb()))
    result: List[CellId] = []
    for cell in ordered:
        if result and result[-1].contains(cell):
            continue
        result.append(cell)
    return result

"""Vectorised lat/lng -> cell-id conversion.

The synthetic workload generators produce hundreds of thousands of records;
converting each through :meth:`repro.geo.cell.CellId.from_lat_lng` would
dominate benchmark setup time.  This module re-implements the projection and
Morton encoding from :mod:`repro.geo.projection` / :mod:`repro.geo.cell`
with numpy, producing identical ids (property-tested against the scalar
path in ``tests/geo/test_batch.py``).
"""

from __future__ import annotations

import numpy as np

from .projection import IJ_SIZE, MAX_LEVEL

__all__ = ["cell_ids_from_degrees"]

# 8-bit -> 16-bit Morton spread table as a numpy array (see repro.geo.cell).
_SPREAD_NP = np.zeros(256, dtype=np.uint64)
for _byte in range(256):
    _spread = 0
    for _bit in range(8):
        if _byte & (1 << _bit):
            _spread |= 1 << (2 * _bit)
    _SPREAD_NP[_byte] = _spread


def _interleave_np(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Vectorised Morton interleave of two uint64 coordinate arrays."""
    morton = np.zeros(i.shape, dtype=np.uint64)
    for chunk in range(4):
        shift = np.uint64(8 * chunk)
        out_shift = np.uint64(16 * chunk)
        i_bytes = (i >> shift) & np.uint64(0xFF)
        j_bytes = (j >> shift) & np.uint64(0xFF)
        part = (_SPREAD_NP[i_bytes] << np.uint64(1)) | _SPREAD_NP[j_bytes]
        morton |= part << out_shift
    return morton


def _uv_to_st_np(u: np.ndarray) -> np.ndarray:
    """Vectorised inverse quadratic projection (see projection.uv_to_st)."""
    positive = u >= 0.0
    st = np.empty_like(u)
    st[positive] = 0.5 * np.sqrt(1.0 + 3.0 * u[positive])
    st[~positive] = 1.0 - 0.5 * np.sqrt(1.0 - 3.0 * u[~positive])
    return st


def cell_ids_from_degrees(
    lat_degrees: np.ndarray, lng_degrees: np.ndarray, level: int = MAX_LEVEL
) -> np.ndarray:
    """Convert coordinate arrays to cell ids at ``level``.

    Returns a ``uint64`` array whose elements equal
    ``CellId.from_degrees(lat, lng, level).id`` for the matching inputs.
    """
    if not 0 <= level <= MAX_LEVEL:
        raise ValueError(f"level must be in 0..{MAX_LEVEL}, got {level}")
    lat = np.radians(np.asarray(lat_degrees, dtype=np.float64))
    lng = np.radians(np.asarray(lng_degrees, dtype=np.float64))
    if lat.shape != lng.shape:
        raise ValueError("lat and lng arrays must have the same shape")

    cos_lat = np.cos(lat)
    x = cos_lat * np.cos(lng)
    y = cos_lat * np.sin(lng)
    z = np.sin(lat)

    ax, ay, az = np.abs(x), np.abs(y), np.abs(z)
    face = np.where(
        (ax >= ay) & (ax >= az),
        np.where(x > 0, 0, 3),
        np.where(ay >= az, np.where(y > 0, 1, 4), np.where(z > 0, 2, 5)),
    ).astype(np.int64)

    u = np.empty_like(x)
    v = np.empty_like(x)
    for f, (ufn, vfn) in enumerate(
        (
            (lambda: y / x, lambda: z / x),  # face 0: +x
            (lambda: -x / y, lambda: z / y),  # face 1: +y
            (lambda: -x / z, lambda: -y / z),  # face 2: +z
            (lambda: z / x, lambda: y / x),  # face 3: -x
            (lambda: z / y, lambda: -x / y),  # face 4: -y
            (lambda: -y / z, lambda: -x / z),  # face 5: -z
        )
    ):
        mask = face == f
        if mask.any():
            with np.errstate(divide="ignore", invalid="ignore"):
                u[mask] = ufn()[mask]
                v[mask] = vfn()[mask]

    s = _uv_to_st_np(u)
    t = _uv_to_st_np(v)
    i = np.clip(np.floor(s * IJ_SIZE), 0, IJ_SIZE - 1).astype(np.uint64)
    j = np.clip(np.floor(t * IJ_SIZE), 0, IJ_SIZE - 1).astype(np.uint64)

    morton = _interleave_np(i, j)
    leaf = (np.asarray(face, dtype=np.uint64) << np.uint64(61)) | (
        morton << np.uint64(1)
    ) | np.uint64(1)
    if level == MAX_LEVEL:
        return leaf
    lsb = np.uint64(1 << (2 * (MAX_LEVEL - level)))
    mask = ~np.uint64((int(lsb) << 1) - 1)
    return (leaf & mask) | lsb

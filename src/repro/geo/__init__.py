"""Spatial substrate: spherical points and an S2-like hierarchical grid.

This package replaces the Google S2 dependency of the paper (Sec. 2.3) with
a self-contained implementation covering everything SLIM needs:

* :class:`~repro.geo.point.LatLng` — spherical points, haversine distances,
  great-circle travel (used by the synthetic trace generators).
* :class:`~repro.geo.cell.CellId` — 64-bit hierarchical cells with level
  encoded in the trailing bit; parent/child/containment by bit arithmetic.
* :func:`~repro.geo.batch.cell_ids_from_degrees` — vectorised bulk
  conversion for workload generation.
"""

from .batch import cell_ids_from_degrees
from .cell import CellId, cell_union_normalize
from .coverage import all_neighbors, cover_cap, edge_neighbors, point_to_cell_distance
from .point import EARTH_RADIUS_METERS, LatLng
from .projection import MAX_LEVEL

__all__ = [
    "CellId",
    "LatLng",
    "EARTH_RADIUS_METERS",
    "MAX_LEVEL",
    "cell_ids_from_degrees",
    "cell_union_normalize",
    "edge_neighbors",
    "all_neighbors",
    "cover_cap",
    "point_to_cell_distance",
]

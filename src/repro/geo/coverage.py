"""Cell adjacency and region covering.

Sec. 2.1 notes that SLIM "can be extended to datasets that contain record
locations as regions, by copying a record into multiple cells within the
mobility histories using weights".  That extension
(:meth:`repro.core.history.MobilityHistory.from_columns` with per-record
accuracy radii) needs two spatial primitives this module provides:

* :func:`edge_neighbors` / :func:`all_neighbors` — the 4- and 8-neighbours
  of a cell.  Within a cube face this is exact (i, j) arithmetic; across a
  face boundary we fall back to a geodesic step from the cell centre, which
  is robust everywhere and exact enough for covering work.
* :func:`cover_cap` — the set of cells at a level intersecting a spherical
  cap (centre + radius), found by breadth-first expansion from the centre
  cell.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Set

from .cell import CellId
from .point import LatLng
from .projection import IJ_SIZE

__all__ = ["edge_neighbors", "all_neighbors", "cover_cap", "point_to_cell_distance"]

#: Compass bearings (radians) for the geodesic fallback: N, E, S, W, and
#: the diagonals.
_BEARINGS = {
    (0, 1): 0.0,
    (1, 0): math.pi / 2.0,
    (0, -1): math.pi,
    (-1, 0): 3.0 * math.pi / 2.0,
    (1, 1): math.pi / 4.0,
    (1, -1): 3.0 * math.pi / 4.0,
    (-1, -1): 5.0 * math.pi / 4.0,
    (-1, 1): 7.0 * math.pi / 4.0,
}


def _geodesic_step(cell: CellId, di: int, dj: int) -> CellId:
    """Neighbour via a great-circle step from the centre (face-crossing
    fallback)."""
    center = cell.center()
    # Step ~1.2 cell diagonals so we clear the boundary even with the
    # projection's area distortion.
    step = 1.2 * cell.circumradius_meters() * (2.0 if di and dj else 1.4)
    destination = center.destination(_BEARINGS[(di, dj)], step)
    return CellId.from_lat_lng(destination, cell.level())


def _offset_neighbor(cell: CellId, di: int, dj: int) -> CellId:
    """Neighbour at integer offset (di, dj) in face coordinates."""
    face, i, j, size = cell.to_face_ij()
    ni = i + di * size
    nj = j + dj * size
    if 0 <= ni < IJ_SIZE and 0 <= nj < IJ_SIZE:
        return CellId.from_face_ij(face, ni, nj, cell.level())
    return _geodesic_step(cell, di, dj)


def edge_neighbors(cell: CellId) -> List[CellId]:
    """The four edge-adjacent neighbours of a cell."""
    if cell.level() == 0:
        raise ValueError("level-0 cells (whole faces) have no in-face neighbours")
    neighbors = []
    for di, dj in ((0, 1), (1, 0), (0, -1), (-1, 0)):
        neighbor = _offset_neighbor(cell, di, dj)
        if neighbor != cell:
            neighbors.append(neighbor)
    return neighbors


def all_neighbors(cell: CellId) -> List[CellId]:
    """The (up to) eight edge- and corner-adjacent neighbours."""
    if cell.level() == 0:
        raise ValueError("level-0 cells (whole faces) have no in-face neighbours")
    seen: Set[CellId] = {cell}
    result: List[CellId] = []
    for di, dj in _BEARINGS:
        neighbor = _offset_neighbor(cell, di, dj)
        if neighbor not in seen:
            seen.add(neighbor)
            result.append(neighbor)
    return result


def point_to_cell_distance(point: LatLng, cell: CellId) -> float:
    """Lower bound on the distance from a point to a cell (metres).

    Zero when the point lies inside the cell; otherwise the centre distance
    minus the circumradius, clamped at zero — the same bound the similarity
    engine uses between cells.
    """
    if CellId.from_lat_lng(point, cell.level()) == cell:
        return 0.0
    return max(
        0.0, point.distance_meters(cell.center()) - cell.circumradius_meters()
    )


def cover_cap(
    center: LatLng, radius_meters: float, level: int, max_cells: int = 512
) -> List[CellId]:
    """Cells at ``level`` intersecting the cap around ``center``.

    Breadth-first expansion from the centre cell; a cell is kept (and its
    neighbours explored) when its lower-bound distance to the centre is
    within ``radius_meters``.  ``max_cells`` guards against degenerate
    radius/level combinations; hitting it raises rather than silently
    truncating the cover.
    """
    if radius_meters < 0:
        raise ValueError("radius must be non-negative")
    start = CellId.from_lat_lng(center, level)
    cover: List[CellId] = []
    seen: Set[CellId] = {start}
    queue = deque([start])
    while queue:
        cell = queue.popleft()
        if point_to_cell_distance(center, cell) > radius_meters:
            continue
        cover.append(cell)
        if len(cover) > max_cells:
            raise ValueError(
                f"cap cover exceeds {max_cells} cells at level {level}; "
                "use a coarser level or a smaller radius"
            )
        for neighbor in all_neighbors(cell):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return sorted(cover)

"""``slim-link``: link two CSV mobility datasets from the command line.

Example::

    slim-link left.csv right.csv --window-minutes 15 --spatial-level 12 \
        --lsh --lsh-threshold 0.6 --output links.csv

Input CSVs need columns ``entity,lat,lng,timestamp`` (POSIX seconds or
ISO 8601).  The output lists one link per line with its similarity score
and whether it passed the automated stop threshold.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.similarity import SimilarityConfig
from .core.slim import SlimConfig, SlimLinker
from .data.io import load_csv
from .lsh.index import LshConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="slim-link",
        description="Link entities across two mobility datasets (SLIM, SIGMOD 2020).",
    )
    parser.add_argument("left", help="CSV of the first dataset")
    parser.add_argument("right", help="CSV of the second dataset")
    parser.add_argument(
        "--window-minutes",
        type=float,
        default=15.0,
        help="temporal window width in minutes (default: 15)",
    )
    parser.add_argument(
        "--spatial-level",
        type=int,
        default=12,
        help="grid level for time-location bins (default: 12)",
    )
    parser.add_argument(
        "--max-speed-kmh",
        type=float,
        default=120.0,
        help="maximum entity speed for alibi detection (default: 120 km/h)",
    )
    parser.add_argument(
        "--b",
        type=float,
        default=0.5,
        help="history-length normalisation strength in [0, 1] (default: 0.5)",
    )
    parser.add_argument(
        "--matching",
        choices=("greedy", "hungarian", "networkx"),
        default="greedy",
        help="bipartite matcher (default: greedy, as in the paper)",
    )
    parser.add_argument(
        "--threshold-method",
        choices=("gmm", "otsu", "two_means", "none"),
        default="gmm",
        help="stop-threshold method (default: gmm)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "python"),
        default="numpy",
        help="similarity scoring backend: the vectorized batch kernel or "
        "the scalar oracle loop (default: numpy)",
    )
    parser.add_argument("--lsh", action="store_true", help="enable LSH filtering")
    parser.add_argument(
        "--lsh-threshold",
        type=float,
        default=0.6,
        help="LSH signature similarity threshold (default: 0.6)",
    )
    parser.add_argument(
        "--lsh-step-windows",
        type=int,
        default=16,
        help="LSH query step in leaf windows (default: 16)",
    )
    parser.add_argument(
        "--lsh-spatial-level",
        type=int,
        default=16,
        help="LSH dominating-cell level (default: 16)",
    )
    parser.add_argument(
        "--lsh-buckets",
        type=int,
        default=4096,
        help="LSH bucket-table size (default: 4096)",
    )
    parser.add_argument(
        "--all-matches",
        action="store_true",
        help="also print matched pairs below the stop threshold",
    )
    parser.add_argument(
        "--output",
        help="write links to this CSV instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    similarity = SimilarityConfig(
        window_width_minutes=args.window_minutes,
        spatial_level=args.spatial_level,
        max_speed_mps=args.max_speed_kmh / 3.6,
        b=args.b,
        backend=args.backend,
    )
    lsh = None
    if args.lsh:
        lsh = LshConfig(
            threshold=args.lsh_threshold,
            step_windows=args.lsh_step_windows,
            spatial_level=args.lsh_spatial_level,
            num_buckets=args.lsh_buckets,
        )
    config = SlimConfig(
        similarity=similarity,
        lsh=lsh,
        matching=args.matching,
        threshold_method=args.threshold_method,
    )

    left = load_csv(args.left)
    right = load_csv(args.right)
    result = SlimLinker(config).link(left, right)

    lines = ["left,right,score,linked"]
    for edge in result.matched_edges:
        linked = edge.weight >= result.threshold.threshold
        if not linked and not args.all_matches:
            continue
        lines.append(f"{edge.left},{edge.right},{edge.weight:.6f},{int(linked)}")

    body = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)
    print(
        f"# {len(result.links)} links / {len(result.matched_edges)} matched pairs; "
        f"stop threshold {result.threshold.threshold:.4f} "
        f"({result.threshold.method}); "
        f"{result.candidate_pairs} candidate pairs; "
        f"{result.stats.bin_comparisons} bin comparisons",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``slim-link``: link two CSV mobility datasets from the command line.

Example::

    slim-link left.csv right.csv --window-minutes 15 --spatial-level 12 \
        --lsh --lsh-threshold 0.6 --output links.csv

A full pipeline configuration can also be loaded from a serialized
:class:`~repro.pipeline.config.LinkageConfig` (see its ``to_dict``)::

    slim-link left.csv right.csv --config run.json --threshold-method otsu

Explicit command-line flags override the file's values; unknown fields in
the file fail fast, naming the offending key.

``--executor process --workers 4`` shards the scoring stage across four
worker processes (identical links/scores, see :mod:`repro.exec`);
``--score-cache scores.bin`` persists pair scores so repeated runs over
the same data warm-start instead of re-scoring.

Input CSVs need columns ``entity,lat,lng,timestamp`` (POSIX seconds or
ISO 8601).  The output lists one link per line with its similarity score
and whether it passed the automated stop threshold.

Instead of two CSVs, ``--scenario NAME`` runs a named adversarial
scenario from the zoo (:mod:`repro.scenarios`) — the pair is generated
deterministically from ``--scenario-seed`` / ``--scenario-scale`` and the
run is additionally scored against the scenario's held-out ground truth
(printed to stderr).  ``--list-scenarios`` enumerates the zoo::

    slim-link --scenario gps_jitter_burst --scenario-seed 7 --lsh

``slim-link serve`` runs the *online* serving loop instead of one batch
run: the same inputs (two CSVs or a scenario) are replayed as a
time-ordered event stream through :class:`repro.serve.LinkageService` —
bounded ingest queue, debounced relinks, versioned snapshots — and the
per-round serving counters are printed as a table.  The ``--serve-*``
knobs (queue depth, debounce batch / staleness, backpressure policy) ride
on the same serialized :class:`~repro.pipeline.config.LinkageConfig` as
every other flag::

    slim-link serve --scenario bursty_arrival --rounds 6 \\
        --serve-batch 128 --serve-backpressure reject
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from .core.score_cache import ScoreCache
from .data.io import load_csv
from .lsh.index import LshConfig
from .pipeline import LinkageConfig, LinkagePipeline

__all__ = ["main", "build_parser", "config_from_args"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="slim-link",
        description="Link entities across two mobility datasets (SLIM, SIGMOD 2020).",
    )
    parser.add_argument(
        "left", nargs="?", help="CSV of the first dataset (omit with --scenario)"
    )
    parser.add_argument(
        "right", nargs="?", help="CSV of the second dataset (omit with --scenario)"
    )
    parser.add_argument(
        "--scenario",
        help="run a named scenario from the scenario zoo instead of two "
        "CSVs; the pair is generated deterministically and scored against "
        "its held-out ground truth (see --list-scenarios)",
    )
    parser.add_argument(
        "--scenario-seed",
        type=int,
        default=None,
        help="seed for --scenario (default: the scenario's default seed)",
    )
    parser.add_argument(
        "--scenario-scale",
        type=float,
        default=1.0,
        help="world-size multiplier for --scenario (default: 1.0)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenarios and exit",
    )
    parser.add_argument(
        "--config",
        help="JSON file holding a serialized LinkageConfig "
        "(explicit flags override its values)",
    )
    parser.add_argument(
        "--window-minutes",
        type=float,
        default=15.0,
        help="temporal window width in minutes (default: 15)",
    )
    parser.add_argument(
        "--spatial-level",
        type=int,
        default=12,
        help="grid level for time-location bins (default: 12)",
    )
    parser.add_argument(
        "--max-speed-kmh",
        type=float,
        default=120.0,
        help="maximum entity speed for alibi detection (default: 120 km/h)",
    )
    parser.add_argument(
        "--b",
        type=float,
        default=0.5,
        help="history-length normalisation strength in [0, 1] (default: 0.5)",
    )
    parser.add_argument(
        "--matching",
        choices=("greedy", "hungarian", "networkx"),
        default="greedy",
        help="bipartite matcher (default: greedy, as in the paper)",
    )
    parser.add_argument(
        "--threshold-method",
        choices=("gmm", "otsu", "two_means", "none"),
        default="gmm",
        help="stop-threshold method (default: gmm)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "python"),
        default="numpy",
        help="similarity scoring backend: the vectorized batch kernel or "
        "the scalar oracle loop (default: numpy)",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend for the scoring stage's shard fan-out "
        "(default: auto = the REPRO_EXECUTOR environment override, "
        "else serial); results are identical under every backend",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker count for parallel executors "
        "(default: 0 = REPRO_WORKERS, else the CPU count)",
    )
    parser.add_argument(
        "--score-cache",
        help="persist pair scores to this file and warm-start from it on "
        "repeated runs (created when missing; see ScoreCache.save)",
    )
    parser.add_argument(
        "--retention",
        choices=("none", "sliding_window", "max_entities"),
        default="none",
        help="entity-retirement policy carried on the config (applied by "
        "streaming relinks; default: none = keep every entity forever)",
    )
    parser.add_argument(
        "--retention-window",
        type=int,
        default=0,
        help="retention parameter: max activity age in leaf windows "
        "(sliding_window) or max entities per side (max_entities)",
    )
    parser.add_argument(
        "--score-block-size",
        type=int,
        default=0,
        help="candidate pairs per scoring-kernel dispatch (default: 0 = "
        "workload-aware: dense corpora 512, sparse 4096; results are "
        "identical at any size)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="per-block timeout in seconds for scoring dispatches; a block "
        "exceeding it is retried and, past the retry budget, reported as "
        "failed (default: 0 = unbounded)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget per scoring block before a failure is final "
        "(default: 2); failed workers are respawned between attempts",
    )
    parser.add_argument(
        "--serve-queue-depth",
        type=int,
        default=1024,
        help="serving: bound of the ingest event queue before backpressure "
        "engages (default: 1024)",
    )
    parser.add_argument(
        "--serve-batch",
        type=int,
        default=256,
        help="serving: relink once this many records are pending "
        "(default: 256)",
    )
    parser.add_argument(
        "--serve-staleness",
        type=float,
        default=2.0,
        help="serving: relink pending deltas at most this many seconds "
        "after the oldest arrived (default: 2.0)",
    )
    parser.add_argument(
        "--serve-backpressure",
        default="block",
        help="serving: what a full ingest queue does to a submit — "
        "'block' (await capacity) or 'reject' (fail immediately); "
        "default: block",
    )
    parser.add_argument("--lsh", action="store_true", help="enable LSH filtering")
    parser.add_argument(
        "--lsh-threshold",
        type=float,
        default=0.6,
        help="LSH signature similarity threshold (default: 0.6)",
    )
    parser.add_argument(
        "--lsh-step-windows",
        type=int,
        default=16,
        help="LSH query step in leaf windows (default: 16)",
    )
    parser.add_argument(
        "--lsh-spatial-level",
        type=int,
        default=16,
        help="LSH dominating-cell level (default: 16)",
    )
    parser.add_argument(
        "--lsh-buckets",
        type=int,
        default=4096,
        help="LSH bucket-table size (default: 4096)",
    )
    parser.add_argument(
        "--snapshot-dir",
        help="run the linkage as a resumable streaming relink: restore the "
        "linker from the newest snapshot in this directory (cold start if "
        "none), fold the inputs in, relink, and checkpoint back — repeated "
        "runs accumulate state instead of starting over (subsumes "
        "--score-cache: the snapshot persists the score cache)",
    )
    parser.add_argument(
        "--all-matches",
        action="store_true",
        help="also print matched pairs below the stop threshold",
    )
    parser.add_argument(
        "--output",
        help="write links to this CSV instead of stdout",
    )
    return parser


def _explicit_flags(argv: List[str]) -> Dict[str, object]:
    """The options the user actually typed (no parser defaults).

    A twin parser with every default suppressed: whatever survives into
    the namespace was explicitly provided — the set of flags that may
    override a ``--config`` file.
    """
    parser = build_parser()
    for action in parser._actions:
        action.default = argparse.SUPPRESS
    namespace, _ = parser.parse_known_args(argv)
    return vars(namespace)


def config_from_args(
    args: argparse.Namespace, explicit: Dict[str, object]
) -> LinkageConfig:
    """Resolve the effective :class:`LinkageConfig`.

    Without ``--config``, flags (and their defaults) fully determine the
    configuration — the historical CLI behaviour.  With ``--config``, the
    file is the base and only *explicitly typed* flags override it.
    """
    if args.config:
        data = json.loads(Path(args.config).read_text())
        base = LinkageConfig.from_dict(data)
        explicit_only = True
    else:
        base = LinkageConfig()
        explicit_only = False

    def overridden(dest: str) -> bool:
        return (dest in explicit) or not explicit_only

    similarity_changes: Dict[str, object] = {}
    if overridden("window_minutes"):
        similarity_changes["window_width_minutes"] = args.window_minutes
    if overridden("spatial_level"):
        similarity_changes["spatial_level"] = args.spatial_level
    if overridden("max_speed_kmh"):
        similarity_changes["max_speed_mps"] = args.max_speed_kmh / 3.6
    if overridden("b"):
        similarity_changes["b"] = args.b
    if overridden("backend"):
        similarity_changes["backend"] = args.backend
    similarity = (
        base.similarity.without(**similarity_changes)
        if similarity_changes
        else base.similarity
    )

    lsh = base.lsh
    if not explicit_only:
        lsh = (
            LshConfig(
                threshold=args.lsh_threshold,
                step_windows=args.lsh_step_windows,
                spatial_level=args.lsh_spatial_level,
                num_buckets=args.lsh_buckets,
            )
            if args.lsh
            else None
        )
    else:
        if "lsh" in explicit and args.lsh and lsh is None:
            lsh = LshConfig()
        if lsh is not None:
            lsh_changes: Dict[str, object] = {}
            if "lsh_threshold" in explicit:
                lsh_changes["threshold"] = args.lsh_threshold
            if "lsh_step_windows" in explicit:
                lsh_changes["step_windows"] = args.lsh_step_windows
            if "lsh_spatial_level" in explicit:
                lsh_changes["spatial_level"] = args.lsh_spatial_level
            if "lsh_buckets" in explicit:
                lsh_changes["num_buckets"] = args.lsh_buckets
            if lsh_changes:
                lsh = replace(lsh, **lsh_changes)

    return base.without(
        similarity=similarity,
        lsh=lsh,
        matching=args.matching if overridden("matching") else base.matching,
        threshold=(
            args.threshold_method
            if overridden("threshold_method")
            else base.threshold
        ),
        executor=args.executor if overridden("executor") else base.executor,
        workers=args.workers if overridden("workers") else base.workers,
        retention=args.retention if overridden("retention") else base.retention,
        retention_window=(
            args.retention_window
            if overridden("retention_window")
            else base.retention_window
        ),
        score_block_size=(
            args.score_block_size
            if overridden("score_block_size")
            else base.score_block_size
        ),
        timeout=args.timeout if overridden("timeout") else base.timeout,
        retries=args.retries if overridden("retries") else base.retries,
        serve_queue_depth=(
            args.serve_queue_depth
            if overridden("serve_queue_depth")
            else base.serve_queue_depth
        ),
        serve_batch=(
            args.serve_batch if overridden("serve_batch") else base.serve_batch
        ),
        serve_staleness=(
            args.serve_staleness
            if overridden("serve_staleness")
            else base.serve_staleness
        ),
        serve_backpressure=(
            args.serve_backpressure
            if overridden("serve_backpressure")
            else base.serve_backpressure
        ),
    )


def _serve_parser() -> argparse.ArgumentParser:
    """The ``slim-link serve`` parser: every batch flag plus the replay
    knobs (the ``--serve-*`` flags already live on the shared parser)."""
    parser = build_parser()
    parser.prog = "slim-link serve"
    parser.description = (
        "Replay two mobility datasets as a time-ordered event stream "
        "through the online serving loop (bounded ingest queue, debounced "
        "relinks, versioned snapshots) and report the serving counters."
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="number of time slices the event stream is replayed in "
        "(default: 4)",
    )
    parser.add_argument(
        "--queries-per-round",
        type=int,
        default=32,
        help="links_for queries issued against the published snapshot "
        "after each round (default: 32)",
    )
    parser.add_argument(
        "--serve-state-dir",
        help="serving: restore the linker from the newest snapshot in this "
        "directory on start (cold start if none) and checkpoint it back "
        "after every published relink, so a killed service resumes from "
        "its last published state",
    )
    return parser


def _serve_main(argv: List[str]) -> int:
    """``slim-link serve``: the online serving front door."""
    import asyncio

    from .eval.reporting import serving_table
    from .scenarios import scenario_pair
    from .serve import replay_pair

    args = _serve_parser().parse_args(argv)
    explicit = _explicit_flags(argv)
    if args.scenario and (args.left or args.right):
        print(
            "error: --scenario replaces the left/right CSV arguments",
            file=sys.stderr,
        )
        return 2
    if not args.scenario and not (args.left and args.right):
        print(
            "error: need two CSV paths, or --scenario NAME "
            "(--list-scenarios shows the zoo)",
            file=sys.stderr,
        )
        return 2
    if args.rounds < 1:
        print(
            f"error: --rounds must be a positive integer, got {args.rounds}",
            file=sys.stderr,
        )
        return 2
    try:
        config = config_from_args(args, explicit)
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        message = error.args[0] if error.args else error
        print(f"error: invalid configuration: {message}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot read config: {error}", file=sys.stderr)
        return 2

    ground_truth: Optional[Dict[str, str]] = None
    if args.scenario:
        try:
            pair = scenario_pair(
                args.scenario,
                seed=args.scenario_seed,
                scale=args.scenario_scale,
            )
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
        left, right, ground_truth = pair.left, pair.right, pair.ground_truth
    else:
        left = load_csv(args.left)
        right = load_csv(args.right)

    service_kwargs: Dict[str, object] = {}
    if args.serve_state_dir:
        service_kwargs["state_dir"] = args.serve_state_dir
    result = asyncio.run(
        replay_pair(
            left,
            right,
            config=config,
            rounds=args.rounds,
            queries_per_round=max(0, args.queries_per_round),
            **service_kwargs,
        )
    )
    snapshot = result.snapshot

    lines = ["left,right,score,linked"]
    for (left_id, right_id), score in sorted(snapshot.link_scores.items()):
        lines.append(f"{left_id},{right_id},{score:.6f},1")
    body = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)

    print(
        serving_table(
            result.samples,
            title=f"serving counters ({args.rounds} rounds)",
        ),
        file=sys.stderr,
    )
    print(
        f"# snapshot version {snapshot.version}; "
        f"watermark {snapshot.watermark:.1f}; "
        f"{len(snapshot.links)} links; "
        f"stop threshold {snapshot.threshold:.4f} "
        f"({snapshot.threshold_method})",
        file=sys.stderr,
    )
    if ground_truth is not None:
        from .eval.metrics import precision_recall_f1

        quality = precision_recall_f1(dict(snapshot.links), ground_truth)
        print(
            f"# scenario {args.scenario}: precision {quality.precision:.4f} "
            f"recall {quality.recall:.4f} f1 {quality.f1:.4f} "
            f"({len(ground_truth)} true links)",
            file=sys.stderr,
        )
    return 0


def _snapshot_main(
    args: argparse.Namespace,
    config: LinkageConfig,
    left,
    right,
    ground_truth: Optional[Dict[str, str]],
) -> int:
    """``--snapshot-dir``: a resumable streaming relink.

    Restore-or-cold-start a :class:`~repro.core.streaming.StreamingLinker`
    from the snapshot directory, fold the inputs in, relink once, and
    checkpoint the whole linker back — so repeated invocations accumulate
    state across process lifetimes.
    """
    from .core.streaming import StreamingLinker

    if args.score_cache:
        print(
            "warning: --score-cache is ignored with --snapshot-dir "
            "(the snapshot persists the score cache)",
            file=sys.stderr,
        )
    snapshot_dir = Path(args.snapshot_dir)
    linker = StreamingLinker.restore(snapshot_dir)
    resumed = linker is not None
    if linker is None:
        origin = min(left.time_range()[0], right.time_range()[0])
        linker = StreamingLinker(origin, config=config)
    linker.observe("left", list(left.records()))
    linker.observe("right", list(right.records()))
    report = linker.relink()
    linker.save(snapshot_dir)

    lines = ["left,right,score,linked"]
    for (left_id, right_id), score in sorted(report.link_scores.items()):
        lines.append(f"{left_id},{right_id},{score:.6f},1")
    body = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)
    print(
        f"# {len(report.links)} links; "
        f"stop threshold {report.threshold.threshold:.4f} "
        f"({report.threshold.method}); "
        f"{'resumed from' if resumed else 'cold start, checkpointed to'} "
        f"snapshot dir {snapshot_dir}; watermark {linker.watermark:.1f}",
        file=sys.stderr,
    )
    if ground_truth is not None:
        from .eval.metrics import precision_recall_f1

        quality = precision_recall_f1(dict(report.links), ground_truth)
        print(
            f"# scenario {args.scenario}: precision {quality.precision:.4f} "
            f"recall {quality.recall:.4f} f1 {quality.f1:.4f} "
            f"({len(ground_truth)} true links)",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv_list = list(argv) if argv is not None else sys.argv[1:]
    if argv_list[:1] == ["serve"]:
        return _serve_main(argv_list[1:])
    args = build_parser().parse_args(argv)
    explicit = _explicit_flags(argv_list)
    if args.list_scenarios:
        from .scenarios import get_scenario, scenario_names

        for name in scenario_names():
            print(f"{name}: {get_scenario(name).description}")
        return 0
    if args.scenario and (args.left or args.right):
        print(
            "error: --scenario replaces the left/right CSV arguments",
            file=sys.stderr,
        )
        return 2
    if not args.scenario and not (args.left and args.right):
        print(
            "error: need two CSV paths, or --scenario NAME "
            "(--list-scenarios shows the zoo)",
            file=sys.stderr,
        )
        return 2
    try:
        config = config_from_args(args, explicit)
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        message = error.args[0] if error.args else error
        print(f"error: invalid configuration: {message}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot read config: {error}", file=sys.stderr)
        return 2

    score_cache: Optional[ScoreCache] = None
    if args.score_cache:
        cache_path = Path(args.score_cache)
        if cache_path.exists():
            try:
                score_cache = ScoreCache.load(cache_path)
            except ValueError as error:
                print(
                    f"warning: ignoring score cache {cache_path}: {error}",
                    file=sys.stderr,
                )
        if score_cache is None:
            score_cache = ScoreCache()
    # Counters persist in the file; report this run's deltas, not totals.
    hits_before = score_cache.hits if score_cache is not None else 0
    misses_before = score_cache.misses if score_cache is not None else 0

    ground_truth: Optional[Dict[str, str]] = None
    if args.scenario:
        from .scenarios import scenario_pair

        try:
            pair = scenario_pair(
                args.scenario,
                seed=args.scenario_seed,
                scale=args.scenario_scale,
            )
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}", file=sys.stderr)
            return 2
        left, right, ground_truth = pair.left, pair.right, pair.ground_truth
    else:
        left = load_csv(args.left)
        right = load_csv(args.right)
    if args.snapshot_dir:
        return _snapshot_main(args, config, left, right, ground_truth)
    result = LinkagePipeline(config).run(left, right, score_cache=score_cache)

    lines = ["left,right,score,linked"]
    for edge in result.matched_edges:
        linked = edge.weight >= result.threshold.threshold
        if not linked and not args.all_matches:
            continue
        lines.append(f"{edge.left},{edge.right},{edge.weight:.6f},{int(linked)}")

    body = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(body + "\n")
    else:
        print(body)
    print(
        f"# {len(result.links)} links / {len(result.matched_edges)} matched pairs; "
        f"stop threshold {result.threshold.threshold:.4f} "
        f"({result.threshold.method}); "
        f"{result.candidate_pairs} candidate pairs; "
        f"{result.stats.bin_comparisons} bin comparisons",
        file=sys.stderr,
    )
    if ground_truth is not None:
        from .eval.metrics import precision_recall_f1

        quality = precision_recall_f1(result.links, ground_truth)
        print(
            f"# scenario {args.scenario}: precision {quality.precision:.4f} "
            f"recall {quality.recall:.4f} f1 {quality.f1:.4f} "
            f"({len(ground_truth)} true links)",
            file=sys.stderr,
        )
    if score_cache is not None:
        score_cache.save(args.score_cache)
        print(
            f"# score cache: {score_cache.hits - hits_before} hits / "
            f"{score_cache.misses - misses_before} misses this run; "
            f"{len(score_cache)} entries saved to {args.score_cache}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Corpus-level statistics over one dataset's mobility histories.

The similarity score of Eq. 2 needs two dataset-level quantities:

* **IDF** (Eq. 3): ``idf(e, E) = ln(|U_E| / df(e))`` where ``df(e)`` is the
  number of histories containing time-location bin ``e`` — uniqueness makes
  a matching bin stronger evidence;
* **average history size**: the denominator of the BM25-style length
  normalisation ``L(u, E)``.

:class:`HistoryCorpus` precomputes both at a fixed similarity spatial level
and exposes per-entity bins annotated with their IDF so the inner similarity
loop does no dictionary lookups beyond one per window.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .history import MobilityHistory

__all__ = ["HistoryCorpus"]

#: bins_with_idf value type: per window, a tuple of (cell id, idf) pairs.
BinsWithIdf = Dict[int, Tuple[Tuple[int, float], ...]]


class HistoryCorpus:
    """Histories of one dataset plus the statistics Eq. 2 and Eq. 3 need."""

    def __init__(
        self, histories: Dict[str, MobilityHistory], level: int
    ) -> None:
        """``level`` is the similarity spatial level (paper default 12)."""
        if not histories:
            raise ValueError("corpus needs at least one history")
        self._histories = histories
        self._level = level
        self._size = len(histories)

        document_frequency: Dict[Tuple[int, int], int] = {}
        total_bins = 0
        for history in histories.values():
            bins = history.bins(level)
            for window, cells in bins.items():
                total_bins += len(cells)
                for cell in cells:
                    key = (window, cell)
                    document_frequency[key] = document_frequency.get(key, 0) + 1
        self._df = document_frequency
        self._avg_bins = total_bins / self._size if self._size else 0.0
        self._log_size = math.log(self._size) if self._size else 0.0
        self._bins_with_idf: Dict[str, BinsWithIdf] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Similarity spatial level the statistics were computed at."""
        return self._level

    @property
    def size(self) -> int:
        """``|U_E|`` — number of entities in the dataset."""
        return self._size

    @property
    def avg_bins(self) -> float:
        """Average ``|H_u|`` across the corpus."""
        return self._avg_bins

    @property
    def entities(self) -> List[str]:
        """Entity ids present in the corpus."""
        return list(self._histories)

    def history(self, entity_id: str) -> MobilityHistory:
        """The history of one entity."""
        return self._histories[entity_id]

    def histories(self) -> Dict[str, MobilityHistory]:
        """All histories (do not mutate)."""
        return self._histories

    # ------------------------------------------------------------------
    # Eq. 3 and Eq. 2 support
    # ------------------------------------------------------------------
    def document_frequency(self, window: int, cell: int) -> int:
        """Number of histories containing time-location bin (window, cell)."""
        return self._df.get((window, cell), 0)

    def idf(self, window: int, cell: int) -> float:
        """``idf(e, E)`` of Eq. 3 (natural log).

        A bin no history contains would be infinitely surprising; it cannot
        arise for bins taken from corpus histories, so we raise rather than
        return infinity.
        """
        df = self._df.get((window, cell), 0)
        if df <= 0:
            raise KeyError(f"bin (window={window}, cell={cell}) not in corpus")
        return self._log_size - math.log(df)

    def relative_size(self, entity_id: str) -> float:
        """``|H_u| / avg(|H_u'|)`` — the BM25-style relative history size."""
        if self._avg_bins <= 0:
            return 1.0
        return self._histories[entity_id].num_bins(self._level) / self._avg_bins

    def length_norm(self, entity_id: str, b: float) -> float:
        """``L(u, E) = (1 - b) + b * relative_size`` from Eq. 2."""
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        return (1.0 - b) + b * self.relative_size(entity_id)

    def bins_with_idf(self, entity_id: str) -> BinsWithIdf:
        """Per-window ``((cell, idf), ...)`` tuples for the inner loop
        of the similarity computation (cached)."""
        cached = self._bins_with_idf.get(entity_id)
        if cached is not None:
            return cached
        log_size = self._log_size
        df = self._df
        annotated: BinsWithIdf = {}
        for window, cells in self._histories[entity_id].bins(self._level).items():
            annotated[window] = tuple(
                (cell, log_size - math.log(df[(window, cell)])) for cell in cells
            )
        self._bins_with_idf[entity_id] = annotated
        return annotated

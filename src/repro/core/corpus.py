"""Corpus-level statistics over one dataset's mobility histories.

The similarity score of Eq. 2 needs two dataset-level quantities:

* **IDF** (Eq. 3): ``idf(e, E) = ln(|U_E| / df(e))`` where ``df(e)`` is the
  number of histories containing time-location bin ``e`` — uniqueness makes
  a matching bin stronger evidence;
* **average history size**: the denominator of the BM25-style length
  normalisation ``L(u, E)``.

:class:`HistoryCorpus` precomputes both at a fixed similarity spatial level
and exposes per-entity bins annotated with their IDF so the inner similarity
loop does no dictionary lookups beyond one per window.

Two views of the same data are maintained:

* the **dict view** (:meth:`HistoryCorpus.bins_with_idf`) that the scalar
  similarity path iterates — per window, ``(cell, idf)`` tuples;
* the **array view** (:meth:`HistoryCorpus.arrays` +
  :meth:`HistoryCorpus.window_index`, backed by
  :meth:`HistoryCorpus.cell_table`) that the vectorized batch kernel
  (:mod:`repro.core.kernels`) consumes — one corpus-wide flat layout of
  cell ids, geometry-table slots and IDFs with per-entity window
  directories.  Cells within a window are sorted by cell id, which *is*
  Morton (Z-order) order in this grid (see :mod:`repro.geo.cell`), so
  consecutive slots reference spatially nearby centroids and the kernel's
  gathers stay cache-friendly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geo.cell import CellId
from .history import MobilityHistory

__all__ = ["HistoryCorpus", "CellTable", "CorpusArrays", "WindowIndex"]

#: bins_with_idf value type: per window, a tuple of (cell id, idf) pairs.
BinsWithIdf = Dict[int, Tuple[Tuple[int, float], ...]]


@dataclass(frozen=True)
class CellTable:
    """Contiguous geometry of every distinct cell in one corpus.

    ``slot_of`` maps a cell id to its row in the parallel arrays; rows are
    assigned in ascending cell-id order, i.e. Morton order within a face,
    so window slot ranges touch nearby rows.  ``lat``/``lng`` are the cell
    centre in radians (identical values to ``CellId.center()`` — they come
    from it), ``cos_lat`` the precomputed cosine the haversine needs, and
    ``radius`` the circumradius in metres used by the centre-distance
    lower bound of :meth:`repro.geo.cell.CellId.distance_meters`.
    """

    slot_of: Dict[int, int]
    cell_ids: np.ndarray  # (C,) uint64
    lat: np.ndarray  # (C,) float64, radians
    lng: np.ndarray  # (C,) float64, radians
    cos_lat: np.ndarray  # (C,) float64
    radius: np.ndarray  # (C,) float64, metres


@dataclass(frozen=True)
class CorpusArrays:
    """Every entity's time-location bins as one flat contiguous layout.

    ``cells`` / ``slots`` / ``idf`` are parallel arrays over all (entity,
    window, cell) bins of the corpus, window-major per entity with cells
    Morton-sorted inside each window.  Per entity, :class:`WindowIndex`
    records which slice of the flats each populated window occupies, so
    the batch kernel's gather is pure fancy indexing.
    """

    cells: np.ndarray  # (T,) uint64 cell ids
    slots: np.ndarray  # (T,) int64 rows of the corpus CellTable
    idf: np.ndarray  # (T,) float64 Eq. 3 values


@dataclass(frozen=True)
class WindowIndex:
    """One entity's directory into the corpus' :class:`CorpusArrays`.

    ``windows`` is sorted ascending; window ``windows[k]`` owns the flat
    slice ``[offsets[k], offsets[k] + counts[k])``.  ``slices`` is the
    same directory as a dict (window -> ``(offset, count)``, insertion
    order ascending): the batch kernel intersects *small* window sets
    through it (dict lookups beat sorted-array intersection there, and
    ``slices.keys().isdisjoint`` rejects non-overlapping pairs in O(min))
    while large histories use the sorted arrays.
    """

    windows: np.ndarray  # (W,) int64 populated leaf-window indices
    offsets: np.ndarray  # (W,) int64 starts into the corpus flats
    counts: np.ndarray  # (W,) int64 distinct cells per window
    slices: Dict[int, Tuple[int, int]]  # window -> (offset, count)

    def __len__(self) -> int:
        return len(self.windows)


class HistoryCorpus:
    """Histories of one dataset plus the statistics Eq. 2 and Eq. 3 need."""

    def __init__(
        self, histories: Dict[str, MobilityHistory], level: int
    ) -> None:
        """``level`` is the similarity spatial level (paper default 12)."""
        if not histories:
            raise ValueError("corpus needs at least one history")
        self._histories = histories
        self._level = level
        self._size = len(histories)

        document_frequency: Dict[Tuple[int, int], int] = {}
        total_bins = 0
        for history in histories.values():
            bins = history.bins(level)
            for window, cells in bins.items():
                total_bins += len(cells)
                for cell in cells:
                    key = (window, cell)
                    document_frequency[key] = document_frequency.get(key, 0) + 1
        self._df = document_frequency
        self._avg_bins = total_bins / self._size if self._size else 0.0
        self._log_size = math.log(self._size) if self._size else 0.0
        self._bins_with_idf: Dict[str, BinsWithIdf] = {}
        self._relative_size: Dict[str, float] = {}
        self._cell_table: Optional[CellTable] = None
        self._arrays: Optional[CorpusArrays] = None
        self._window_index: Dict[str, WindowIndex] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Similarity spatial level the statistics were computed at."""
        return self._level

    @property
    def size(self) -> int:
        """``|U_E|`` — number of entities in the dataset."""
        return self._size

    @property
    def avg_bins(self) -> float:
        """Average ``|H_u|`` across the corpus."""
        return self._avg_bins

    @property
    def entities(self) -> List[str]:
        """Entity ids present in the corpus."""
        return list(self._histories)

    def history(self, entity_id: str) -> MobilityHistory:
        """The history of one entity."""
        return self._histories[entity_id]

    def histories(self) -> Dict[str, MobilityHistory]:
        """All histories (do not mutate)."""
        return self._histories

    # ------------------------------------------------------------------
    # Eq. 3 and Eq. 2 support
    # ------------------------------------------------------------------
    def document_frequency(self, window: int, cell: int) -> int:
        """Number of histories containing time-location bin (window, cell)."""
        return self._df.get((window, cell), 0)

    def idf(self, window: int, cell: int) -> float:
        """``idf(e, E)`` of Eq. 3 (natural log).

        A bin no history contains would be infinitely surprising; it cannot
        arise for bins taken from corpus histories, so we raise rather than
        return infinity.
        """
        df = self._df.get((window, cell), 0)
        if df <= 0:
            raise KeyError(f"bin (window={window}, cell={cell}) not in corpus")
        return self._log_size - math.log(df)

    def relative_size(self, entity_id: str) -> float:
        """``|H_u| / avg(|H_u'|)`` — the BM25-style relative history size
        (cached; recomputing ``|H_u|`` per score call showed up in the
        batch kernel's normalisation profile)."""
        cached = self._relative_size.get(entity_id)
        if cached is not None:
            return cached
        if self._avg_bins <= 0:
            value = 1.0
        else:
            value = self._histories[entity_id].num_bins(self._level) / self._avg_bins
        self._relative_size[entity_id] = value
        return value

    def length_norm(self, entity_id: str, b: float) -> float:
        """``L(u, E) = (1 - b) + b * relative_size`` from Eq. 2."""
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        return (1.0 - b) + b * self.relative_size(entity_id)

    def bins_with_idf(self, entity_id: str) -> BinsWithIdf:
        """Per-window ``((cell, idf), ...)`` tuples for the inner loop
        of the similarity computation (cached)."""
        cached = self._bins_with_idf.get(entity_id)
        if cached is not None:
            return cached
        log_size = self._log_size
        df = self._df
        annotated: BinsWithIdf = {}
        for window, cells in self._histories[entity_id].bins(self._level).items():
            annotated[window] = tuple(
                (cell, log_size - math.log(df[(window, cell)])) for cell in cells
            )
        self._bins_with_idf[entity_id] = annotated
        return annotated

    # ------------------------------------------------------------------
    # array views (batch-kernel support)
    # ------------------------------------------------------------------
    def cell_table(self) -> CellTable:
        """Geometry arrays over every distinct cell of this corpus (cached).

        Built lazily on first use so purely-scalar runs never pay for it.
        Values are taken from the scalar :class:`~repro.geo.cell.CellId`
        geometry (centre, circumradius), so the batch kernel and the scalar
        oracle operate on the *same* per-cell constants.
        """
        if self._cell_table is not None:
            return self._cell_table
        distinct = sorted({cell for _, cell in self._df})
        count = len(distinct)
        lat = np.empty(count, dtype=np.float64)
        lng = np.empty(count, dtype=np.float64)
        radius = np.empty(count, dtype=np.float64)
        slot_of: Dict[int, int] = {}
        for slot, cell in enumerate(distinct):
            cell_id = CellId(cell)
            center = cell_id.center()
            lat[slot] = center.lat_radians
            lng[slot] = center.lng_radians
            radius[slot] = cell_id.circumradius_meters()
            slot_of[cell] = slot
        self._cell_table = CellTable(
            slot_of=slot_of,
            cell_ids=np.asarray(distinct, dtype=np.uint64),
            lat=lat,
            lng=lng,
            cos_lat=np.cos(lat),
            radius=radius,
        )
        return self._cell_table

    def arrays(self) -> CorpusArrays:
        """The corpus-wide flat bin arrays (cached; see :meth:`window_index`)."""
        if self._arrays is None:
            self._build_arrays()
        return self._arrays  # type: ignore[return-value]

    def window_index(self, entity_id: str) -> WindowIndex:
        """One entity's window directory into :meth:`arrays` (cached).

        Mirrors :meth:`bins_with_idf` exactly — same windows, same cell
        order (ascending id = Morton order), same IDF values — but laid
        out for the batch kernel's vectorized gathers.
        """
        if self._arrays is None:
            self._build_arrays()
        return self._window_index[entity_id]

    def _build_arrays(self) -> None:
        """Materialise the flat layout for every entity in one pass."""
        slot_of = self.cell_table().slot_of
        log_size = self._log_size
        df = self._df
        cells_flat: List[int] = []
        slots_flat: List[int] = []
        idf_flat: List[float] = []
        for entity_id, history in self._histories.items():
            bins = history.bins(self._level)
            windows = np.fromiter(sorted(bins), dtype=np.int64, count=len(bins))
            offsets = np.empty(len(bins), dtype=np.int64)
            counts = np.empty(len(bins), dtype=np.int64)
            slices: Dict[int, Tuple[int, int]] = {}
            for k, window in enumerate(windows.tolist()):
                cells = bins[window]
                offset = len(cells_flat)
                offsets[k] = offset
                counts[k] = len(cells)
                slices[window] = (offset, len(cells))
                for cell in cells:
                    cells_flat.append(cell)
                    slots_flat.append(slot_of[cell])
                    idf_flat.append(log_size - math.log(df[(window, cell)]))
            self._window_index[entity_id] = WindowIndex(
                windows=windows, offsets=offsets, counts=counts, slices=slices
            )
        self._arrays = CorpusArrays(
            cells=np.asarray(cells_flat, dtype=np.uint64),
            slots=np.asarray(slots_flat, dtype=np.int64),
            idf=np.asarray(idf_flat, dtype=np.float64),
        )

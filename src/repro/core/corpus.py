"""Corpus-level statistics over one dataset's mobility histories.

The similarity score of Eq. 2 needs two dataset-level quantities:

* **IDF** (Eq. 3): ``idf(e, E) = ln(|U_E| / df(e))`` where ``df(e)`` is the
  number of histories containing time-location bin ``e`` — uniqueness makes
  a matching bin stronger evidence;
* **average history size**: the denominator of the BM25-style length
  normalisation ``L(u, E)``.

:class:`HistoryCorpus` precomputes both at a fixed similarity spatial level
and exposes per-entity bins annotated with their IDF so the inner similarity
loop does no dictionary lookups beyond one per window.

Two views of the same data are maintained:

* the **dict view** (:meth:`HistoryCorpus.bins_with_idf`) that the scalar
  similarity path iterates — per window, ``(cell, idf)`` tuples;
* the **array view** (:meth:`HistoryCorpus.arrays` +
  :meth:`HistoryCorpus.window_index`, backed by
  :meth:`HistoryCorpus.cell_table`) that the vectorized batch kernel
  (:mod:`repro.core.kernels`) consumes — one corpus-wide flat layout of
  cell ids, geometry-table slots and IDFs with per-entity window
  directories.  Cells within a window are sorted by cell id, which *is*
  Morton (Z-order) order in this grid (see :mod:`repro.geo.cell`), so
  consecutive slots reference spatially nearby centroids and the kernel's
  gathers stay cache-friendly.

Streaming support — *delta maintenance instead of rebuilds*
-----------------------------------------------------------

A corpus is **live**: it keeps references to the history objects it was
built from, remembers each history's
:attr:`~repro.core.history.MobilityHistory.version`, and
:meth:`HistoryCorpus.refresh` folds any growth into the statistics and
array views *in place*:

* document frequencies are updated by retracting the dirty entities' old
  bin snapshots and ingesting their new ones (O(changed bins), not
  O(corpus));
* the flat arrays are **extended**, not re-materialised: a dirty entity's
  new layout is appended and its :class:`WindowIndex` repointed, leaving
  the old slice as garbage that a compaction pass reclaims once it
  outweighs the live data; new cells append rows to the
  :class:`CellTable`;
* the IDF column is re-derived in one vectorized pass from the updated
  document-frequency table (every flat entry remembers its df slot), so
  clean entities' rows pick up global IDF movement without any per-entity
  Python work.

**Removal is a first-class delta too** (the retention path of
:mod:`repro.core.retention`): deleting an entity from the backing
histories mapping and calling :meth:`refresh` retracts its bin snapshot
from the document frequencies, drops its window directory (the flat slice
becomes garbage, reclaimed eagerly through the compaction pass so
steady-state memory tracks the *live* entities), reclaims df slots no
surviving entity references, and reports the eviction on
:attr:`CorpusDelta.evicted`.  Remaining entities see the same IDF-drift
accounting as growth deltas — a retired holder moves a shared bin's
document frequency exactly like a new one does.

:meth:`refresh` reports what changed as a :class:`CorpusDelta` — the dirty
entity set plus the per-bin IDF drift — which is exactly what
:class:`~repro.core.streaming.StreamingLinker` needs to decide which cached
pair scores survive a delta.

Doctest — a two-entity corpus, grown incrementally:

>>> import numpy as np
>>> from repro.core.history import MobilityHistory
>>> from repro.temporal import Windowing
>>> w = Windowing(0.0, 900.0)
>>> def history(eid, t, lat, lng):
...     return MobilityHistory.from_columns(
...         eid, np.array(t), np.array(lat), np.array(lng), w, 12)
>>> histories = {
...     "a": history("a", [10.0], [37.77], [-122.42]),
...     "b": history("b", [20.0], [37.77], [-122.42]),
... }
>>> corpus = HistoryCorpus(histories, level=12)
>>> corpus.size, corpus.avg_bins
(2, 1.0)
>>> histories["a"].extend(np.array([1000.0]), np.array([37.90]), np.array([-122.10]))
>>> delta = corpus.refresh()
>>> delta.dirty_entities
('a',)
>>> corpus.avg_bins
1.5
>>> corpus.refresh().dirty_entities   # nothing changed since
()

Removal delta — retire "b" and the statistics follow:

>>> del histories["b"]
>>> corpus.refresh().evicted
('b',)
>>> corpus.size, corpus.avg_bins
(1, 2.0)
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo.cell import CellId
from .history import MobilityHistory

__all__ = [
    "HistoryCorpus",
    "CorpusDelta",
    "CellTable",
    "CorpusArrays",
    "WindowIndex",
    "content_fingerprint",
]


def content_fingerprint(
    histories: Dict[str, MobilityHistory], level: int
) -> str:
    """A stable digest of a histories mapping's (entity, window, cell)
    content at one spatial level.

    Unlike the process-local default cache tokens (a per-process counter),
    two corpora built from identical data in *different processes* share
    this fingerprint — which is what lets a persisted
    :class:`~repro.core.score_cache.ScoreCache`
    (:meth:`~repro.core.score_cache.ScoreCache.save` /
    :meth:`~repro.core.score_cache.ScoreCache.load`) warm-start a later
    run: the pipeline keys its corpora by content whenever a cache is
    attached (see :class:`~repro.pipeline.stages.PrepareStage`).  Cost is
    one pass over the bins — negligible next to scoring them.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"level={level}".encode())
    for entity_id in sorted(histories):
        digest.update(b"\x00e\x00")
        digest.update(entity_id.encode())
        bins = histories[entity_id].bins(level)
        for window in sorted(bins):
            digest.update(b"\x00w")
            digest.update(str(window).encode())
            for cell in bins[window]:
                digest.update(int(cell).to_bytes(8, "little"))
    return digest.hexdigest()

#: bins_with_idf value type: per window, a tuple of (cell id, idf) pairs.
BinsWithIdf = Dict[int, Tuple[Tuple[int, float], ...]]

#: One entity's bins snapshot: ``{window: (cells...)}`` as returned by
#: :meth:`repro.core.history.MobilityHistory.bins`.
BinsSnapshot = Dict[int, Tuple[int, ...]]

#: Source of default per-corpus cache tokens (see
#: :attr:`HistoryCorpus.cache_token`).  A plain guarded counter rather
#: than ``itertools.count()`` so a restored snapshot can *reserve* its
#: tokens: without the floor bump, a linker restored into a fresh
#: process could collide its persisted ``("corpus", n)`` token with a
#: new corpus's process-local ``n`` and silently share score-cache rows.
_TOKEN_LOCK = threading.Lock()
_NEXT_TOKEN = 0


def _fresh_token() -> int:
    global _NEXT_TOKEN
    with _TOKEN_LOCK:
        token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
    return token


def reserve_cache_token(token: Hashable) -> None:
    """Bump the default-token floor past a restored ``("corpus", n)``
    token (no-op for tokens of any other shape)."""
    if (
        isinstance(token, tuple)
        and len(token) == 2
        and token[0] == "corpus"
        and isinstance(token[1], int)
    ):
        global _NEXT_TOKEN
        with _TOKEN_LOCK:
            _NEXT_TOKEN = max(_NEXT_TOKEN, token[1] + 1)

#: Compact the flat arrays once live entries drop below this fraction of
#: the total (garbage from superseded entity slices dominates).
_COMPACT_LIVE_FRACTION = 0.5


@dataclass(frozen=True)
class CellTable:
    """Contiguous geometry of every distinct cell in one corpus.

    ``slot_of`` maps a cell id to its row in the parallel arrays.  At
    first build, rows are assigned in ascending cell-id order (Morton
    order within a face) so window slot ranges touch nearby rows; cells
    discovered by later :meth:`HistoryCorpus.refresh` deltas append in
    discovery order.  ``lat``/``lng`` are the cell centre in radians
    (identical values to ``CellId.center()`` — they come from it),
    ``cos_lat`` the precomputed cosine the haversine needs, and ``radius``
    the circumradius in metres used by the centre-distance lower bound of
    :meth:`repro.geo.cell.CellId.distance_meters`.
    """

    slot_of: Dict[int, int]
    cell_ids: np.ndarray  # (C,) uint64
    lat: np.ndarray  # (C,) float64, radians
    lng: np.ndarray  # (C,) float64, radians
    cos_lat: np.ndarray  # (C,) float64
    radius: np.ndarray  # (C,) float64, metres


@dataclass(frozen=True)
class CorpusArrays:
    """Every entity's time-location bins as one flat contiguous layout.

    ``cells`` / ``slots`` / ``idf`` are parallel arrays over all (entity,
    window, cell) bins of the corpus, window-major per entity with cells
    Morton-sorted inside each window.  Per entity, :class:`WindowIndex`
    records which slice of the flats each populated window occupies, so
    the batch kernel's gather is pure fancy indexing.

    After a :meth:`HistoryCorpus.refresh` the flats may contain *garbage*
    slices (superseded entity layouts); they are unreachable through any
    current :class:`WindowIndex` and are reclaimed by compaction.  A
    ``CorpusArrays`` instance obtained before a refresh must not be mixed
    with window indices obtained after one.
    """

    cells: np.ndarray  # (T,) uint64 cell ids
    slots: np.ndarray  # (T,) int64 rows of the corpus CellTable
    idf: np.ndarray  # (T,) float64 Eq. 3 values


@dataclass(frozen=True)
class WindowIndex:
    """One entity's directory into the corpus' :class:`CorpusArrays`.

    ``windows`` is sorted ascending; window ``windows[k]`` owns the flat
    slice ``[offsets[k], offsets[k] + counts[k])``.  ``slices`` is the
    same directory as a dict (window -> ``(offset, count)``, insertion
    order ascending): the batch kernel intersects *small* window sets
    through it (dict lookups beat sorted-array intersection there, and
    ``slices.keys().isdisjoint`` rejects non-overlapping pairs in O(min))
    while large histories use the sorted arrays.
    """

    windows: np.ndarray  # (W,) int64 populated leaf-window indices
    offsets: np.ndarray  # (W,) int64 starts into the corpus flats
    counts: np.ndarray  # (W,) int64 distinct cells per window
    slices: Dict[int, Tuple[int, int]]  # window -> (offset, count)

    def __len__(self) -> int:
        return len(self.windows)


@dataclass(frozen=True)
class CorpusDelta:
    """What one :meth:`HistoryCorpus.refresh` changed.

    Attributes
    ----------
    dirty_entities:
        Entities whose history grew (or appeared) since the last refresh.
    evicted:
        Entities removed from the backing histories mapping since the
        last refresh (entity retirement — see
        :mod:`repro.core.retention`); their bins were retracted from the
        statistics and their flat slices reclaimed.
    idf_drift:
        ``{(window, cell): |Δidf|}`` for bins whose document frequency
        changed while remaining shared (old df > 0 and new df > 0).  Bins
        appearing for the first time, or vanishing entirely, are held
        only by dirty entities and need no entry.
    global_drift:
        ``|Δ ln |U_E||`` — the IDF shift every *untouched* bin experienced
        because the corpus size changed (zero when no entity was added).
    """

    dirty_entities: Tuple[str, ...]
    idf_drift: Dict[Tuple[int, int], float] = field(default_factory=dict)
    global_drift: float = 0.0
    evicted: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        """True when the refresh found nothing to do."""
        return not self.dirty_entities and not self.evicted


class HistoryCorpus:
    """Histories of one dataset plus the statistics Eq. 2 and Eq. 3 need."""

    def __init__(
        self,
        histories: Dict[str, MobilityHistory],
        level: int,
        cache_token: Optional[Hashable] = None,
    ) -> None:
        """``level`` is the similarity spatial level (paper default 12).

        ``cache_token`` identifies this corpus inside a shared
        :class:`~repro.core.score_cache.ScoreCache`; by default every
        corpus gets a fresh token (no cross-corpus reuse).  Callers that
        *know* two corpora are statistically identical (same histories,
        same level — e.g. repeated tuning sweeps) may pass a stable token
        to share cached scores between them.
        """
        if not histories:
            raise ValueError("corpus needs at least one history")
        self._histories = histories
        self._level = level
        #: Identity of this corpus inside a shared ScoreCache.
        self.cache_token: Hashable = (
            ("corpus", _fresh_token()) if cache_token is None else cache_token
        )

        # Document frequencies: key -> slot into the parallel count list
        # (slots are never recycled, so flat arrays can reference them
        # across refreshes and re-derive IDFs vectorized).
        self._df_slot: Dict[Tuple[int, int], int] = {}
        self._df_counts: List[float] = []
        self._total_bins = 0
        self._entity_bins: Dict[str, BinsSnapshot] = {}
        self._entity_versions: Dict[str, int] = {}
        for entity_id, history in histories.items():
            self._ingest_entity(entity_id, history, touched=None)
        self._size = len(histories)
        self._avg_bins = self._total_bins / self._size if self._size else 0.0
        self._log_size = math.log(self._size) if self._size else 0.0

        self._bins_with_idf: Dict[str, BinsWithIdf] = {}
        self._relative_size: Dict[str, float] = {}
        self._cell_table: Optional[CellTable] = None
        self._arrays: Optional[CorpusArrays] = None
        self._window_index: Dict[str, WindowIndex] = {}
        # Flat backing stores of the array view (built lazily).  In
        # ``storage="disk"`` mode (after :meth:`spill`) these are
        # read-only memmaps over a ChunkedColumnStore; everywhere that
        # replaces them re-derives the maps from the store instead.
        self._flat_cells: Optional[np.ndarray] = None
        self._flat_slots: Optional[np.ndarray] = None
        self._flat_keys: Optional[np.ndarray] = None
        self._flat_idf: Optional[np.ndarray] = None
        self._flat_live = 0
        self._store = None  # Optional[repro.store.ChunkedColumnStore]
        self._chunk_cache = None  # Optional[repro.store.ChunkLRU]

    @classmethod
    def from_checkpoint(
        cls,
        histories: Dict[str, MobilityHistory],
        level: int,
        state: Dict[str, object],
        cache_token: Optional[Hashable] = None,
    ) -> "HistoryCorpus":
        """Rebuild a corpus from a :meth:`checkpoint` snapshot without
        re-ingesting ``histories`` (the snapshot-restore path of
        :meth:`repro.core.streaming.StreamingLinker.restore`).

        ``histories`` must be the mapping the snapshot was taken over —
        the corpus only keeps the reference; all statistics come from
        ``state``.  A restored default token is reserved so later
        corpora in this process cannot collide with it.
        """
        corpus = cls.__new__(cls)
        corpus._histories = histories
        corpus._level = level
        corpus.cache_token = (
            ("corpus", _fresh_token()) if cache_token is None else cache_token
        )
        reserve_cache_token(corpus.cache_token)
        corpus._store = None
        corpus._chunk_cache = None
        corpus.restore(state)
        return corpus

    # ------------------------------------------------------------------
    # df bookkeeping
    # ------------------------------------------------------------------
    def _ingest_entity(
        self,
        entity_id: str,
        history: MobilityHistory,
        touched: Optional[Dict[Tuple[int, int], float]],
    ) -> BinsSnapshot:
        """Add one history's bins to the document frequencies and snapshot
        them (``touched`` collects pre-change counts during refreshes)."""
        bins = history.bins(self._level)
        df_slot = self._df_slot
        counts = self._df_counts
        for window, cells in bins.items():
            self._total_bins += len(cells)
            for cell in cells:
                key = (window, cell)
                slot = df_slot.get(key)
                if slot is None:
                    df_slot[key] = len(counts)
                    if touched is not None:
                        touched.setdefault(key, 0.0)
                    counts.append(1.0)
                else:
                    if touched is not None:
                        touched.setdefault(key, counts[slot])
                    counts[slot] += 1.0
        self._entity_bins[entity_id] = bins
        self._entity_versions[entity_id] = history.version
        return bins

    def _retract_bins(
        self, bins: BinsSnapshot, touched: Dict[Tuple[int, int], float]
    ) -> None:
        """Remove one superseded bins snapshot from the document
        frequencies."""
        df_slot = self._df_slot
        counts = self._df_counts
        for window, cells in bins.items():
            self._total_bins -= len(cells)
            for cell in cells:
                key = (window, cell)
                slot = df_slot[key]
                touched.setdefault(key, counts[slot])
                counts[slot] -= 1.0

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> CorpusDelta:
        """Fold history growth — and entity removal — into the corpus,
        in place.

        Scans the backing histories for version changes (and new
        entities), re-ingests exactly those, updates size / average /
        document frequencies, extends the array views, and invalidates the
        per-entity caches the delta made stale.  Cost is proportional to
        the changed histories (plus one vectorized IDF pass over the
        flats), not to the corpus.

        Entities *deleted* from the backing mapping since the last refresh
        are retired symmetrically: their bin snapshots are retracted, their
        flat slices become garbage reclaimed eagerly by compaction, and df
        slots no surviving entity references are recycled — so a corpus on
        a retention-bounded stream stays bounded-memory.  They are reported
        on :attr:`CorpusDelta.evicted`.
        """
        if not self._histories:
            # Check eligibility before touching any state: raising midway
            # through retraction would leave the statistics inconsistent.
            raise ValueError("refresh would leave the corpus empty")
        evicted: List[str] = [
            entity_id
            for entity_id in self._entity_versions
            if entity_id not in self._histories
        ]
        dirty: List[str] = []
        touched: Dict[Tuple[int, int], float] = {}
        old_log_size = self._log_size
        for entity_id in evicted:
            self._retract_bins(self._entity_bins.pop(entity_id), touched)
            del self._entity_versions[entity_id]
        for entity_id, history in self._histories.items():
            if self._entity_versions.get(entity_id) == history.version:
                continue
            dirty.append(entity_id)
            old_bins = self._entity_bins.get(entity_id)
            if old_bins is not None:
                self._retract_bins(old_bins, touched)
            self._ingest_entity(entity_id, history, touched)
        if not dirty and not evicted:
            return CorpusDelta(())

        self._size = len(self._histories)
        self._avg_bins = self._total_bins / self._size if self._size else 0.0
        self._log_size = math.log(self._size) if self._size else 0.0

        # The dict-view caches embed IDFs / the corpus average; both are
        # lazily rebuilt, so wholesale invalidation is cheap and safe.
        self._bins_with_idf.clear()
        self._relative_size.clear()

        global_drift = abs(self._log_size - old_log_size)
        drift: Dict[Tuple[int, int], float] = {}
        counts = self._df_counts
        df_slot = self._df_slot
        for key, before in touched.items():
            after = counts[df_slot[key]]
            if before <= 0.0 or after <= 0.0 or after == before:
                continue  # new/vanished bins belong to dirty entities only
            drift[key] = abs(
                (self._log_size - math.log(after))
                - (old_log_size - math.log(before))
            )

        self._extend_views(dirty, evicted)
        if evicted:
            self._compact_df_slots()
        return CorpusDelta(tuple(dirty), drift, global_drift, tuple(evicted))

    def entities_with_bins(
        self, keys: Iterable[Tuple[int, int]]
    ) -> Set[str]:
        """Entities whose snapshot holds any of the given (window, cell)
        bins — the holders a document-frequency change couples to."""
        by_window: Dict[int, Set[int]] = {}
        for window, cell in keys:
            by_window.setdefault(window, set()).add(cell)
        if not by_window:
            return set()
        holders: Set[str] = set()
        for entity_id, bins in self._entity_bins.items():
            for window, cells in by_window.items():
                present = bins.get(window)
                if present is not None and not cells.isdisjoint(present):
                    holders.add(entity_id)
                    break
        return holders

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Similarity spatial level the statistics were computed at."""
        return self._level

    @property
    def storage(self) -> str:
        """``"memory"`` (flat views on the heap) or ``"disk"`` (flat
        views memmapped over a chunked column store — see :meth:`spill`)."""
        return "memory" if self._store is None else "disk"

    @property
    def chunk_cache(self):
        """The disk backend's chunk LRU (``None`` in memory mode) — its
        ``resident_bytes`` is the out-of-core memory ledger."""
        return self._chunk_cache

    @property
    def size(self) -> int:
        """``|U_E|`` — number of entities in the dataset."""
        return self._size

    @property
    def avg_bins(self) -> float:
        """Average ``|H_u|`` across the corpus."""
        return self._avg_bins

    def avg_cells_per_window(self) -> float:
        """Mean distinct cells per populated (entity, window) pair — the
        *density* signal the scoring stage's workload-aware block-size
        heuristic reads (dense corpora produce matrix-shaped interactions
        whose padded power-of-two buckets grow superlinearly with block
        size; see :func:`~repro.pipeline.stages.resolve_score_block_size`).
        """
        populated = sum(len(bins) for bins in self._entity_bins.values())
        return self._total_bins / populated if populated else 0.0

    @property
    def entities(self) -> List[str]:
        """Entity ids present in the corpus."""
        return list(self._histories)

    def history(self, entity_id: str) -> MobilityHistory:
        """The history of one entity."""
        return self._histories[entity_id]

    def histories(self) -> Dict[str, MobilityHistory]:
        """All histories (do not mutate)."""
        return self._histories

    # ------------------------------------------------------------------
    # Eq. 3 and Eq. 2 support
    # ------------------------------------------------------------------
    def document_frequency(self, window: int, cell: int) -> int:
        """Number of histories containing time-location bin (window, cell)."""
        slot = self._df_slot.get((window, cell))
        return 0 if slot is None else int(self._df_counts[slot])

    def idf(self, window: int, cell: int) -> float:
        """``idf(e, E)`` of Eq. 3 (natural log).

        A bin no history contains would be infinitely surprising; it cannot
        arise for bins taken from corpus histories, so we raise rather than
        return infinity.
        """
        slot = self._df_slot.get((window, cell))
        df = 0.0 if slot is None else self._df_counts[slot]
        if df <= 0:
            raise KeyError(f"bin (window={window}, cell={cell}) not in corpus")
        return self._log_size - math.log(df)

    def relative_size(self, entity_id: str) -> float:
        """``|H_u| / avg(|H_u'|)`` — the BM25-style relative history size
        (cached; recomputing ``|H_u|`` per score call showed up in the
        batch kernel's normalisation profile)."""
        cached = self._relative_size.get(entity_id)
        if cached is not None:
            return cached
        if self._avg_bins <= 0:
            value = 1.0
        else:
            value = self._histories[entity_id].num_bins(self._level) / self._avg_bins
        self._relative_size[entity_id] = value
        return value

    def length_norm(self, entity_id: str, b: float) -> float:
        """``L(u, E) = (1 - b) + b * relative_size`` from Eq. 2."""
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        return (1.0 - b) + b * self.relative_size(entity_id)

    def length_norms(self, entity_ids: Iterable[str], b: float) -> np.ndarray:
        """Vectorized :meth:`length_norm` over many entities (one array
        for the batch scoring path's normalisation)."""
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        relative = self.relative_size
        return (1.0 - b) + b * np.fromiter(
            (relative(entity_id) for entity_id in entity_ids), np.float64
        )

    def history_versions(self, entity_ids: Iterable[str]) -> np.ndarray:
        """The backing histories' current version counters as one int64
        array — the key column of a
        :meth:`~repro.core.score_cache.ScoreCache.lookup_batch`."""
        histories = self._histories
        return np.fromiter(
            (histories[entity_id].version for entity_id in entity_ids),
            np.int64,
        )

    def bins_with_idf(self, entity_id: str) -> BinsWithIdf:
        """Per-window ``((cell, idf), ...)`` tuples for the inner loop
        of the similarity computation (cached)."""
        cached = self._bins_with_idf.get(entity_id)
        if cached is not None:
            return cached
        log_size = self._log_size
        df_slot = self._df_slot
        counts = self._df_counts
        annotated: BinsWithIdf = {}
        for window, cells in self._histories[entity_id].bins(self._level).items():
            annotated[window] = tuple(
                (cell, log_size - math.log(counts[df_slot[(window, cell)]]))
                for cell in cells
            )
        self._bins_with_idf[entity_id] = annotated
        return annotated

    # ------------------------------------------------------------------
    # array views (batch-kernel support)
    # ------------------------------------------------------------------
    def cell_table(self) -> CellTable:
        """Geometry arrays over every distinct cell of this corpus (cached).

        Built lazily on first use so purely-scalar runs never pay for it;
        extended in place (new rows appended) when a refresh discovers new
        cells.  Values are taken from the scalar
        :class:`~repro.geo.cell.CellId` geometry (centre, circumradius), so
        the batch kernel and the scalar oracle operate on the *same*
        per-cell constants.
        """
        if self._cell_table is not None:
            return self._cell_table
        distinct = sorted({cell for _, cell in self._df_slot})
        count = len(distinct)
        lat = np.empty(count, dtype=np.float64)
        lng = np.empty(count, dtype=np.float64)
        radius = np.empty(count, dtype=np.float64)
        slot_of: Dict[int, int] = {}
        for slot, cell in enumerate(distinct):
            cell_id = CellId(cell)
            center = cell_id.center()
            lat[slot] = center.lat_radians
            lng[slot] = center.lng_radians
            radius[slot] = cell_id.circumradius_meters()
            slot_of[cell] = slot
        self._cell_table = CellTable(
            slot_of=slot_of,
            cell_ids=np.asarray(distinct, dtype=np.uint64),
            lat=lat,
            lng=lng,
            cos_lat=np.cos(lat),
            radius=radius,
        )
        return self._cell_table

    def _extend_cell_table(self, cells: Iterable[int]) -> None:
        """Append geometry rows for cells the table does not know yet."""
        table = self._cell_table
        if table is None:
            return  # never built; the lazy build will see everything
        fresh = sorted({cell for cell in cells if cell not in table.slot_of})
        if not fresh:
            return
        count = len(fresh)
        lat = np.empty(count, dtype=np.float64)
        lng = np.empty(count, dtype=np.float64)
        radius = np.empty(count, dtype=np.float64)
        # Copy the directory: the superseded CellTable is frozen, and
        # callers may still hold it — its slot_of must keep describing
        # exactly the rows its arrays have.
        slot_of = dict(table.slot_of)
        base = len(table.cell_ids)
        for offset, cell in enumerate(fresh):
            cell_id = CellId(cell)
            center = cell_id.center()
            lat[offset] = center.lat_radians
            lng[offset] = center.lng_radians
            radius[offset] = cell_id.circumradius_meters()
            slot_of[cell] = base + offset
        self._cell_table = CellTable(
            slot_of=slot_of,
            cell_ids=np.concatenate(
                [table.cell_ids, np.asarray(fresh, dtype=np.uint64)]
            ),
            lat=np.concatenate([table.lat, lat]),
            lng=np.concatenate([table.lng, lng]),
            cos_lat=np.concatenate([table.cos_lat, np.cos(lat)]),
            radius=np.concatenate([table.radius, radius]),
        )

    def arrays(self) -> CorpusArrays:
        """The corpus-wide flat bin arrays (cached; see :meth:`window_index`)."""
        if self._flat_cells is None:
            self._build_arrays()
        if self._arrays is None:
            self._arrays = CorpusArrays(
                cells=self._flat_cells,
                slots=self._flat_slots,
                idf=self._flat_idf,
            )
        return self._arrays

    def window_index(self, entity_id: str) -> WindowIndex:
        """One entity's window directory into :meth:`arrays` (cached).

        Mirrors :meth:`bins_with_idf` exactly — same windows, same cell
        order (ascending id = Morton order), same IDF values — but laid
        out for the batch kernel's vectorized gathers.
        """
        if self._flat_cells is None:
            self._build_arrays()
        return self._window_index[entity_id]

    def _entity_layout(
        self, entity_id: str, base: int,
        cells_out: List[int], slots_out: List[int], keys_out: List[int],
    ) -> WindowIndex:
        """Append one entity's flat layout (starting at absolute offset
        ``base + len(cells_out)``) and return its directory."""
        slot_of = self.cell_table().slot_of
        df_slot = self._df_slot
        bins = self._entity_bins[entity_id]
        windows = np.fromiter(sorted(bins), dtype=np.int64, count=len(bins))
        offsets = np.empty(len(bins), dtype=np.int64)
        counts = np.empty(len(bins), dtype=np.int64)
        slices: Dict[int, Tuple[int, int]] = {}
        for k, window in enumerate(windows.tolist()):
            cells = bins[window]
            offset = base + len(cells_out)
            offsets[k] = offset
            counts[k] = len(cells)
            slices[window] = (offset, len(cells))
            for cell in cells:
                cells_out.append(cell)
                slots_out.append(slot_of[cell])
                keys_out.append(df_slot[(window, cell)])
        return WindowIndex(
            windows=windows, offsets=offsets, counts=counts, slices=slices
        )

    def _refresh_idf_flat(self) -> None:
        """Re-derive the flat IDF column from the current document
        frequencies (garbage entries may reference retired bins; clamping
        keeps them finite — they are never gathered).

        Memory mode is one vectorized pass.  Disk mode never materialises
        the key column: it streams chunk by chunk through the chunk LRU
        and writes the derived IDFs into a fresh generation of the
        ``idf`` column, keeping resident memory at the cache bound.
        """
        counts = np.asarray(self._df_counts, dtype=np.float64)
        if self._store is None:
            self._flat_idf = self._log_size - np.log(
                np.maximum(counts[self._flat_keys], 1.0)
            )
            return
        writer = self._store.rewriter("idf", np.float64)
        try:
            for _start, keys in self._chunk_cache.iter_chunks("keys"):
                writer.append(
                    self._log_size - np.log(np.maximum(counts[keys], 1.0))
                )
        except BaseException:
            writer.abort()
            raise
        writer.commit()
        self._remap_flats()

    # ------------------------------------------------------------------
    # disk backend (out-of-core flats)
    # ------------------------------------------------------------------
    def spill(
        self,
        directory: Path,
        *,
        chunk_rows: Optional[int] = None,
        cache_chunks: int = 8,
    ) -> None:
        """Move the flat array views out of core into a chunked column
        store under ``directory`` (``storage`` becomes ``"disk"``).

        Entities are first re-packed in Hilbert order of a representative
        cell (the first cell of each entity's layout) so chunks hold
        spatially adjacent entities — per-entity slices are untouched, so
        every score and link is bit-identical to memory mode.  After the
        spill, ``arrays()`` / ``window_index()`` / ``cell_table()`` serve
        the same objects over read-only memmaps: kernels and the scalar
        oracle are unchanged, and maintenance passes stream through a
        ``cache_chunks``-bounded chunk LRU instead of materialising
        columns.
        """
        from ..store.chunks import DEFAULT_CHUNK_ROWS, ChunkLRU, ChunkedColumnStore
        from ..store.hilbert import hilbert_key

        if self._store is not None:
            raise RuntimeError("corpus flats are already disk-backed")
        if self._flat_cells is None:
            self._build_arrays()
        self._compact()  # drop garbage before ordering by the live layout
        cells = self._flat_cells

        def _entity_key(item: Tuple[str, WindowIndex]) -> Tuple[int, str]:
            entity_id, index = item
            if not len(index.offsets):
                return (-1, entity_id)
            return (int(hilbert_key(int(cells[index.offsets[0]]))), entity_id)

        self._window_index = dict(
            sorted(self._window_index.items(), key=_entity_key)
        )
        self._compact()  # re-pack the flats in the Hilbert entity order
        store = ChunkedColumnStore.create(
            directory,
            chunk_rows=chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS,
        )
        store.put("cells", self._flat_cells)
        store.put("slots", self._flat_slots)
        store.put("keys", self._flat_keys)
        store.put("idf", self._flat_idf)
        self._store = store
        self._chunk_cache = ChunkLRU(store, cache_chunks)
        self._remap_flats()

    def _remap_flats(self) -> None:
        """Repoint the flat views at the store's current columns."""
        store = self._store
        self._flat_cells = store.column("cells")
        self._flat_slots = store.column("slots")
        self._flat_keys = store.column("keys")
        self._flat_idf = store.column("idf")
        self._arrays = None

    def _build_arrays(self) -> None:
        """Materialise the flat layout for every entity in one pass."""
        cells_flat: List[int] = []
        slots_flat: List[int] = []
        keys_flat: List[int] = []
        for entity_id in self._histories:
            self._window_index[entity_id] = self._entity_layout(
                entity_id, 0, cells_flat, slots_flat, keys_flat
            )
        self._flat_cells = np.asarray(cells_flat, dtype=np.uint64)
        self._flat_slots = np.asarray(slots_flat, dtype=np.int64)
        self._flat_keys = np.asarray(keys_flat, dtype=np.int64)
        self._flat_live = len(cells_flat)
        self._refresh_idf_flat()
        self._arrays = None

    def _extend_views(
        self, dirty: List[str], evicted: Sequence[str] = ()
    ) -> None:
        """Append dirty entities' new layouts to the flats and repoint
        their window directories (the superseded slices become garbage);
        drop evicted entities' directories outright."""
        self._extend_cell_table(
            cell
            for entity_id in dirty
            for cells in self._entity_bins[entity_id].values()
            for cell in cells
        )
        if self._flat_cells is None:
            return  # array views never built; nothing to extend
        for entity_id in evicted:
            old_index = self._window_index.pop(entity_id, None)
            if old_index is not None:
                self._flat_live -= int(old_index.counts.sum())
        base = len(self._flat_cells)
        cells_new: List[int] = []
        slots_new: List[int] = []
        keys_new: List[int] = []
        for entity_id in dirty:
            old_index = self._window_index.get(entity_id)
            if old_index is not None:
                self._flat_live -= int(old_index.counts.sum())
            index = self._entity_layout(
                entity_id, base, cells_new, slots_new, keys_new
            )
            self._window_index[entity_id] = index
            self._flat_live += int(index.counts.sum())
        if cells_new:
            if self._store is not None:
                # Disk mode: chunks are written once — new layouts append
                # to the column files at the recorded base offset and the
                # memmap views are re-derived.
                self._store.extend(
                    "cells", np.asarray(cells_new, dtype=np.uint64), base
                )
                self._store.extend(
                    "slots", np.asarray(slots_new, dtype=np.int64), base
                )
                self._store.extend(
                    "keys", np.asarray(keys_new, dtype=np.int64), base
                )
                self._store.extend(
                    "idf", np.zeros(len(cells_new), dtype=np.float64), base
                )
                self._remap_flats()
            else:
                self._flat_cells = np.concatenate(
                    [self._flat_cells, np.asarray(cells_new, dtype=np.uint64)]
                )
                self._flat_slots = np.concatenate(
                    [self._flat_slots, np.asarray(slots_new, dtype=np.int64)]
                )
                self._flat_keys = np.concatenate(
                    [self._flat_keys, np.asarray(keys_new, dtype=np.int64)]
                )
        self._refresh_idf_flat()
        self._arrays = None
        if evicted:
            # Eviction exists to bound memory: reclaim the retired slices
            # now rather than waiting for garbage to outweigh live data,
            # so steady-state flats track the live entities exactly.
            if self._flat_live < len(self._flat_cells):
                self._compact()
        elif self._flat_live < _COMPACT_LIVE_FRACTION * len(self._flat_cells):
            self._compact()

    def _compact(self) -> None:
        """Drop garbage slices: gather every entity's live flat entries
        into fresh contiguous arrays and rebase the window directories."""
        gathers: List[np.ndarray] = []
        cursor = 0
        for entity_id, index in self._window_index.items():
            total = int(index.counts.sum())
            if not total:
                continue
            within = np.concatenate(
                ([0], np.cumsum(index.counts)[:-1])
            )
            gathers.append(
                np.repeat(index.offsets - within, index.counts)
                + np.arange(total)
            )
            offsets = cursor + within
            self._window_index[entity_id] = WindowIndex(
                windows=index.windows,
                offsets=offsets,
                counts=index.counts,
                slices={
                    int(w): (int(o), int(c))
                    for w, o, c in zip(
                        index.windows.tolist(),
                        offsets.tolist(),
                        index.counts.tolist(),
                    )
                },
            )
            cursor += total
        order = (
            np.concatenate(gathers)
            if gathers
            else np.empty(0, dtype=np.int64)
        )
        if self._store is not None:
            # Disk mode: stream the gather — each output chunk fancy-
            # indexes the source memmap (touching only the pages it
            # needs) into a fresh generation of every column.
            chunk_rows = self._store.chunk_rows
            for name, source in (
                ("cells", self._flat_cells),
                ("slots", self._flat_slots),
                ("keys", self._flat_keys),
                ("idf", self._flat_idf),
            ):
                writer = self._store.rewriter(name, source.dtype)
                try:
                    for start in range(0, len(order), chunk_rows):
                        writer.append(source[order[start : start + chunk_rows]])
                except BaseException:
                    writer.abort()
                    raise
                writer.commit()
            self._flat_live = len(order)
            self._remap_flats()
            return
        self._flat_cells = self._flat_cells[order]
        self._flat_slots = self._flat_slots[order]
        self._flat_keys = self._flat_keys[order]
        self._flat_idf = self._flat_idf[order]
        self._flat_live = len(order)
        self._arrays = None

    def _compact_df_slots(self) -> None:
        """Recycle df slots whose count fell to zero (no holder left).

        Slots are normally never recycled — flat entries reference them by
        index across refreshes — but after an eviction the only zero-count
        keys are bins *no surviving entity holds*, and (once the flats are
        compacted) no live flat entry references them.  Rebuilding the
        slot directory keeps the document-frequency table proportional to
        the live bins rather than to every bin ever seen — without it, a
        sliding-window stream would leak one slot per (window, cell) key
        forever.  Call only after :meth:`_compact` has purged garbage flat
        entries (they may reference dead slots).
        """
        counts = self._df_counts
        live = [
            (key, slot) for key, slot in self._df_slot.items()
            if counts[slot] > 0.0
        ]
        if len(live) == len(counts):
            return
        remap = np.full(len(counts), -1, dtype=np.int64)
        new_slot: Dict[Tuple[int, int], int] = {}
        new_counts: List[float] = []
        for key, slot in live:
            remap[slot] = len(new_counts)
            new_slot[key] = len(new_counts)
            new_counts.append(counts[slot])
        self._df_slot = new_slot
        self._df_counts = new_counts
        if self._flat_keys is None:
            return
        if self._store is not None:
            writer = self._store.rewriter("keys", np.int64)
            try:
                for _start, keys in self._chunk_cache.iter_chunks("keys"):
                    writer.append(remap[keys])
            except BaseException:
                writer.abort()
                raise
            writer.commit()
            self._remap_flats()
        else:
            self._flat_keys = remap[self._flat_keys]

    # ------------------------------------------------------------------
    # transactional snapshot
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """Opaque snapshot for :meth:`restore` (the transactional-relink
        hook — see :meth:`repro.core.streaming.StreamingLinker.relink`).

        Cheap by construction: every numpy array and every frozen value
        object (``BinsSnapshot``, ``WindowIndex``, ``CellTable``,
        ``CorpusArrays``) is *replaced*, never mutated in place, by
        :meth:`refresh` / ``_compact`` — so saving references plus shallow
        container copies is a complete snapshot.
        """
        return {
            "df_slot": dict(self._df_slot),
            "df_counts": list(self._df_counts),
            "total_bins": self._total_bins,
            "entity_bins": dict(self._entity_bins),
            "entity_versions": dict(self._entity_versions),
            "size": self._size,
            "avg_bins": self._avg_bins,
            "log_size": self._log_size,
            "bins_with_idf": dict(self._bins_with_idf),
            "relative_size": dict(self._relative_size),
            "cell_table": self._cell_table,
            "arrays": self._arrays,
            "window_index": dict(self._window_index),
            # Disk mode: the store manifest stands in for the flats (the
            # memmaps are re-derived after a rewind); cutting the
            # checkpoint also prunes generation files no rollback can
            # reach any more.
            "store": None if self._store is None else self._store.checkpoint(),
            "flat_cells": None if self._store is not None else self._flat_cells,
            "flat_slots": None if self._store is not None else self._flat_slots,
            "flat_keys": None if self._store is not None else self._flat_keys,
            "flat_idf": None if self._store is not None else self._flat_idf,
            "flat_live": self._flat_live,
        }

    def materialized_checkpoint(self) -> Dict[str, object]:
        """A :meth:`checkpoint` safe to pickle into a durable snapshot.

        Disk-backed flats are copied into plain arrays and the store
        reference dropped — a corpus rebuilt from this state
        (:meth:`from_checkpoint`) starts in memory mode and can
        :meth:`spill` again.  In memory mode this is exactly
        :meth:`checkpoint`.
        """
        state = self.checkpoint()
        if self._store is not None:
            state["store"] = None
            state["arrays"] = None
            state["flat_cells"] = np.array(self._flat_cells)
            state["flat_slots"] = np.array(self._flat_slots)
            state["flat_keys"] = np.array(self._flat_keys)
            state["flat_idf"] = np.array(self._flat_idf)
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind to a :meth:`checkpoint` snapshot, discarding every
        refresh/compact since (``_histories`` itself is the caller's
        mapping — the caller restores *its* content).  Containers are
        re-copied, so one snapshot supports any number of restores."""
        self._df_slot = dict(state["df_slot"])
        self._df_counts = list(state["df_counts"])
        self._total_bins = state["total_bins"]
        self._entity_bins = dict(state["entity_bins"])
        self._entity_versions = dict(state["entity_versions"])
        self._size = state["size"]
        self._avg_bins = state["avg_bins"]
        self._log_size = state["log_size"]
        self._bins_with_idf = dict(state["bins_with_idf"])
        self._relative_size = dict(state["relative_size"])
        self._cell_table = state["cell_table"]
        self._arrays = state["arrays"]
        self._window_index = dict(state["window_index"])
        store_state = state.get("store")
        if store_state is not None and self._store is not None:
            self._store.restore(store_state)
            self._remap_flats()
        else:
            self._flat_cells = state["flat_cells"]
            self._flat_slots = state["flat_slots"]
            self._flat_keys = state["flat_keys"]
            self._flat_idf = state["flat_idf"]
        self._flat_live = state["flat_live"]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_stats(self) -> Dict[str, int]:
        """Footprint counters of the live data structures.

        ``flat_entries`` is the allocated flat-array length (live +
        garbage); ``flat_live`` the entries reachable through current
        window directories.  On a retention-bounded stream the two stay
        equal after every eviction (eager compaction), which is the
        bounded-memory evidence ``benchmarks/bench_retention.py`` records.

        ``flat_resident_bytes`` is the RAM the flat views actually
        occupy: the arrays' own bytes in memory mode, the chunk LRU's
        resident copies in disk mode (the memmapped columns live in the
        page cache, not the heap) — the ledger
        ``benchmarks/bench_out_of_core.py`` compares across backends.
        """
        if self._store is not None:
            resident = self._chunk_cache.resident_bytes
        else:
            resident = sum(
                flat.nbytes
                for flat in (
                    self._flat_cells,
                    self._flat_slots,
                    self._flat_keys,
                    self._flat_idf,
                )
                if flat is not None
            )
        return {
            "flat_resident_bytes": int(resident),
            "entities": self._size,
            "total_bins": int(self._total_bins),
            "df_slots": len(self._df_counts),
            "flat_entries": (
                0 if self._flat_cells is None else len(self._flat_cells)
            ),
            "flat_live": 0 if self._flat_cells is None else self._flat_live,
            "cell_rows": (
                0 if self._cell_table is None else len(self._cell_table.cell_ids)
            ),
        }

"""Cross-relink similarity score cache.

Scoring a candidate pair is the most expensive step of the SLIM pipeline
(gather, pairwise distances, greedy MNN/MFN pairing).  For a *fixed* pair
of histories the expensive part of Eq. 2 is fully determined by

* both entities' time-location bins (distances, greedy selections), and
* the IDF values of those bins (Eq. 3 weights),

while the BM25-style length normalisation ``L(u, E) * L(v, I)`` is a cheap
O(1) factor applied at the end.  :class:`ScoreCache` therefore memoises the
**raw, un-normalised** pair total together with its instrumentation
counters, keyed on ``(scoring space, pair, history versions)``:

* the *scoring space* fingerprints the two corpora
  (:attr:`~repro.core.corpus.HistoryCorpus.cache_token`) and every
  :class:`~repro.core.similarity.SimilarityConfig` knob that affects the
  raw total (spatial level, pairing, MFN, IDF, speed, window width) — so
  one cache can safely serve engines at different tuning levels;
* the *history versions* (:attr:`~repro.core.history.MobilityHistory.version`)
  invalidate an entry automatically the moment either side's history grows.

Storage is **columnar**: entries live in parallel numpy arrays (versions,
raw totals, counters) behind one ``pair -> row`` directory, so the hot
path of a streaming relink — thousands of lookups per
:meth:`~repro.core.similarity.SimilarityEngine.score_batch` block — runs
as :meth:`lookup_batch`: one directory pass builds the row vector, and
every version comparison, freshness mask and value gather is a single
vectorized operation instead of a per-pair Python loop.

What version keys cannot see is *IDF drift*: a bin's document frequency —
and hence the idf weight inside some *other*, unchanged pair — can move
because a third entity changed.  The cache owner is responsible for that
coupling; :class:`~repro.core.streaming.StreamingLinker` computes the set
of drift-affected entities from :class:`~repro.core.corpus.CorpusDelta`
and calls :meth:`invalidate_pairs`.

Doctest — version-keyed hit/miss behaviour:

>>> cache = ScoreCache()
>>> entry = cache.store("space", "u", "v", 0, 0, raw=1.5,
...                     bin_comparisons=4, common_windows=2, alibi_bin_pairs=0)
>>> cache.lookup("space", "u", "v", 0, 0).raw
1.5
>>> cache.lookup("space", "u", "v", 1, 0) is None  # left history grew
True
>>> cache.hits, cache.misses
(1, 1)

IDF-drift invalidation is the owner's job (stale versions already evicted
the entry above, so re-store first):

>>> entry = cache.store("space", "u", "v", 1, 0, raw=1.4,
...                     bin_comparisons=4, common_windows=2, alibi_bin_pairs=0)
>>> cache.invalidate_pairs({"u"}, set())
1
>>> len(cache)
0

Batch lookups vectorize the same semantics over version *arrays*:

>>> import numpy as np
>>> _ = cache.store_batch(
...     "space", [("u", "v"), ("w", "x")],
...     np.array([1, 0]), np.array([0, 0]),
...     raw=np.array([1.4, 2.0]),
...     bin_comparisons=np.array([4, 2]),
...     common_windows=np.array([2, 1]),
...     alibi_bin_pairs=np.array([0, 0]))
>>> batch = cache.lookup_batch(
...     "space", [("u", "v"), ("w", "x")],
...     np.array([1, 9]), np.array([0, 0]))
>>> batch.hit.tolist(), batch.raw.tolist()
([True, False], [1.4, 0.0])
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = ["PairScore", "ScoreCache", "CacheBatch"]

#: Initial row capacity of the columnar store.
_MIN_CAPACITY = 256

#: Magic + format version prefix of the persisted cache file (see
#: :meth:`ScoreCache.save`).  Bump the trailing format byte when the
#: columnar layout changes; old files then fail validation instead of
#: mis-deserialising.  Kept as a raw prefix (not inside the pickle) so
#: :meth:`ScoreCache.load` validates magic and checksum *before* any
#: deserialisation happens.
_PERSIST_MAGIC = b"REPRO-SCORE-CACHE\x01"
_PERSIST_DIGEST_BYTES = 32  # sha256


@dataclass(frozen=True)
class PairScore:
    """One memoised pair: the raw (un-normalised) Eq. 2 total plus the
    per-pair counters :class:`~repro.core.similarity.SimilarityStats`
    tracks, pinned to the history versions it was computed from."""

    u_version: int
    v_version: int
    raw: float
    bin_comparisons: int
    common_windows: int
    alibi_bin_pairs: int


@dataclass(frozen=True)
class CacheBatch:
    """Vectorized result of :meth:`ScoreCache.lookup_batch`.

    ``hit[i]`` is True when pair ``i`` was served from the cache; rows
    with ``hit[i] == False`` carry zeros and the caller fills them (and
    :meth:`ScoreCache.store_batch`-s them back) after re-scoring.
    """

    hit: np.ndarray  # (N,) bool
    raw: np.ndarray  # (N,) float64
    bin_comparisons: np.ndarray  # (N,) int64
    common_windows: np.ndarray  # (N,) int64
    alibi_bin_pairs: np.ndarray  # (N,) int64


class ScoreCache:
    """Bounded LRU of cached pair scores over a columnar store.

    ``cap=None`` (the default) keeps every entry — right for a
    :class:`~repro.core.streaming.StreamingLinker`, whose working set is
    the candidate-pair set; pass a cap when sharing a cache across large
    auto-tuning sweeps.
    """

    def __init__(self, cap: Optional[int] = None) -> None:
        if cap is not None and cap < 1:
            raise ValueError("cache cap must be positive")
        self._cap = cap
        # pair -> row in the columnar arrays; OrderedDict order is the
        # LRU order (oldest first).
        self._rows: "OrderedDict[Tuple[Hashable, str, str], int]" = (
            OrderedDict()
        )
        self._free: List[int] = []
        self._high = 0  # rows ever allocated (high-water mark)
        self._u_version = np.empty(0, dtype=np.int64)
        self._v_version = np.empty(0, dtype=np.int64)
        self._raw = np.empty(0, dtype=np.float64)
        self._bin_comparisons = np.empty(0, dtype=np.int64)
        self._common_windows = np.empty(0, dtype=np.int64)
        self._alibi_bin_pairs = np.empty(0, dtype=np.int64)
        #: Number of lookups answered from the cache / recomputed.  A
        #: zero-delta relink shows up as misses staying flat.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # columnar plumbing
    # ------------------------------------------------------------------
    def _grow(self, capacity: int) -> None:
        def extend(array: np.ndarray) -> np.ndarray:
            grown = np.empty(capacity, dtype=array.dtype)
            grown[: len(array)] = array
            return grown

        self._u_version = extend(self._u_version)
        self._v_version = extend(self._v_version)
        self._raw = extend(self._raw)
        self._bin_comparisons = extend(self._bin_comparisons)
        self._common_windows = extend(self._common_windows)
        self._alibi_bin_pairs = extend(self._alibi_bin_pairs)

    def _alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        row = self._high
        if row >= len(self._raw):
            self._grow(max(_MIN_CAPACITY, 2 * len(self._raw)))
        self._high += 1
        return row

    def _entry(self, row: int) -> PairScore:
        return PairScore(
            u_version=int(self._u_version[row]),
            v_version=int(self._v_version[row]),
            raw=float(self._raw[row]),
            bin_comparisons=int(self._bin_comparisons[row]),
            common_windows=int(self._common_windows[row]),
            alibi_bin_pairs=int(self._alibi_bin_pairs[row]),
        )

    def _evict_lru(self) -> None:
        while self._cap is not None and len(self._rows) > self._cap:
            _, row = self._rows.popitem(last=False)
            self._free.append(row)

    # ------------------------------------------------------------------
    # lookup / store (per pair)
    # ------------------------------------------------------------------
    def lookup(
        self,
        space: Hashable,
        left_entity: str,
        right_entity: str,
        u_version: int,
        v_version: int,
    ) -> Optional[PairScore]:
        """The cached entry for a pair, or ``None`` on miss.

        An entry computed from older history versions is dropped and
        reported as a miss (the caller will re-score and re-store).
        """
        key = (space, left_entity, right_entity)
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            return None
        if (
            self._u_version[row] != u_version
            or self._v_version[row] != v_version
        ):
            del self._rows[key]
            self._free.append(row)
            self.misses += 1
            return None
        self.hits += 1
        self._rows.move_to_end(key)
        return self._entry(row)

    def store(
        self,
        space: Hashable,
        left_entity: str,
        right_entity: str,
        u_version: int,
        v_version: int,
        raw: float,
        bin_comparisons: int,
        common_windows: int,
        alibi_bin_pairs: int,
    ) -> PairScore:
        """Memoise one freshly scored pair (evicting LRU beyond the cap)."""
        key = (space, left_entity, right_entity)
        row = self._rows.get(key)
        if row is None:
            row = self._alloc_row()
            self._rows[key] = row
        self._rows.move_to_end(key)
        self._u_version[row] = u_version
        self._v_version[row] = v_version
        self._raw[row] = raw
        self._bin_comparisons[row] = bin_comparisons
        self._common_windows[row] = common_windows
        self._alibi_bin_pairs[row] = alibi_bin_pairs
        self._evict_lru()
        return self._entry(row)

    # ------------------------------------------------------------------
    # lookup / store (vectorized over version arrays)
    # ------------------------------------------------------------------
    def lookup_batch(
        self,
        space: Hashable,
        pairs: Sequence[Tuple[str, str]],
        u_versions: np.ndarray,
        v_versions: np.ndarray,
    ) -> CacheBatch:
        """Batch lookup: one directory pass, vectorized version checks.

        Semantically ``[lookup(space, l, r, u, v) for ...]`` — identical
        hit/miss accounting, identical stale-entry eviction — but the
        version comparison and the value gathers run as numpy array
        operations keyed on the callers' version arrays, which is what
        keeps the streaming relink's cache-hit path off the Python
        interpreter (the ROADMAP's ~3x brute-force-delta ceiling).
        """
        n = len(pairs)
        hit = np.zeros(n, dtype=bool)
        raw = np.zeros(n, dtype=np.float64)
        bin_comparisons = np.zeros(n, dtype=np.int64)
        common_windows = np.zeros(n, dtype=np.int64)
        alibi_bin_pairs = np.zeros(n, dtype=np.int64)
        if n == 0:
            return CacheBatch(
                hit, raw, bin_comparisons, common_windows, alibi_bin_pairs
            )
        if not self._rows:
            # Nothing cached (the columnar arrays may not exist yet).
            self.misses += n
            return CacheBatch(
                hit, raw, bin_comparisons, common_windows, alibi_bin_pairs
            )
        get = self._rows.get
        rows = np.fromiter(
            (get((space, left, right), -1) for left, right in pairs),
            np.int64,
            count=n,
        )
        found = rows >= 0
        safe = np.where(found, rows, 0)
        fresh = (
            found
            & (self._u_version[safe] == u_versions)
            & (self._v_version[safe] == v_versions)
        )
        for position in np.nonzero(found & ~fresh)[0]:
            left, right = pairs[position]
            # pop defensively: a pair duplicated within the batch is
            # evicted by its first stale occurrence.
            row = self._rows.pop((space, left, right), None)
            if row is not None:
                self._free.append(row)
        hit_count = int(np.count_nonzero(fresh))
        self.hits += hit_count
        self.misses += n - hit_count
        if self._cap is not None and hit_count:
            # LRU order only matters under a cap; the uncapped streaming
            # default skips the per-hit reorder entirely.
            move = self._rows.move_to_end
            for position in np.nonzero(fresh)[0]:
                left, right = pairs[position]
                move((space, left, right))
        hit[:] = fresh
        fresh_rows = rows[fresh]
        raw[fresh] = self._raw[fresh_rows]
        bin_comparisons[fresh] = self._bin_comparisons[fresh_rows]
        common_windows[fresh] = self._common_windows[fresh_rows]
        alibi_bin_pairs[fresh] = self._alibi_bin_pairs[fresh_rows]
        return CacheBatch(
            hit, raw, bin_comparisons, common_windows, alibi_bin_pairs
        )

    def store_batch(
        self,
        space: Hashable,
        pairs: Sequence[Tuple[str, str]],
        u_versions: np.ndarray,
        v_versions: np.ndarray,
        raw: np.ndarray,
        bin_comparisons: np.ndarray,
        common_windows: np.ndarray,
        alibi_bin_pairs: np.ndarray,
    ) -> int:
        """Memoise a batch of freshly scored pairs; returns the count.

        Row assignment walks the directory once; all column writes are
        vectorized scatters.
        """
        n = len(pairs)
        if n == 0:
            return 0
        rows = np.empty(n, dtype=np.int64)
        directory = self._rows
        for position, (left, right) in enumerate(pairs):
            key = (space, left, right)
            row = directory.get(key)
            if row is None:
                row = self._alloc_row()
                directory[key] = row
            else:
                directory.move_to_end(key)
            rows[position] = row
        self._u_version[rows] = u_versions
        self._v_version[rows] = v_versions
        self._raw[rows] = raw
        self._bin_comparisons[rows] = bin_comparisons
        self._common_windows[rows] = common_windows
        self._alibi_bin_pairs[rows] = alibi_bin_pairs
        self._evict_lru()
        return n

    # ------------------------------------------------------------------
    # owner-driven invalidation
    # ------------------------------------------------------------------
    def invalidate_pairs(
        self,
        left_entities: Iterable[str],
        right_entities: Iterable[str],
        space: Optional[Hashable] = None,
    ) -> int:
        """Drop every entry whose left entity is in ``left_entities`` or
        whose right entity is in ``right_entities``; returns the count.

        This is the IDF-drift hook: history versions catch a pair's *own*
        changes, but a pair must also be re-scored when a shared bin's
        document frequency moved (see :mod:`repro.core.corpus`).

        ``space`` scopes the sweep to one scoring space (see
        :func:`~repro.core.similarity.score_cache_space`): in a cache
        shared between owners — a streaming linker and tuning sweeps,
        say — entity ids recur across spaces, and one owner's IDF drift
        says nothing about another's corpora.  ``None`` sweeps them all —
        which is what *entity retirement* requires
        (:mod:`repro.core.retention`): a retired id observed again later
        restarts at history version 0, so a stale row under matching
        versions anywhere — including entries reloaded via
        :meth:`save`/:meth:`load` — would be served as a hit.
        """
        lefts: Set[str] = set(left_entities)
        rights: Set[str] = set(right_entities)
        if not lefts and not rights:
            return 0
        doomed = [
            key
            for key in self._rows
            if (space is None or key[0] == space)
            and (key[1] in lefts or key[2] in rights)
        ]
        for key in doomed:
            self._free.append(self._rows.pop(key))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._rows.clear()
        self._free.clear()
        self._high = 0

    # ------------------------------------------------------------------
    # transactional snapshot
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """Opaque snapshot for :meth:`restore` (the transactional-relink
        hook).  Unlike the corpus, :meth:`store` scatters *in place* into
        the column arrays, so the allocated prefix (up to the high-water
        mark) is copied; the row directory copy also preserves exact LRU
        order, and the hit/miss counters ride along so a rolled-back
        relink leaves no trace at all.
        """
        high = self._high
        return {
            "rows": OrderedDict(self._rows),
            "free": list(self._free),
            "high": high,
            "columns": tuple(
                column[:high].copy()
                for column in (
                    self._u_version,
                    self._v_version,
                    self._raw,
                    self._bin_comparisons,
                    self._common_windows,
                    self._alibi_bin_pairs,
                )
            ),
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind to a :meth:`checkpoint` snapshot: rows stored since are
        gone, rows evicted since are back, counters rewound.  Containers
        are re-copied, so one snapshot supports any number of restores."""
        self._rows = OrderedDict(state["rows"])
        self._free = list(state["free"])
        self._high = state["high"]
        high = state["high"]
        saved = state["columns"]
        for column, values in zip(
            (
                self._u_version,
                self._v_version,
                self._raw,
                self._bin_comparisons,
                self._common_windows,
                self._alibi_bin_pairs,
            ),
            saved,
        ):
            # Arrays only ever grow; the live prefix is what matters
            # (rows past the rewound high-water mark are unreferenced).
            column[:high] = values
        self.hits = state["hits"]
        self.misses = state["misses"]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the cache to ``path`` (compacted: live rows only).

        The file layout is ``magic+format prefix || SHA-256(payload) ||
        payload``; :meth:`load` validates the prefix and the fingerprint
        *before deserialising anything*, so a truncated download, a
        foreign file or an incompatible layout fails loudly instead of
        poisoning a run with garbage scores.  The payload itself is a
        pickle (scoring spaces are arbitrary hashables, which no
        data-only format can carry), so the fingerprint detects
        *corruption*, not *malice* — only load cache files you produced
        or trust, as with any pickle.

        Cross-process reuse additionally needs *stable scoring spaces*:
        the pipeline keys its corpora by
        :func:`~repro.core.corpus.content_fingerprint` whenever a cache is
        attached, so a later process linking the same data lands in the
        same space and hits.

        The write is **atomic**: the bytes go to a temporary file in the
        *same directory* (rename across filesystems is not atomic), are
        fsynced, and only then renamed over ``path`` with
        :func:`os.replace`.  A crash at any point mid-save leaves either
        the old file intact or the new one complete — never a truncated
        hybrid (pinned by ``tests/core/test_score_cache_persist.py``).
        """
        keys = list(self._rows)
        rows = np.fromiter(
            (self._rows[key] for key in keys), np.int64, count=len(keys)
        )
        state = {
            "cap": self._cap,
            "hits": self.hits,
            "misses": self.misses,
            "keys": keys,
            "u_version": self._u_version[rows],
            "v_version": self._v_version[rows],
            "raw": self._raw[rows],
            "bin_comparisons": self._bin_comparisons[rows],
            "common_windows": self._common_windows[rows],
            "alibi_bin_pairs": self._alibi_bin_pairs[rows],
        }
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        path = Path(path)
        blob = _PERSIST_MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScoreCache":
        """Rebuild a cache persisted by :meth:`save`.

        Raises :class:`ValueError` when the file is not a score cache,
        was written by an incompatible format version, or fails its
        SHA-256 fingerprint check — all verified before any
        deserialisation (see :meth:`save` for the trust model).
        """
        raw_bytes = Path(path).read_bytes()
        magic, version = _PERSIST_MAGIC[:-1], _PERSIST_MAGIC[-1:]
        if not raw_bytes.startswith(magic):
            raise ValueError("not a score cache file (bad magic)")
        header_end = len(_PERSIST_MAGIC)
        found = raw_bytes[len(magic) : header_end]
        if found != version:
            raise ValueError(
                f"unsupported score cache format {found!r} "
                f"(this build reads format {version[0]})"
            )
        digest = raw_bytes[header_end : header_end + _PERSIST_DIGEST_BYTES]
        payload = raw_bytes[header_end + _PERSIST_DIGEST_BYTES :]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError(
                "score cache fingerprint mismatch (corrupt or truncated file)"
            )
        state = pickle.loads(payload)
        cache = cls(cap=state["cap"])
        cache.hits = state["hits"]
        cache.misses = state["misses"]
        keys = state["keys"]
        count = len(keys)
        if count:
            cache._grow(max(_MIN_CAPACITY, count))
            cache._u_version[:count] = state["u_version"]
            cache._v_version[:count] = state["v_version"]
            cache._raw[:count] = state["raw"]
            cache._bin_comparisons[:count] = state["bin_comparisons"]
            cache._common_windows[:count] = state["common_windows"]
            cache._alibi_bin_pairs[:count] = state["alibi_bin_pairs"]
            cache._rows = OrderedDict(
                (key, row) for row, key in enumerate(keys)
            )
            cache._high = count
        return cache

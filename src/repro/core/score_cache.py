"""Cross-relink similarity score cache.

Scoring a candidate pair is the most expensive step of the SLIM pipeline
(gather, pairwise distances, greedy MNN/MFN pairing).  For a *fixed* pair
of histories the expensive part of Eq. 2 is fully determined by

* both entities' time-location bins (distances, greedy selections), and
* the IDF values of those bins (Eq. 3 weights),

while the BM25-style length normalisation ``L(u, E) * L(v, I)`` is a cheap
O(1) factor applied at the end.  :class:`ScoreCache` therefore memoises the
**raw, un-normalised** pair total together with its instrumentation
counters, keyed on ``(scoring space, pair, history versions)``:

* the *scoring space* fingerprints the two corpora
  (:attr:`~repro.core.corpus.HistoryCorpus.cache_token`) and every
  :class:`~repro.core.similarity.SimilarityConfig` knob that affects the
  raw total (spatial level, pairing, MFN, IDF, speed, window width) — so
  one cache can safely serve engines at different tuning levels;
* the *history versions* (:attr:`~repro.core.history.MobilityHistory.version`)
  invalidate an entry automatically the moment either side's history grows.

What version keys cannot see is *IDF drift*: a bin's document frequency —
and hence the idf weight inside some *other*, unchanged pair — can move
because a third entity changed.  The cache owner is responsible for that
coupling; :class:`~repro.core.streaming.StreamingLinker` computes the set
of drift-affected entities from :class:`~repro.core.corpus.CorpusDelta`
and calls :meth:`invalidate_pairs`.

Doctest — version-keyed hit/miss behaviour:

>>> cache = ScoreCache()
>>> entry = cache.store("space", "u", "v", 0, 0, raw=1.5,
...                     bin_comparisons=4, common_windows=2, alibi_bin_pairs=0)
>>> cache.lookup("space", "u", "v", 0, 0).raw
1.5
>>> cache.lookup("space", "u", "v", 1, 0) is None  # left history grew
True
>>> cache.hits, cache.misses
(1, 1)

IDF-drift invalidation is the owner's job (stale versions already evicted
the entry above, so re-store first):

>>> entry = cache.store("space", "u", "v", 1, 0, raw=1.4,
...                     bin_comparisons=4, common_windows=2, alibi_bin_pairs=0)
>>> cache.invalidate_pairs({"u"}, set())
1
>>> len(cache)
0
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Set, Tuple

__all__ = ["PairScore", "ScoreCache"]


@dataclass(frozen=True)
class PairScore:
    """One memoised pair: the raw (un-normalised) Eq. 2 total plus the
    per-pair counters :class:`~repro.core.similarity.SimilarityStats`
    tracks, pinned to the history versions it was computed from."""

    u_version: int
    v_version: int
    raw: float
    bin_comparisons: int
    common_windows: int
    alibi_bin_pairs: int


class ScoreCache:
    """Bounded LRU of :class:`PairScore` entries.

    ``cap=None`` (the default) keeps every entry — right for a
    :class:`~repro.core.streaming.StreamingLinker`, whose working set is
    the candidate-pair set; pass a cap when sharing a cache across large
    auto-tuning sweeps.
    """

    def __init__(self, cap: Optional[int] = None) -> None:
        if cap is not None and cap < 1:
            raise ValueError("cache cap must be positive")
        self._cap = cap
        self._entries: "OrderedDict[Tuple[Hashable, str, str], PairScore]" = (
            OrderedDict()
        )
        #: Number of lookups answered from the cache / recomputed.  A
        #: zero-delta relink shows up as misses staying flat.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self,
        space: Hashable,
        left_entity: str,
        right_entity: str,
        u_version: int,
        v_version: int,
    ) -> Optional[PairScore]:
        """The cached entry for a pair, or ``None`` on miss.

        An entry computed from older history versions is dropped and
        reported as a miss (the caller will re-score and re-store).
        """
        key = (space, left_entity, right_entity)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.u_version != u_version or entry.v_version != v_version:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def store(
        self,
        space: Hashable,
        left_entity: str,
        right_entity: str,
        u_version: int,
        v_version: int,
        raw: float,
        bin_comparisons: int,
        common_windows: int,
        alibi_bin_pairs: int,
    ) -> PairScore:
        """Memoise one freshly scored pair (evicting LRU beyond the cap)."""
        entry = PairScore(
            u_version=u_version,
            v_version=v_version,
            raw=raw,
            bin_comparisons=bin_comparisons,
            common_windows=common_windows,
            alibi_bin_pairs=alibi_bin_pairs,
        )
        entries = self._entries
        entries[(space, left_entity, right_entity)] = entry
        entries.move_to_end((space, left_entity, right_entity))
        if self._cap is not None and len(entries) > self._cap:
            entries.popitem(last=False)
        return entry

    # ------------------------------------------------------------------
    # owner-driven invalidation
    # ------------------------------------------------------------------
    def invalidate_pairs(
        self,
        left_entities: Iterable[str],
        right_entities: Iterable[str],
        space: Optional[Hashable] = None,
    ) -> int:
        """Drop every entry whose left entity is in ``left_entities`` or
        whose right entity is in ``right_entities``; returns the count.

        This is the IDF-drift hook: history versions catch a pair's *own*
        changes, but a pair must also be re-scored when a shared bin's
        document frequency moved (see :mod:`repro.core.corpus`).

        ``space`` scopes the sweep to one scoring space (see
        :func:`~repro.core.similarity.score_cache_space`): in a cache
        shared between owners — a streaming linker and tuning sweeps,
        say — entity ids recur across spaces, and one owner's IDF drift
        says nothing about another's corpora.  ``None`` sweeps them all.
        """
        lefts: Set[str] = set(left_entities)
        rights: Set[str] = set(right_entities)
        if not lefts and not rights:
            return 0
        doomed = [
            key
            for key in self._entries
            if (space is None or key[0] == space)
            and (key[1] in lefts or key[2] in rights)
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

"""Time-location bin proximity (Eq. 1) and the runaway distance.

The proximity of two bins from the *same* temporal window is

``P = log2(2 - min(d / R, 2))``

where ``d`` is the minimum geographical distance between their cells and
``R`` — the *runaway distance* — is the farthest an entity can travel within
the window (window width x maximum speed).  The shape is the whole point:

* ``d = 0``   -> ``P = 1``  (same cell: full award);
* ``d = R``   -> ``P = 0``  (barely reachable: neutral);
* ``d > R``   -> ``P < 0``  (alibi: counter-evidence, steeply penalised);
* ``d -> 2R`` -> ``P -> -inf`` in the paper; we clamp the ratio at
  ``2 - alibi_eps`` so a worst-case alibi contributes a large finite penalty
  (default ~ -19.9) — "a continuous function that allows a small number of
  alibi record pairs whose distance is slightly larger than the runaway
  distance" stays intact, while the arithmetic stays finite.

Bins from different windows have proximity 0 by definition (the ``T``
predicate): temporal asynchrony is never penalised.
"""

from __future__ import annotations

import math

__all__ = [
    "DEFAULT_MAX_SPEED_MPS",
    "DEFAULT_ALIBI_EPS",
    "runaway_distance",
    "proximity",
]

#: The paper sets maximum entity speed to 2 km/minute (US highway speed).
DEFAULT_MAX_SPEED_MPS = 2_000.0 / 60.0

#: Clamp for the distance ratio: ``min(d/R, 2)`` becomes at most
#: ``2 - DEFAULT_ALIBI_EPS``, bounding the alibi penalty at
#: ``log2(DEFAULT_ALIBI_EPS)`` ~ -19.93.
DEFAULT_ALIBI_EPS = 1e-6


def runaway_distance(window_width_seconds: float, max_speed_mps: float) -> float:
    """``R = |w| * alpha`` — the farthest an entity can travel in a window."""
    if window_width_seconds <= 0:
        raise ValueError(f"window width must be positive, got {window_width_seconds}")
    if max_speed_mps <= 0:
        raise ValueError(f"max speed must be positive, got {max_speed_mps}")
    return window_width_seconds * max_speed_mps


def proximity(
    distance_meters: float,
    runaway_meters: float,
    alibi_eps: float = DEFAULT_ALIBI_EPS,
) -> float:
    """Spatial proximity of two same-window bins (Eq. 1 without ``T``).

    Callers guarantee the bins share a temporal window; cross-window pairs
    never reach this function (their proximity is 0 by construction of the
    pairing step).
    """
    ratio = distance_meters / runaway_meters
    if ratio > 2.0 - alibi_eps:
        ratio = 2.0 - alibi_eps
    return math.log2(2.0 - ratio)

"""Automated linkage stop threshold (Sec. 3.2).

After the bipartite matching, the matched edges split into true links and
false links; because real datasets never fully overlap, linking *everything*
would destroy precision.  The paper's mechanism, implemented by
:func:`gmm_stop_threshold`:

1. fit a two-component 1-D GMM over the matched edge weights;
2. read the larger-mean component (``m2``) as the true-positive model and
   the other (``m1``) as the false-positive model;
3. for a candidate threshold ``s``, expected recall and precision are
   ``R(s) = c2 * (1 - F_m2(s))`` and
   ``P(s) = R(s) / (R(s) + c1 * (1 - F_m1(s)))``;
4. keep the ``s`` maximising expected F1.

(The paper prints ``argmin``; its own derivation — and Fig. 2 — maximise
F1.)  The paper notes Otsu's method and 2-means give similar thresholds;
both are provided for the ablation benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .gmm import GaussianMixture1D

__all__ = [
    "ThresholdDecision",
    "gmm_stop_threshold",
    "otsu_threshold",
    "two_means_threshold",
]


@dataclass(frozen=True)
class ThresholdDecision:
    """A stop-threshold choice plus the model diagnostics behind it.

    ``expected_*`` are the model-implied metrics at the chosen threshold —
    what the linker believes *without ground truth*; the evaluation harness
    compares them against measured values.
    """

    threshold: float
    method: str
    expected_precision: float
    expected_recall: float
    expected_f1: float
    model: Optional[GaussianMixture1D] = None

    def accepts(self, weight: float) -> bool:
        """True when an edge of this weight should be kept as a link."""
        return weight >= self.threshold


def _degenerate_decision(weights: np.ndarray, method: str) -> ThresholdDecision:
    """Fallback when the weight distribution cannot support a 2-GMM
    (too few edges, or zero spread): keep every matched edge."""
    threshold = float(weights.min()) if weights.size else 0.0
    return ThresholdDecision(
        threshold=threshold,
        method=f"{method}-degenerate",
        expected_precision=float("nan"),
        expected_recall=float("nan"),
        expected_f1=float("nan"),
        model=None,
    )


def expected_prf(model: GaussianMixture1D, thresholds: np.ndarray) -> tuple:
    """Vectorised expected (precision, recall, F1) under a fitted 2-GMM.

    Exposed separately so benches can plot the full expected-F1 curve
    (Fig. 2's red line is its argmax).
    """
    c1, c2 = float(model.weights_[0]), float(model.weights_[1])
    survivors_false = c1 * (1.0 - model.component_cdf(0, thresholds))
    recall = c2 * (1.0 - model.component_cdf(1, thresholds))
    denominator = recall + survivors_false
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(denominator > 0, recall / denominator, 0.0)
        f1 = np.where(
            (precision + recall) > 0,
            2.0 * precision * recall / (precision + recall),
            0.0,
        )
    return precision, recall, f1


def gmm_stop_threshold(
    weights: Sequence[float], grid_size: int = 1024
) -> ThresholdDecision:
    """The paper's automated stop threshold over matched edge weights."""
    array = np.asarray(list(weights), dtype=np.float64)
    if array.size < 4 or float(array.std()) == 0.0:
        return _degenerate_decision(array, "gmm")

    model = GaussianMixture1D(n_components=2).fit(array)
    low, high = float(array.min()), float(array.max())
    grid = np.linspace(low, high, grid_size)
    precision, recall, f1 = expected_prf(model, grid)
    best = int(np.argmax(f1))
    return ThresholdDecision(
        threshold=float(grid[best]),
        method="gmm",
        expected_precision=float(precision[best]),
        expected_recall=float(recall[best]),
        expected_f1=float(f1[best]),
        model=model,
    )


def otsu_threshold(weights: Sequence[float], bins: int = 256) -> ThresholdDecision:
    """Otsu's histogram threshold (the paper reports it behaves like the
    GMM approach on these score distributions)."""
    array = np.asarray(list(weights), dtype=np.float64)
    if array.size < 4 or float(array.std()) == 0.0:
        return _degenerate_decision(array, "otsu")

    histogram, edges = np.histogram(array, bins=bins)
    probabilities = histogram.astype(np.float64) / array.size
    centers = (edges[:-1] + edges[1:]) / 2.0

    omega0 = np.cumsum(probabilities)
    mu_cum = np.cumsum(probabilities * centers)
    mu_total = mu_cum[-1]
    omega1 = 1.0 - omega0
    with np.errstate(divide="ignore", invalid="ignore"):
        mu0 = mu_cum / omega0
        mu1 = (mu_total - mu_cum) / omega1
        between = omega0 * omega1 * (mu0 - mu1) ** 2
    between[~np.isfinite(between)] = -1.0
    best = int(np.argmax(between))
    threshold = float(edges[best + 1])
    return ThresholdDecision(
        threshold=threshold,
        method="otsu",
        expected_precision=float("nan"),
        expected_recall=float("nan"),
        expected_f1=float("nan"),
        model=None,
    )


def two_means_threshold(
    weights: Sequence[float], max_iter: int = 100
) -> ThresholdDecision:
    """1-D 2-means clustering threshold (Lloyd's algorithm); the cut falls
    midway between the two final centroids."""
    array = np.asarray(list(weights), dtype=np.float64)
    if array.size < 4 or float(array.std()) == 0.0:
        return _degenerate_decision(array, "two_means")

    low_center = float(array.min())
    high_center = float(array.max())
    for _ in range(max_iter):
        boundary = (low_center + high_center) / 2.0
        low_mask = array < boundary
        if not low_mask.any() or low_mask.all():
            break
        new_low = float(array[low_mask].mean())
        new_high = float(array[~low_mask].mean())
        if math.isclose(new_low, low_center) and math.isclose(new_high, high_center):
            low_center, high_center = new_low, new_high
            break
        low_center, high_center = new_low, new_high
    return ThresholdDecision(
        threshold=(low_center + high_center) / 2.0,
        method="two_means",
        expected_precision=float("nan"),
        expected_recall=float("nan"),
        expected_f1=float("nan"),
        model=None,
    )

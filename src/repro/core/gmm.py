"""A 1-D Gaussian mixture fitted by EM.

The automated stop threshold (Sec. 3.2) fits a two-component 1-D GMM over
the weights of the matched bipartite edges; the component with the larger
mean models true-positive links.  scikit-learn is not a dependency of this
reproduction, so the mixture is implemented here: log-domain EM with a
variance floor and deterministic quantile initialisation (thresholding must
be reproducible run to run).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["GaussianMixture1D"]

_LOG_2PI = math.log(2.0 * math.pi)


class GaussianMixture1D:
    """A k-component univariate Gaussian mixture.

    After :meth:`fit`, components are sorted by ascending mean, so for the
    two-component case used by the stop threshold, component 0 models the
    false positives (``m1``) and component 1 the true positives (``m2``).
    """

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("need at least one component")
        self.n_components = n_components
        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.converged_: bool = False
        self.n_iter_: int = 0
        self.log_likelihood_: float = -math.inf

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        data: Sequence[float],
        max_iter: int = 300,
        tol: float = 1e-9,
    ) -> "GaussianMixture1D":
        """Fit by expectation-maximisation.

        Initialisation splits the sorted data into ``n_components``
        quantile blocks — deterministic, and for bimodal score
        distributions (the case Fig. 2 shows) already close to the optimum.
        """
        x = np.asarray(data, dtype=np.float64).ravel()
        k = self.n_components
        if x.size < k:
            raise ValueError(f"need at least {k} samples, got {x.size}")

        spread = float(x.var())
        var_floor = max(spread, 1.0) * 1e-10

        ordered = np.sort(x)
        blocks = np.array_split(ordered, k)
        means = np.array([float(block.mean()) for block in blocks])
        variances = np.array(
            [max(float(block.var()), var_floor) for block in blocks]
        )
        weights = np.array([block.size / x.size for block in blocks])

        previous = -math.inf
        responsibilities = np.empty((x.size, k))
        for iteration in range(1, max_iter + 1):
            # E step (log domain).
            log_prob = -0.5 * (
                _LOG_2PI
                + np.log(variances)[None, :]
                + (x[:, None] - means[None, :]) ** 2 / variances[None, :]
            ) + np.log(np.maximum(weights, 1e-300))[None, :]
            log_norm = np.logaddexp.reduce(log_prob, axis=1)
            log_likelihood = float(log_norm.sum())
            responsibilities[:] = np.exp(log_prob - log_norm[:, None])

            # M step.
            mass = responsibilities.sum(axis=0)
            mass = np.maximum(mass, 1e-300)
            weights = mass / x.size
            means = (responsibilities * x[:, None]).sum(axis=0) / mass
            variances = (
                responsibilities * (x[:, None] - means[None, :]) ** 2
            ).sum(axis=0) / mass
            variances = np.maximum(variances, var_floor)

            self.n_iter_ = iteration
            if abs(log_likelihood - previous) < tol * max(1.0, abs(previous)):
                self.converged_ = True
                previous = log_likelihood
                break
            previous = log_likelihood

        order = np.argsort(means)
        self.weights_ = weights[order]
        self.means_ = means[order]
        self.variances_ = variances[order]
        self.log_likelihood_ = previous
        return self

    def _require_fit(self) -> None:
        if self.means_ is None:
            raise RuntimeError("call fit() first")

    # ------------------------------------------------------------------
    # densities
    # ------------------------------------------------------------------
    def component_pdf(self, component: int, x: np.ndarray) -> np.ndarray:
        """Density of one component at ``x`` (not weighted)."""
        self._require_fit()
        mean = self.means_[component]
        variance = self.variances_[component]
        x = np.asarray(x, dtype=np.float64)
        return np.exp(-0.5 * (x - mean) ** 2 / variance) / math.sqrt(
            2.0 * math.pi * variance
        )

    def component_cdf(self, component: int, x: np.ndarray) -> np.ndarray:
        """CDF ``F_m(x)`` of one component — the quantity the expected
        precision/recall formulas of Sec. 3.2 are built from."""
        self._require_fit()
        mean = self.means_[component]
        std = math.sqrt(self.variances_[component])
        x = np.asarray(x, dtype=np.float64)
        from scipy.special import erf  # local import keeps numpy-only paths lean

        return 0.5 * (1.0 + erf((x - mean) / (std * math.sqrt(2.0))))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Mixture density at ``x``."""
        self._require_fit()
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros_like(x, dtype=np.float64)
        for component in range(self.n_components):
            total = total + self.weights_[component] * self.component_pdf(component, x)
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most responsible component per sample."""
        self._require_fit()
        x = np.asarray(x, dtype=np.float64)
        densities = np.stack(
            [
                self.weights_[component] * self.component_pdf(component, x)
                for component in range(self.n_components)
            ],
            axis=1,
        )
        return np.argmax(densities, axis=1)

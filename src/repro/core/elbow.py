"""Kneedle elbow-point detection (Satopaa et al., the paper's ref [36]).

SLIM auto-tunes the spatial detail level by computing a quality curve per
candidate level and picking its *best trade-off point* — the knee/elbow
where further spatial detail stops paying (Sec. 3.3).  This is a compact
implementation of the Kneedle algorithm for monotone curves:

1. min-max normalise ``x`` and ``y``;
2. flip axes as needed so the curve becomes concave increasing;
3. the knee is where the difference ``y_n - x_n`` peaks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["kneedle_index", "kneedle_x"]


def _normalise(values: np.ndarray) -> np.ndarray:
    low, high = float(values.min()), float(values.max())
    if high == low:
        return np.zeros_like(values)
    return (values - low) / (high - low)


def kneedle_index(
    x: Sequence[float],
    y: Sequence[float],
    curve: str = "concave",
    direction: str = "increasing",
) -> int:
    """Index of the knee/elbow of a monotone curve.

    ``curve`` is ``"concave"`` (knee: diminishing returns) or ``"convex"``
    (elbow); ``direction`` is the trend of ``y`` along increasing ``x``.
    For constant curves the first index is returned.
    """
    if curve not in ("concave", "convex"):
        raise ValueError(f"curve must be concave or convex, got {curve!r}")
    if direction not in ("increasing", "decreasing"):
        raise ValueError(
            f"direction must be increasing or decreasing, got {direction!r}"
        )
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if xs.size < 3:
        return 0

    x_n = _normalise(xs)
    y_n = _normalise(ys)
    # Map every case onto concave increasing, where the knee maximises
    # y_n - x_n:
    #   concave increasing  -> identity
    #   concave decreasing  -> mirror horizontally (reverse sample order)
    #   convex  decreasing  -> mirror vertically (1 - y)
    #   convex  increasing  -> mirror both
    flipped = False
    if curve == "concave" and direction == "decreasing":
        y_n = y_n[::-1]
        flipped = True
    elif curve == "convex" and direction == "decreasing":
        y_n = 1.0 - y_n
    elif curve == "convex" and direction == "increasing":
        y_n = 1.0 - y_n[::-1]
        flipped = True

    difference = y_n - x_n
    knee = int(np.argmax(difference))
    if flipped:
        knee = xs.size - 1 - knee
    return knee


def kneedle_x(
    x: Sequence[float],
    y: Sequence[float],
    curve: str = "concave",
    direction: str = "increasing",
) -> float:
    """The ``x`` value at the detected knee/elbow."""
    xs = np.asarray(x, dtype=np.float64)
    return float(xs[kneedle_index(x, y, curve=curve, direction=direction)])

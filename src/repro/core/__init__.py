"""SLIM core: mobility histories, the similarity score, matching, the
automated stop threshold, performance tuning and the pipeline (Alg. 1)."""

from .corpus import CorpusDelta, HistoryCorpus
from .elbow import kneedle_index, kneedle_x
from .gmm import GaussianMixture1D
from .history import MobilityHistory, build_histories
from .matching import Edge, greedy_max_matching, hungarian_matching, match, networkx_matching
from .pairing import all_pairs, mfn_pairs, mnn_pairs
from .proximity import DEFAULT_MAX_SPEED_MPS, proximity, runaway_distance
from .retention import (
    MaxEntitiesRetention,
    NoRetention,
    RetentionPolicy,
    SlidingWindowRetention,
    build_retention,
    retention_policies,
)
from .score_cache import PairScore, ScoreCache
from .similarity import SimilarityConfig, SimilarityEngine, SimilarityStats
from .slim import LinkageResult, SlimConfig, SlimLinker
from .streaming import RelinkStats, StreamingLinker
from .threshold import (
    ThresholdDecision,
    gmm_stop_threshold,
    otsu_threshold,
    two_means_threshold,
)
from .tuning import SpatialLevelChoice, auto_spatial_level, auto_spatial_level_for_pair

__all__ = [
    "MobilityHistory",
    "build_histories",
    "HistoryCorpus",
    "CorpusDelta",
    "ScoreCache",
    "PairScore",
    "RelinkStats",
    "SimilarityConfig",
    "SimilarityEngine",
    "SimilarityStats",
    "proximity",
    "runaway_distance",
    "DEFAULT_MAX_SPEED_MPS",
    "mnn_pairs",
    "mfn_pairs",
    "all_pairs",
    "Edge",
    "match",
    "greedy_max_matching",
    "hungarian_matching",
    "networkx_matching",
    "GaussianMixture1D",
    "ThresholdDecision",
    "gmm_stop_threshold",
    "otsu_threshold",
    "two_means_threshold",
    "kneedle_index",
    "kneedle_x",
    "SpatialLevelChoice",
    "auto_spatial_level",
    "auto_spatial_level_for_pair",
    "SlimConfig",
    "SlimLinker",
    "LinkageResult",
    "StreamingLinker",
    "RetentionPolicy",
    "NoRetention",
    "SlidingWindowRetention",
    "MaxEntitiesRetention",
    "retention_policies",
    "build_retention",
]

"""Bipartite matching over similarity-weighted entity pairs (Sec. 3.2).

The positive-score entity pairs form a weighted bipartite graph; a matching
selects at most one partner per entity.  The paper "adapts a simple greedy
heuristic, which links the pair with the highest similarity at each step" —
:func:`greedy_max_matching`, the default.  For ablations and verification
two exact maximum-weight matchers are provided: the Hungarian algorithm
(scipy) and networkx's blossom-based matcher.  On well-separated score
distributions all three produce near-identical linkages, which the micro
benchmarks demonstrate.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

import networkx as nx
import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["Edge", "greedy_max_matching", "hungarian_matching", "networkx_matching", "match"]


class Edge(NamedTuple):
    """A weighted candidate link between a left and a right entity."""

    left: str
    right: str
    weight: float


def greedy_max_matching(edges: Sequence[Edge]) -> List[Edge]:
    """Greedy maximum-sum matching (the paper's matcher).

    Edges are taken in decreasing weight order (ties broken by entity ids
    for determinism); an edge is kept when neither endpoint is matched yet.
    """
    ordered = sorted(edges, key=lambda e: (-e.weight, e.left, e.right))
    used_left: set = set()
    used_right: set = set()
    result: List[Edge] = []
    for edge in ordered:
        if edge.left in used_left or edge.right in used_right:
            continue
        used_left.add(edge.left)
        used_right.add(edge.right)
        result.append(edge)
    return result


def hungarian_matching(edges: Sequence[Edge]) -> List[Edge]:
    """Exact maximum-weight matching via the Hungarian algorithm.

    Missing pairs are filled with a large negative weight and dropped from
    the assignment afterwards, so only genuine candidate edges can link.
    """
    if not edges:
        return []
    lefts = sorted({edge.left for edge in edges})
    rights = sorted({edge.right for edge in edges})
    left_index = {entity: k for k, entity in enumerate(lefts)}
    right_index = {entity: k for k, entity in enumerate(rights)}

    weights: Dict[tuple, float] = {}
    for edge in edges:
        key = (left_index[edge.left], right_index[edge.right])
        # Keep the best weight if duplicates are supplied.
        if key not in weights or edge.weight > weights[key]:
            weights[key] = edge.weight

    missing = -1.0 - sum(abs(edge.weight) for edge in edges)
    matrix = np.full((len(lefts), len(rights)), missing, dtype=np.float64)
    for (row, column), weight in weights.items():
        matrix[row, column] = weight

    rows, columns = linear_sum_assignment(matrix, maximize=True)
    result: List[Edge] = []
    for row, column in zip(rows, columns):
        weight = matrix[row, column]
        if weight != missing:
            result.append(Edge(lefts[row], rights[column], float(weight)))
    return result


def networkx_matching(edges: Sequence[Edge]) -> List[Edge]:
    """Exact maximum-weight matching via networkx (blossom algorithm).

    Left and right vertex namespaces are disambiguated with prefixes so an
    id appearing in both datasets cannot collapse into one vertex.
    """
    if not edges:
        return []
    graph = nx.Graph()
    weights: Dict[tuple, float] = {}
    for edge in edges:
        key = (f"L\x00{edge.left}", f"R\x00{edge.right}")
        if key not in weights or edge.weight > weights[key]:
            weights[key] = edge.weight
    for (left, right), weight in weights.items():
        graph.add_edge(left, right, weight=weight)
    mate = nx.algorithms.matching.max_weight_matching(graph)
    result: List[Edge] = []
    for a, b in mate:
        left, right = (a, b) if a.startswith("L\x00") else (b, a)
        result.append(
            Edge(left.split("\x00", 1)[1], right.split("\x00", 1)[1], weights[(left, right)])
        )
    result.sort(key=lambda e: (-e.weight, e.left, e.right))
    return result


#: Matcher registry used by the SLIM pipeline configuration.
MATCHERS = {
    "greedy": greedy_max_matching,
    "hungarian": hungarian_matching,
    "networkx": networkx_matching,
}


def match(edges: Sequence[Edge], method: str = "greedy") -> List[Edge]:
    """Dispatch to a matcher by name (``greedy`` | ``hungarian`` |
    ``networkx``)."""
    try:
        matcher = MATCHERS[method]
    except KeyError:
        raise ValueError(
            f"unknown matching method {method!r}; choose from {sorted(MATCHERS)}"
        ) from None
    return matcher(edges)

"""The mobility-history similarity score (Sec. 3.1, Eq. 2) and its engine.

For an entity pair ``(u, v)`` the score aggregates, over every temporal
window both entities are active in, the proximity of their greedily-matched
(MNN) time-location bins, each weighted by the smaller of the two bins'
IDFs, the whole sum divided by both entities' BM25-style length norms:

``S(u, v) = sum P(e, i) * min(idf(e,E), idf(i,I)) / (L(u,E) * L(v,I))``

An optional mutually-furthest-neighbour pass adds *negative* contributions
for alibi pairs MNN pairing hides (Alg. 1's inner loop).

:class:`SimilarityEngine` precomputes everything shareable across pairs
(per-window bin/IDF tuples via :class:`~repro.core.corpus.HistoryCorpus`, a
bounded cross-pair cell distance cache) and instruments the counters the
paper's evaluation reports: pairwise bin comparisons (Fig. 4d/5d), alibi
pairs (Fig. 4c/5c).

Two scoring backends implement identical semantics:

* ``backend="python"`` — the readable per-pair scalar loop below, kept as
  the verification oracle;
* ``backend="numpy"`` (default) — the vectorized batch kernel of
  :mod:`repro.core.kernels`, which scores whole blocks of candidate pairs
  at once over the corpus' array views.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from ..geo.cell import CellId
from .corpus import HistoryCorpus
from .pairing import cartesian_index_pairs, greedy_index_pairs
from .proximity import (
    DEFAULT_ALIBI_EPS,
    DEFAULT_MAX_SPEED_MPS,
    proximity,
    runaway_distance,
)

__all__ = ["SimilarityConfig", "SimilarityStats", "SimilarityEngine"]

#: Pairing strategy names accepted by :class:`SimilarityConfig`.
PAIRINGS = ("mnn", "all_pairs")

#: Scoring backend names accepted by :class:`SimilarityConfig`.
BACKENDS = ("numpy", "python")

#: Default bound on the engine's cell-distance LRU cache (distinct cell
#: pairs).  At ~100 bytes per dict entry this caps the cache near 25 MB.
DEFAULT_DISTANCE_CACHE_CAP = 1 << 18


@dataclass(frozen=True)
class SimilarityConfig:
    """Knobs of the similarity score, with the paper's defaults.

    Attributes
    ----------
    window_width_minutes:
        Leaf temporal window width (paper default: 15 minutes).
    spatial_level:
        Grid level of the time-location bins (paper default: 12).
    max_speed_mps:
        ``alpha`` — maximum entity speed; paper uses 2 km/minute.
    b:
        Length-normalisation strength in ``L(u,E)`` (0 = ignore history
        sizes, 1 = fully proportional; paper default 0.5).
    pairing:
        ``"mnn"`` (the paper's pairing function ``N``) or ``"all_pairs"``
        (the ablation baseline).
    use_mfn:
        Run the mutually-furthest-neighbour alibi pass (Alg. 1).  Only
        meaningful under MNN pairing.
    use_idf:
        Weight pairs by ``min(idf, idf)`` (Eq. 2); off for the "No IDF"
        ablation.
    use_normalization:
        Divide by ``L(u,E) * L(v,I)``; off for the "No Normalization"
        ablation.
    alibi_eps:
        Clamp for the proximity ratio (see :mod:`repro.core.proximity`).
    backend:
        ``"numpy"`` (default) scores through the vectorized batch kernel
        (:mod:`repro.core.kernels`); ``"python"`` uses the scalar per-pair
        loop — slower, but the arithmetic oracle the parity suite checks
        the kernel against.
    distance_cache_cap:
        Maximum number of distinct cell pairs the scalar backend's
        distance LRU retains (least-recently-used eviction beyond it).
    """

    window_width_minutes: float = 15.0
    spatial_level: int = 12
    max_speed_mps: float = DEFAULT_MAX_SPEED_MPS
    b: float = 0.5
    pairing: str = "mnn"
    use_mfn: bool = True
    use_idf: bool = True
    use_normalization: bool = True
    alibi_eps: float = DEFAULT_ALIBI_EPS
    backend: str = "numpy"
    distance_cache_cap: int = DEFAULT_DISTANCE_CACHE_CAP

    def __post_init__(self) -> None:
        if self.window_width_minutes <= 0:
            raise ValueError("window width must be positive")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        if self.pairing not in PAIRINGS:
            raise ValueError(f"pairing must be one of {PAIRINGS}, got {self.pairing}")
        if self.max_speed_mps <= 0:
            raise ValueError("max speed must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend}")
        if self.distance_cache_cap < 1:
            raise ValueError("distance cache cap must be positive")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0

    @property
    def runaway_meters(self) -> float:
        """``R`` of Eq. 1 for this configuration."""
        return runaway_distance(self.window_width_seconds, self.max_speed_mps)

    def without(self, **changes) -> "SimilarityConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)


@dataclass
class SimilarityStats:
    """Mutable counters accumulated by a :class:`SimilarityEngine`.

    ``bin_comparisons`` counts cell-distance evaluations (the pairwise
    record-comparison cost metric of Fig. 4d/5d/11d); ``alibi_bin_pairs``
    and ``alibi_entity_pairs`` feed Fig. 4c/5c.
    ``distance_cache_hits`` / ``distance_cache_misses`` instrument the
    scalar backend's bounded distance LRU (the numpy backend never touches
    it — distances are recomputed vectorized, which is cheaper than a dict
    round-trip per lookup).
    """

    pairs_scored: int = 0
    bin_comparisons: int = 0
    alibi_bin_pairs: int = 0
    alibi_entity_pairs: int = 0
    common_windows: int = 0
    distance_cache_hits: int = 0
    distance_cache_misses: int = 0

    def merge(self, other: "SimilarityStats") -> None:
        """Accumulate another stats object into this one."""
        self.pairs_scored += other.pairs_scored
        self.bin_comparisons += other.bin_comparisons
        self.alibi_bin_pairs += other.alibi_bin_pairs
        self.alibi_entity_pairs += other.alibi_entity_pairs
        self.common_windows += other.common_windows
        self.distance_cache_hits += other.distance_cache_hits
        self.distance_cache_misses += other.distance_cache_misses


class SimilarityEngine:
    """Scores entity pairs across two history corpora.

    The engine is cheap to construct.  Under ``backend="python"`` a
    bounded cross-pair distance LRU is shared across all ``score`` calls;
    under ``backend="numpy"`` scoring dispatches to the batch kernel of
    :mod:`repro.core.kernels` — per-pair via :meth:`score`, or in whole
    candidate blocks via :meth:`score_batch` (the fast path
    :class:`~repro.core.slim.SlimLinker` uses).
    """

    def __init__(
        self,
        left: HistoryCorpus,
        right: HistoryCorpus,
        config: SimilarityConfig,
    ) -> None:
        if left.level != config.spatial_level or right.level != config.spatial_level:
            raise ValueError(
                "corpora must be built at the similarity spatial level "
                f"({config.spatial_level}); got {left.level} / {right.level}"
            )
        self.left = left
        self.right = right
        self.config = config
        self.stats = SimilarityStats()
        self._runaway = config.runaway_meters
        self._distance_cache: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._distance_cache_cap = config.distance_cache_cap

    # ------------------------------------------------------------------
    # distance with cache
    # ------------------------------------------------------------------
    def distance(self, cell_a: int, cell_b: int) -> float:
        """LRU-cached minimum distance between two cells (metres)."""
        if cell_a == cell_b:
            return 0.0
        key = (cell_a, cell_b) if cell_a < cell_b else (cell_b, cell_a)
        cache = self._distance_cache
        cached = cache.get(key)
        if cached is None:
            self.stats.distance_cache_misses += 1
            cached = CellId(key[0]).distance_meters(CellId(key[1]))
            cache[key] = cached
            if len(cache) > self._distance_cache_cap:
                cache.popitem(last=False)
        else:
            self.stats.distance_cache_hits += 1
            cache.move_to_end(key)
        return cached

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, left_entity: str, right_entity: str) -> float:
        """``S(u, v)`` of Eq. 2 (with the Alg. 1 MFN alibi pass)."""
        score, _ = self.score_with_stats(left_entity, right_entity)
        return score

    def score_batch(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> List[float]:
        """Score a block of pairs, accumulating :attr:`stats` as usual.

        Under ``backend="numpy"`` the whole block goes through one
        vectorized kernel dispatch — windows from every pair are grouped
        by distance-matrix shape, so the batch amortises far better than
        per-pair calls.  Under ``backend="python"`` this is a plain loop
        over :meth:`score`.
        """
        if self.config.backend != "numpy":
            return [self.score(left, right) for left, right in pairs]
        from .kernels import score_pairs_batch

        result = score_pairs_batch(self.left, self.right, pairs, self.config)
        batch = SimilarityStats(
            pairs_scored=len(pairs),
            bin_comparisons=int(result.bin_comparisons.sum()),
            alibi_bin_pairs=int(result.alibi_bin_pairs.sum()),
            alibi_entity_pairs=int((result.alibi_bin_pairs > 0).sum()),
            common_windows=int(result.common_windows.sum()),
        )
        self.stats.merge(batch)
        return result.scores.tolist()

    def score_with_stats(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """Score a pair and return per-pair counters (also accumulated
        on :attr:`stats`)."""
        if self.config.backend == "numpy":
            return self._score_with_stats_numpy(left_entity, right_entity)
        return self._score_with_stats_python(left_entity, right_entity)

    def _score_with_stats_numpy(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """Single-pair dispatch through the batch kernel."""
        from .kernels import score_pairs_batch

        result = score_pairs_batch(
            self.left, self.right, [(left_entity, right_entity)], self.config
        )
        local = SimilarityStats(
            pairs_scored=1,
            bin_comparisons=int(result.bin_comparisons[0]),
            alibi_bin_pairs=int(result.alibi_bin_pairs[0]),
            alibi_entity_pairs=1 if result.alibi_bin_pairs[0] else 0,
            common_windows=int(result.common_windows[0]),
        )
        self.stats.merge(local)
        return float(result.scores[0]), local

    def _score_with_stats_python(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """The scalar verification oracle (Eq. 2 + Alg. 1, loop form)."""
        config = self.config
        runaway = self._runaway
        alibi_eps = config.alibi_eps
        use_idf = config.use_idf
        use_mfn = config.use_mfn and config.pairing == "mnn"
        mnn = config.pairing == "mnn"
        distance = self.distance

        bins_u = self.left.bins_with_idf(left_entity)
        bins_v = self.right.bins_with_idf(right_entity)
        # Iterate the smaller history's windows; lookups hit the larger.
        if len(bins_u) <= len(bins_v):
            outer, inner, flipped = bins_u, bins_v, False
        else:
            outer, inner, flipped = bins_v, bins_u, True

        local = SimilarityStats(pairs_scored=1)
        total = 0.0
        for window, outer_bins in outer.items():
            inner_bins = inner.get(window)
            if inner_bins is None:
                continue
            local.common_windows += 1
            if flipped:
                ev, eu = outer_bins, inner_bins
            else:
                eu, ev = outer_bins, inner_bins

            len_u, len_v = len(eu), len(ev)
            local.bin_comparisons += len_u * len_v
            matrix = [
                [distance(cu, cv) for cv, _ in ev] for cu, _ in eu
            ]

            if mnn:
                selected = greedy_index_pairs(matrix, reverse=False)
            else:
                selected = cartesian_index_pairs(matrix)

            counted = set()
            for iu, iv, pair_distance in selected:
                counted.add((iu, iv))
                p = proximity(pair_distance, runaway, alibi_eps)
                if p < 0.0:
                    local.alibi_bin_pairs += 1
                weight = min(eu[iu][1], ev[iv][1]) if use_idf else 1.0
                total += p * weight

            if use_mfn and (len_u > 1 or len_v > 1):
                for iu, iv, pair_distance in greedy_index_pairs(matrix, reverse=True):
                    # Skip pairs the MNN pass already counted (the paper's
                    # "to avoid double counting" rule).
                    if (iu, iv) in counted:
                        continue
                    p = proximity(pair_distance, runaway, alibi_eps)
                    weight = min(eu[iu][1], ev[iv][1]) if use_idf else 1.0
                    delta = p * weight
                    if delta < 0.0:
                        local.alibi_bin_pairs += 1
                        total += delta

        if config.use_normalization:
            norm = self.left.length_norm(left_entity, config.b) * self.right.length_norm(
                right_entity, config.b
            )
            if norm > 0:
                total /= norm

        if local.alibi_bin_pairs:
            local.alibi_entity_pairs = 1
        self.stats.merge(local)
        return total, local

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def reset_stats(self) -> SimilarityStats:
        """Return the accumulated stats and start fresh counters."""
        finished = self.stats
        self.stats = SimilarityStats()
        return finished

    @property
    def distance_cache_size(self) -> int:
        """Number of distinct cell pairs whose distance has been computed."""
        return len(self._distance_cache)

"""The mobility-history similarity score (Sec. 3.1, Eq. 2) and its engine.

For an entity pair ``(u, v)`` the score aggregates, over every temporal
window both entities are active in, the proximity of their greedily-matched
(MNN) time-location bins, each weighted by the smaller of the two bins'
IDFs, the whole sum divided by both entities' BM25-style length norms:

``S(u, v) = sum P(e, i) * min(idf(e,E), idf(i,I)) / (L(u,E) * L(v,I))``

An optional mutually-furthest-neighbour pass adds *negative* contributions
for alibi pairs MNN pairing hides (Alg. 1's inner loop).

:class:`SimilarityEngine` precomputes everything shareable across pairs
(per-window bin/IDF tuples via :class:`~repro.core.corpus.HistoryCorpus`, a
bounded cross-pair cell distance cache) and instruments the counters the
paper's evaluation reports: pairwise bin comparisons (Fig. 4d/5d), alibi
pairs (Fig. 4c/5c).

Two scoring backends implement identical semantics:

* ``backend="python"`` — the readable per-pair scalar loop below, kept as
  the verification oracle;
* ``backend="numpy"`` (default) — the vectorized batch kernel of
  :mod:`repro.core.kernels`, which scores whole blocks of candidate pairs
  at once over the corpus' array views.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..geo.cell import CellId
from .corpus import HistoryCorpus
from .pairing import cartesian_index_pairs, greedy_index_pairs
from .proximity import (
    DEFAULT_ALIBI_EPS,
    DEFAULT_MAX_SPEED_MPS,
    proximity,
    runaway_distance,
)
from .score_cache import ScoreCache

__all__ = [
    "SimilarityConfig",
    "SimilarityStats",
    "SimilarityEngine",
    "score_cache_space",
]


def score_cache_space(
    left: HistoryCorpus, right: HistoryCorpus, config: "SimilarityConfig"
):
    """The :class:`~repro.core.score_cache.ScoreCache` space an engine
    over these corpora and this config stores raw totals under.

    Fingerprints the corpora (via their cache tokens) and every config
    knob the *raw* Eq. 2 total depends on; ``b`` and
    ``use_normalization`` are excluded on purpose — normalisation is
    re-applied from live corpus statistics on every cache hit.  Exposed
    so cache owners (e.g. :class:`~repro.core.streaming.StreamingLinker`)
    can scope invalidation to their own space in a shared cache.
    """
    return (
        left.cache_token,
        right.cache_token,
        config.window_width_minutes,
        config.spatial_level,
        config.max_speed_mps,
        config.pairing,
        config.use_mfn,
        config.use_idf,
        config.alibi_eps,
    )

#: Pairing strategy names accepted by :class:`SimilarityConfig`.
PAIRINGS = ("mnn", "all_pairs")

#: Scoring backend names accepted by :class:`SimilarityConfig`.
BACKENDS = ("numpy", "python")

#: Default bound on the engine's cell-distance LRU cache (distinct cell
#: pairs).  At ~100 bytes per dict entry this caps the cache near 25 MB.
DEFAULT_DISTANCE_CACHE_CAP = 1 << 18


@dataclass(frozen=True)
class SimilarityConfig:
    """Knobs of the similarity score, with the paper's defaults.

    Attributes
    ----------
    window_width_minutes:
        Leaf temporal window width (paper default: 15 minutes).
    spatial_level:
        Grid level of the time-location bins (paper default: 12).
    max_speed_mps:
        ``alpha`` — maximum entity speed; paper uses 2 km/minute.
    b:
        Length-normalisation strength in ``L(u,E)`` (0 = ignore history
        sizes, 1 = fully proportional; paper default 0.5).
    pairing:
        ``"mnn"`` (the paper's pairing function ``N``) or ``"all_pairs"``
        (the ablation baseline).
    use_mfn:
        Run the mutually-furthest-neighbour alibi pass (Alg. 1).  Only
        meaningful under MNN pairing.
    use_idf:
        Weight pairs by ``min(idf, idf)`` (Eq. 2); off for the "No IDF"
        ablation.
    use_normalization:
        Divide by ``L(u,E) * L(v,I)``; off for the "No Normalization"
        ablation.
    alibi_eps:
        Clamp for the proximity ratio (see :mod:`repro.core.proximity`).
    backend:
        ``"numpy"`` (default) scores through the vectorized batch kernel
        (:mod:`repro.core.kernels`); ``"python"`` uses the scalar per-pair
        loop — slower, but the arithmetic oracle the parity suite checks
        the kernel against.
    distance_cache_cap:
        Maximum number of distinct cell pairs the scalar backend's
        distance LRU retains (least-recently-used eviction beyond it).
    """

    window_width_minutes: float = 15.0
    spatial_level: int = 12
    max_speed_mps: float = DEFAULT_MAX_SPEED_MPS
    b: float = 0.5
    pairing: str = "mnn"
    use_mfn: bool = True
    use_idf: bool = True
    use_normalization: bool = True
    alibi_eps: float = DEFAULT_ALIBI_EPS
    backend: str = "numpy"
    distance_cache_cap: int = DEFAULT_DISTANCE_CACHE_CAP

    def __post_init__(self) -> None:
        if self.window_width_minutes <= 0:
            raise ValueError("window width must be positive")
        if not 0 <= self.spatial_level <= 30:
            raise ValueError("spatial level must be in 0..30")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        if self.pairing not in PAIRINGS:
            raise ValueError(f"pairing must be one of {PAIRINGS}, got {self.pairing}")
        if self.max_speed_mps <= 0:
            raise ValueError("max speed must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend}")
        if self.distance_cache_cap < 1:
            raise ValueError("distance cache cap must be positive")

    @property
    def window_width_seconds(self) -> float:
        """Window width in seconds."""
        return self.window_width_minutes * 60.0

    @property
    def runaway_meters(self) -> float:
        """``R`` of Eq. 1 for this configuration."""
        return runaway_distance(self.window_width_seconds, self.max_speed_mps)

    def without(self, **changes) -> "SimilarityConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)


@dataclass
class SimilarityStats:
    """Mutable counters accumulated by a :class:`SimilarityEngine`.

    ``bin_comparisons`` counts cell-distance evaluations (the pairwise
    record-comparison cost metric of Fig. 4d/5d/11d); ``alibi_bin_pairs``
    and ``alibi_entity_pairs`` feed Fig. 4c/5c.
    ``distance_cache_hits`` / ``distance_cache_misses`` instrument the
    scalar backend's bounded distance LRU (the numpy backend never touches
    it — distances are recomputed vectorized, which is cheaper than a dict
    round-trip per lookup).
    """

    pairs_scored: int = 0
    bin_comparisons: int = 0
    alibi_bin_pairs: int = 0
    alibi_entity_pairs: int = 0
    common_windows: int = 0
    distance_cache_hits: int = 0
    distance_cache_misses: int = 0

    def merge(self, other: "SimilarityStats") -> None:
        """Accumulate another stats object into this one."""
        self.pairs_scored += other.pairs_scored
        self.bin_comparisons += other.bin_comparisons
        self.alibi_bin_pairs += other.alibi_bin_pairs
        self.alibi_entity_pairs += other.alibi_entity_pairs
        self.common_windows += other.common_windows
        self.distance_cache_hits += other.distance_cache_hits
        self.distance_cache_misses += other.distance_cache_misses


class SimilarityEngine:
    """Scores entity pairs across two history corpora.

    The engine is cheap to construct.  Under ``backend="python"`` a
    bounded cross-pair distance LRU is shared across all ``score`` calls;
    under ``backend="numpy"`` scoring dispatches to the batch kernel of
    :mod:`repro.core.kernels` — per-pair via :meth:`score`, or in whole
    candidate blocks via :meth:`score_batch` (the fast path
    :class:`~repro.core.slim.SlimLinker` uses).
    """

    def __init__(
        self,
        left: HistoryCorpus,
        right: HistoryCorpus,
        config: SimilarityConfig,
        score_cache: Optional[ScoreCache] = None,
    ) -> None:
        if left.level != config.spatial_level or right.level != config.spatial_level:
            raise ValueError(
                "corpora must be built at the similarity spatial level "
                f"({config.spatial_level}); got {left.level} / {right.level}"
            )
        self.left = left
        self.right = right
        self.config = config
        self.stats = SimilarityStats()
        self._runaway = config.runaway_meters
        self._distance_cache: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._distance_cache_cap = config.distance_cache_cap
        # Cross-relink memoisation of raw pair totals (see
        # repro.core.score_cache and score_cache_space above).
        self._score_cache = score_cache
        self._cache_space = score_cache_space(left, right, config)
        self._raw_config = config.without(use_normalization=False)

    # ------------------------------------------------------------------
    # distance with cache
    # ------------------------------------------------------------------
    def distance(self, cell_a: int, cell_b: int) -> float:
        """LRU-cached minimum distance between two cells (metres)."""
        if cell_a == cell_b:
            return 0.0
        key = (cell_a, cell_b) if cell_a < cell_b else (cell_b, cell_a)
        cache = self._distance_cache
        cached = cache.get(key)
        if cached is None:
            self.stats.distance_cache_misses += 1
            cached = CellId(key[0]).distance_meters(CellId(key[1]))
            cache[key] = cached
            if len(cache) > self._distance_cache_cap:
                cache.popitem(last=False)
        else:
            self.stats.distance_cache_hits += 1
            cache.move_to_end(key)
        return cached

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, left_entity: str, right_entity: str) -> float:
        """``S(u, v)`` of Eq. 2 (with the Alg. 1 MFN alibi pass)."""
        score, _ = self.score_with_stats(left_entity, right_entity)
        return score

    def score_batch(
        self,
        pairs: Sequence[Tuple[str, str]],
        dispatch=None,
    ) -> List[float]:
        """Score a block of pairs, accumulating :attr:`stats` as usual.

        Under ``backend="numpy"`` the whole block goes through one
        vectorized kernel dispatch — windows from every pair are grouped
        by distance-matrix shape, so the batch amortises far better than
        per-pair calls.  Under ``backend="python"`` this is a plain loop
        over :meth:`score`.

        ``dispatch`` overrides *how* the kernel work runs without touching
        what is computed: a callable ``(pairs, config) ->
        BatchScoreResult`` that must return exactly what
        :func:`~repro.core.kernels.score_pairs_batch` would for the same
        arguments.  The parallel scoring stage passes a sharding dispatch
        that fans sub-blocks out through an executor
        (:mod:`repro.exec`); cache lookups, stores and normalisation all
        stay in this engine, so cached and parallel scoring compose.

        With a :class:`~repro.core.score_cache.ScoreCache` attached, pairs
        whose cached raw totals are still valid skip the kernel entirely;
        only the cache misses are dispatched (and stored back), and every
        pair's normalisation is applied from the corpora's *current*
        statistics — so cached and freshly computed scores are
        indistinguishable.  The hit path is fully vectorized: one
        :meth:`~repro.core.score_cache.ScoreCache.lookup_batch` keyed on
        the block's history-version arrays, one array normalisation —
        no per-pair Python loop.
        """
        if self.config.backend != "numpy":
            return [self.score(left, right) for left, right in pairs]
        from .kernels import score_pairs_batch

        if dispatch is None:
            def dispatch(block, config):
                return score_pairs_batch(self.left, self.right, block, config)

        cache = self._score_cache
        if cache is None:
            result = dispatch(pairs, self.config)
            batch = SimilarityStats(
                pairs_scored=len(pairs),
                bin_comparisons=int(result.bin_comparisons.sum()),
                alibi_bin_pairs=int(result.alibi_bin_pairs.sum()),
                alibi_entity_pairs=int((result.alibi_bin_pairs > 0).sum()),
                common_windows=int(result.common_windows.sum()),
            )
            self.stats.merge(batch)
            return result.scores.tolist()

        pairs = list(pairs)
        count = len(pairs)
        if count == 0:
            return []
        import numpy as np

        # Encode each side's entities as dense integer codes in one pass:
        # versions and length norms are then computed once per *unique*
        # entity and fanned out to pairs by vectorized gathers.
        left_codes = np.empty(count, dtype=np.intp)
        right_codes = np.empty(count, dtype=np.intp)
        left_code_of: dict = {}
        right_code_of: dict = {}
        left_entities: List[str] = []
        right_entities: List[str] = []
        for position, (left_entity, right_entity) in enumerate(pairs):
            code = left_code_of.get(left_entity)
            if code is None:
                code = len(left_entities)
                left_code_of[left_entity] = code
                left_entities.append(left_entity)
            left_codes[position] = code
            code = right_code_of.get(right_entity)
            if code is None:
                code = len(right_entities)
                right_code_of[right_entity] = code
                right_entities.append(right_entity)
            right_codes[position] = code

        u_versions = self.left.history_versions(left_entities)[left_codes]
        v_versions = self.right.history_versions(right_entities)[right_codes]
        looked_up = cache.lookup_batch(
            self._cache_space, pairs, u_versions, v_versions
        )
        raw = looked_up.raw
        bin_comparisons = looked_up.bin_comparisons
        common_windows = looked_up.common_windows
        alibi_bin_pairs = looked_up.alibi_bin_pairs
        miss_positions = np.nonzero(~looked_up.hit)[0]
        if miss_positions.size:
            misses = [pairs[position] for position in miss_positions.tolist()]
            result = dispatch(misses, self._raw_config)
            raw[miss_positions] = result.scores
            bin_comparisons[miss_positions] = result.bin_comparisons
            common_windows[miss_positions] = result.common_windows
            alibi_bin_pairs[miss_positions] = result.alibi_bin_pairs
            cache.store_batch(
                self._cache_space,
                misses,
                u_versions[miss_positions],
                v_versions[miss_positions],
                raw=result.scores,
                bin_comparisons=result.bin_comparisons,
                common_windows=result.common_windows,
                alibi_bin_pairs=result.alibi_bin_pairs,
            )
        scores = raw
        if self.config.use_normalization:
            b = self.config.b
            norms = (
                self.left.length_norms(left_entities, b)[left_codes]
                * self.right.length_norms(right_entities, b)[right_codes]
            )
            positive = norms > 0
            scores = raw.copy()
            scores[positive] = raw[positive] / norms[positive]
        self.stats.merge(
            SimilarityStats(
                pairs_scored=count,
                bin_comparisons=int(bin_comparisons.sum()),
                alibi_bin_pairs=int(alibi_bin_pairs.sum()),
                alibi_entity_pairs=int(np.count_nonzero(alibi_bin_pairs)),
                common_windows=int(common_windows.sum()),
            )
        )
        return scores.tolist()

    def score_with_stats(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """Score a pair and return per-pair counters (also accumulated
        on :attr:`stats`).  Raw totals are served from / stored into the
        attached :class:`~repro.core.score_cache.ScoreCache`, if any."""
        cache = self._score_cache
        if cache is not None:
            entry = cache.lookup(
                self._cache_space,
                left_entity,
                right_entity,
                self.left.history(left_entity).version,
                self.right.history(right_entity).version,
            )
            if entry is not None:
                local = SimilarityStats(
                    pairs_scored=1,
                    bin_comparisons=entry.bin_comparisons,
                    common_windows=entry.common_windows,
                    alibi_bin_pairs=entry.alibi_bin_pairs,
                    alibi_entity_pairs=1 if entry.alibi_bin_pairs else 0,
                )
                self.stats.merge(local)
                return (
                    self._normalize(left_entity, right_entity, entry.raw),
                    local,
                )
        if self.config.backend == "numpy":
            raw, local = self._raw_numpy(left_entity, right_entity)
        else:
            raw, local = self._raw_python(left_entity, right_entity)
        if cache is not None:
            cache.store(
                self._cache_space,
                left_entity,
                right_entity,
                self.left.history(left_entity).version,
                self.right.history(right_entity).version,
                raw=raw,
                bin_comparisons=local.bin_comparisons,
                common_windows=local.common_windows,
                alibi_bin_pairs=local.alibi_bin_pairs,
            )
        self.stats.merge(local)
        return self._normalize(left_entity, right_entity, raw), local

    def _normalize(self, left_entity: str, right_entity: str, raw: float) -> float:
        """Apply the Eq. 2 length normalisation ``L(u,E) * L(v,I)`` to a
        raw pair total (identity when disabled or degenerate)."""
        if not self.config.use_normalization:
            return raw
        norm = self.left.length_norm(
            left_entity, self.config.b
        ) * self.right.length_norm(right_entity, self.config.b)
        return raw / norm if norm > 0 else raw

    def _raw_numpy(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """Single-pair raw total through the batch kernel."""
        from .kernels import score_pairs_batch

        result = score_pairs_batch(
            self.left, self.right, [(left_entity, right_entity)], self._raw_config
        )
        local = SimilarityStats(
            pairs_scored=1,
            bin_comparisons=int(result.bin_comparisons[0]),
            alibi_bin_pairs=int(result.alibi_bin_pairs[0]),
            alibi_entity_pairs=1 if result.alibi_bin_pairs[0] else 0,
            common_windows=int(result.common_windows[0]),
        )
        return float(result.scores[0]), local

    def _raw_python(
        self, left_entity: str, right_entity: str
    ) -> Tuple[float, SimilarityStats]:
        """The scalar verification oracle (Eq. 2 + Alg. 1, loop form),
        stopping short of the length normalisation."""
        config = self.config
        runaway = self._runaway
        alibi_eps = config.alibi_eps
        use_idf = config.use_idf
        use_mfn = config.use_mfn and config.pairing == "mnn"
        mnn = config.pairing == "mnn"
        distance = self.distance

        bins_u = self.left.bins_with_idf(left_entity)
        bins_v = self.right.bins_with_idf(right_entity)
        # Iterate the smaller history's windows; lookups hit the larger.
        if len(bins_u) <= len(bins_v):
            outer, inner, flipped = bins_u, bins_v, False
        else:
            outer, inner, flipped = bins_v, bins_u, True

        local = SimilarityStats(pairs_scored=1)
        total = 0.0
        for window, outer_bins in outer.items():
            inner_bins = inner.get(window)
            if inner_bins is None:
                continue
            local.common_windows += 1
            if flipped:
                ev, eu = outer_bins, inner_bins
            else:
                eu, ev = outer_bins, inner_bins

            len_u, len_v = len(eu), len(ev)
            local.bin_comparisons += len_u * len_v
            matrix = [
                [distance(cu, cv) for cv, _ in ev] for cu, _ in eu
            ]

            if mnn:
                selected = greedy_index_pairs(matrix, reverse=False)
            else:
                selected = cartesian_index_pairs(matrix)

            counted = set()
            for iu, iv, pair_distance in selected:
                counted.add((iu, iv))
                p = proximity(pair_distance, runaway, alibi_eps)
                if p < 0.0:
                    local.alibi_bin_pairs += 1
                weight = min(eu[iu][1], ev[iv][1]) if use_idf else 1.0
                total += p * weight

            if use_mfn and (len_u > 1 or len_v > 1):
                for iu, iv, pair_distance in greedy_index_pairs(matrix, reverse=True):
                    # Skip pairs the MNN pass already counted (the paper's
                    # "to avoid double counting" rule).
                    if (iu, iv) in counted:
                        continue
                    p = proximity(pair_distance, runaway, alibi_eps)
                    weight = min(eu[iu][1], ev[iv][1]) if use_idf else 1.0
                    delta = p * weight
                    if delta < 0.0:
                        local.alibi_bin_pairs += 1
                        total += delta

        if local.alibi_bin_pairs:
            local.alibi_entity_pairs = 1
        return total, local

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def reset_stats(self) -> SimilarityStats:
        """Return the accumulated stats and start fresh counters."""
        finished = self.stats
        self.stats = SimilarityStats()
        return finished

    @property
    def distance_cache_size(self) -> int:
        """Number of distinct cell pairs whose distance has been computed."""
        return len(self._distance_cache)

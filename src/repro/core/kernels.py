"""Vectorized batch similarity kernel (the ``backend="numpy"`` hot path).

The scalar engine in :mod:`repro.core.similarity` scores one pair at a
time, window by window, with Python loops over dict-backed bins — faithful
to Eq. 2 / Alg. 1 and easy to audit, but every one of the paper's figures
spends most of its runtime there.  This module re-implements the same
arithmetic over blocks of candidate pairs:

1.  **Gather** — for every candidate pair, the temporal windows both
    entities are active in are found with one sorted-array intersection
    over the per-entity window directories
    (:meth:`repro.core.corpus.HistoryCorpus.window_index`); each
    ``(pair, window)`` *interaction* is then a slice of the corpus-wide
    flat arrays (:meth:`repro.core.corpus.HistoryCorpus.arrays`: cell
    ids, geometry-table slots, IDFs; Morton-sorted for locality).
2.  **Shape grouping** — interactions whose distance matrix is a *vector*
    (one cell on either side, the overwhelming majority in real
    workloads) are processed ragged in a single flat dispatch with
    segment reductions (``np.minimum.reduceat`` et al.); true matrices
    (``m, n >= 2``) are padded into square power-of-two buckets
    (``pow2ceil(max(m, n))``), so a whole block needs only a handful of
    dense ``(B, s, s)`` tensor dispatches.
3.  **Distance** — the pairwise cell distances of a whole group are
    computed in one shot: haversine centre angle from precomputed
    lat/lng/cos(lat) minus both circumradii, clamped at zero, with
    identical cells forced to exactly ``0.0`` — the same lower-bound
    formula as :meth:`repro.geo.cell.CellId.distance_meters`, evaluated on
    the same per-cell constants.
4.  **Pairing** — greedy mutually-nearest (MNN) and mutually-furthest
    (MFN) selections are run for all matrices of a group simultaneously:
    one stable ``argsort`` over the flattened matrices, then ``m*n``
    vectorized accept/reject steps with used-row/used-column masks.  Stable
    ordering reproduces the scalar ``greedy_index_pairs`` tie-break
    (row-major on equal distances) exactly.
5.  **Aggregation** — proximity (Eq. 1), min-IDF weights, the MFN
    negative-only alibi contributions, and all the instrumentation counters
    (bin comparisons, common windows, alibi bin/entity pairs) are reduced
    per pair with ``np.add.at`` and normalised by the BM25-style length
    norms.

The scalar path stays available as the verification oracle; the parity
suite (``tests/core/test_kernels_parity.py``) asserts both backends agree
to within 1e-9 on scores, counters and final links across every pairing /
MFN / IDF / normalisation combination.

Two properties of this kernel matter to the streaming layer
(:mod:`repro.core.streaming`):

* **dispatch determinism** — a pair's per-window contributions are
  accumulated in the same order (windows ascending; vector interactions,
  then matrix buckets by size) regardless of which other pairs share the
  batch, so scoring a pair alone reproduces its in-block result bit for
  bit.  That is what lets a delta relink re-score only cache misses and
  still match a cold run exactly;
* **normalisation is a separable epilogue** — with
  ``use_normalization=False`` the kernel returns the raw Eq. 2 totals the
  :class:`~repro.core.score_cache.ScoreCache` memoises; the engine applies
  the live length norms afterwards (the identical ``raw / norm``
  operation this kernel would have performed).

Doctest — batched greedy pairing, the heart of step 4:

>>> import numpy as np
>>> distances = np.array([[[0.0, 5.0],
...                        [5.0, 1.0]]])
>>> greedy_select_batch(distances, reverse=False)[0]
array([[ True, False],
       [False,  True]])
>>> greedy_select_batch(distances, reverse=True)[0]  # furthest pairing
array([[False,  True],
       [ True, False]])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from ..geo.point import EARTH_RADIUS_METERS
from .corpus import HistoryCorpus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .similarity import SimilarityConfig

__all__ = [
    "BatchScoreResult",
    "concat_results",
    "score_pairs_batch",
    "greedy_select_batch",
]

#: Histories at or below this many populated windows intersect through
#: their window dicts; larger ones use one sorted numpy intersection.
_DICT_INTERSECT_MAX_WINDOWS = 64


class BatchScoreResult:
    """Per-pair outputs of one batch kernel dispatch (parallel arrays)."""

    __slots__ = (
        "scores",
        "bin_comparisons",
        "common_windows",
        "alibi_bin_pairs",
    )

    def __init__(
        self,
        scores: np.ndarray,
        bin_comparisons: np.ndarray,
        common_windows: np.ndarray,
        alibi_bin_pairs: np.ndarray,
    ) -> None:
        self.scores = scores
        self.bin_comparisons = bin_comparisons
        self.common_windows = common_windows
        self.alibi_bin_pairs = alibi_bin_pairs

    @classmethod
    def empty(cls) -> "BatchScoreResult":
        """A zero-pair result (the identity of :func:`concat_results`)."""
        return cls(
            scores=np.empty(0, dtype=np.float64),
            bin_comparisons=np.zeros(0, dtype=np.int64),
            common_windows=np.zeros(0, dtype=np.int64),
            alibi_bin_pairs=np.zeros(0, dtype=np.int64),
        )


def concat_results(results: Sequence[BatchScoreResult]) -> BatchScoreResult:
    """Concatenate per-shard kernel results back into pair order.

    The executor-backed scoring path shards a candidate block across
    workers and stitches the per-shard :class:`BatchScoreResult`\\ s back
    together with this; dispatch determinism (see the module docstring)
    is what makes the stitched result bit-identical to one unsharded
    dispatch.
    """
    if not results:
        return BatchScoreResult.empty()
    if len(results) == 1:
        return results[0]
    return BatchScoreResult(
        scores=np.concatenate([r.scores for r in results]),
        bin_comparisons=np.concatenate([r.bin_comparisons for r in results]),
        common_windows=np.concatenate([r.common_windows for r in results]),
        alibi_bin_pairs=np.concatenate([r.alibi_bin_pairs for r in results]),
    )


def greedy_select_batch(
    distances: np.ndarray, reverse: bool, valid: "np.ndarray | None" = None
) -> np.ndarray:
    """Batched greedy mutual pairing over ``(B, m, n)`` distance tensors.

    The vector twin of :func:`repro.core.pairing.greedy_index_pairs`: for
    every matrix of the batch, repeatedly take the smallest (``reverse`` =
    False) or largest (True) remaining entry whose row and column are both
    unused, until ``min(m, n)`` entries are selected.  ``valid`` (optional
    boolean mask, same shape) excludes padded entries from selection.
    Returns a boolean selection mask of the same shape.

    Vector shapes (one row or one column) reduce to a single
    ``argmin``/``argmax``.  General matrices use the locally-dominant
    formulation of sequential greedy: rank all entries by one stable sort,
    then accept, in rounds, every entry that is the best-ranked survivor
    of both its row and its column — such entries never conflict, and the
    fixpoint equals the one-at-a-time greedy result.  Rounds are bounded
    by ``min(m, n)`` and are O(1) numpy passes each, so the whole batch
    costs a handful of vector operations instead of a Python loop per
    candidate.

    Ties break exactly like the scalar code: stable ordering (and
    first-occurrence ``argmin``/``argmax``) resolves equal distances
    row-major.
    """
    batch, rows, cols = distances.shape
    size = rows * cols
    if rows == 1 and cols == 1:
        return np.ones((batch, 1, 1), dtype=bool)
    flat = distances.reshape(batch, size)
    batch_index = np.arange(batch)
    if rows == 1 or cols == 1:
        # (The kernel's own vector dispatch never pads, but honour the
        # documented `valid` contract for external callers: masked entries
        # must not win the argmin/argmax.)
        if valid is not None:
            flat = np.where(
                valid.reshape(batch, size), flat, -np.inf if reverse else np.inf
            )
        best = np.argmax(flat, axis=1) if reverse else np.argmin(flat, axis=1)
        selected = np.zeros((batch, size), dtype=bool)
        selected[batch_index, best] = True
        return selected.reshape(batch, rows, cols)
    if rows == 2 and cols == 2 and valid is None:
        # Closed form: greedy takes the extreme entry, which forces the
        # diagonally opposite entry as the only remaining valid pair.
        best = np.argmax(flat, axis=1) if reverse else np.argmin(flat, axis=1)
        selected = np.zeros((batch, size), dtype=bool)
        selected[batch_index, best] = True
        selected[batch_index, 3 - best] = True
        return selected.reshape(batch, rows, cols)

    order = np.argsort(-flat if reverse else flat, axis=1, kind="stable")
    ranks = np.empty((batch, size), dtype=np.int64)
    np.put_along_axis(
        ranks, order, np.broadcast_to(np.arange(size), (batch, size)), axis=1
    )
    ranks = ranks.reshape(batch, rows, cols)

    alive = (
        np.ones((batch, rows, cols), dtype=bool) if valid is None else valid.copy()
    )
    selected = np.zeros((batch, rows, cols), dtype=bool)
    # Rows of the batch finish at different rounds; once most are done it
    # is cheaper to compact the survivors than to keep scanning everyone.
    live_map: "np.ndarray | None" = None
    while True:
        masked = np.where(alive, ranks, size)
        accept = (
            (masked == masked.min(axis=2, keepdims=True))
            & (masked == masked.min(axis=1, keepdims=True))
            & alive
        )
        if live_map is None:
            selected |= accept
        else:
            selected[live_map] |= accept
        alive &= ~(
            accept.any(axis=2, keepdims=True) | accept.any(axis=1, keepdims=True)
        )
        live = alive.any(axis=(1, 2))
        survivors = int(live.sum())
        if not survivors:
            return selected
        if survivors * 2 < live.shape[0]:
            keep = np.nonzero(live)[0]
            live_map = keep if live_map is None else live_map[keep]
            alive = alive[keep]
            ranks = ranks[keep]


def _pow2ceil(values: np.ndarray) -> np.ndarray:
    """Elementwise smallest power of two >= ``values`` (ints >= 1).

    Uses ``frexp`` (exact for integers below 2**53) instead of ``log2``
    rounding, so exact powers of two map to themselves.

    >>> _pow2ceil(np.array([1, 2, 3, 4, 9])).tolist()
    [1, 2, 4, 4, 16]
    """
    frac, exponent = np.frexp(values.astype(np.float64))
    return np.where(frac == 0.5, values, np.left_shift(1, exponent))


def _cell_distances(
    lat_u: np.ndarray,
    lng_u: np.ndarray,
    cos_u: np.ndarray,
    rad_u: np.ndarray,
    cells_u: np.ndarray,
    lat_v: np.ndarray,
    lng_v: np.ndarray,
    cos_v: np.ndarray,
    rad_v: np.ndarray,
    cells_v: np.ndarray,
) -> np.ndarray:
    """Elementwise cell distances over broadcastable geometry arrays:
    haversine centre separation minus both circumradii, clamped at zero;
    identical cells are exactly zero (the same lower bound as
    :meth:`repro.geo.cell.CellId.distance_meters`)."""
    sin_dlat = np.sin((lat_v - lat_u) * 0.5)
    sin_dlng = np.sin((lng_v - lng_u) * 0.5)
    haversine = sin_dlat * sin_dlat + (cos_u * cos_v) * sin_dlng * sin_dlng
    angle = 2.0 * np.arcsin(np.minimum(1.0, np.sqrt(haversine)))
    separation = angle * EARTH_RADIUS_METERS - rad_u - rad_v
    distances = np.maximum(separation, 0.0)
    distances[cells_u == cells_v] = 0.0
    return distances


def _pairwise_distances(
    left: HistoryCorpus,
    right: HistoryCorpus,
    u_slots: np.ndarray,
    v_slots: np.ndarray,
    u_cells: np.ndarray,
    v_cells: np.ndarray,
) -> np.ndarray:
    """``(B, m, n)`` pairwise cell distances for one matrix bucket."""
    geo_u = left.cell_table()
    geo_v = right.cell_table()
    return _cell_distances(
        geo_u.lat[u_slots][:, :, None],
        geo_u.lng[u_slots][:, :, None],
        geo_u.cos_lat[u_slots][:, :, None],
        geo_u.radius[u_slots][:, :, None],
        u_cells[:, :, None],
        geo_v.lat[v_slots][:, None, :],
        geo_v.lng[v_slots][:, None, :],
        geo_v.cos_lat[v_slots][:, None, :],
        geo_v.radius[v_slots][:, None, :],
        v_cells[:, None, :],
    )


def _segment_first_extreme(
    values: np.ndarray,
    seg_start: np.ndarray,
    lengths: np.ndarray,
    largest: bool,
) -> np.ndarray:
    """Index of the first per-segment minimum (or maximum) of a ragged
    flat array — the segment twin of first-occurrence ``argmin``/``argmax``,
    which is exactly the scalar greedy tie-break for vector matrices."""
    reducer = np.maximum if largest else np.minimum
    extreme = reducer.reduceat(values, seg_start)
    is_extreme = values == np.repeat(extreme, lengths)
    hits = np.cumsum(is_extreme)
    before = np.empty(len(seg_start), dtype=np.int64)
    before[0] = 0
    if len(seg_start) > 1:
        before[1:] = hits[seg_start[1:] - 1]
    first = is_extreme & ((hits - np.repeat(before, lengths)) == 1)
    return np.nonzero(first)[0]


def _score_vector_interactions(
    left: HistoryCorpus,
    right: HistoryCorpus,
    config: "SimilarityConfig",
    runaway: float,
    pair_of: np.ndarray,
    off_u: np.ndarray,
    count_u: np.ndarray,
    off_v: np.ndarray,
    count_v: np.ndarray,
    totals: np.ndarray,
    alibi_bins: np.ndarray,
) -> None:
    """Score every interaction whose distance matrix is a vector
    (``min(m, n) == 1``) in one ragged flat dispatch.

    MNN degenerates to the first per-segment minimum, MFN to the first
    per-segment maximum (skipped when it coincides with the MNN pick —
    the scalar "avoid double counting" rule), and the all-pairs ablation
    to a plain segment sum, so no greedy loop is needed at all.
    """
    lengths = count_u * count_v
    total = int(lengths.sum())
    seg_start = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=seg_start[1:])
    position = np.arange(total) - np.repeat(seg_start, lengths)
    u_advances = np.repeat(count_v == 1, lengths)
    u_idx = np.repeat(off_u, lengths) + np.where(u_advances, position, 0)
    v_idx = np.repeat(off_v, lengths) + np.where(u_advances, 0, position)

    flats_u = left.arrays()
    flats_v = right.arrays()
    geo_u = left.cell_table()
    geo_v = right.cell_table()
    slots_u = flats_u.slots[u_idx]
    slots_v = flats_v.slots[v_idx]
    distances = _cell_distances(
        geo_u.lat[slots_u],
        geo_u.lng[slots_u],
        geo_u.cos_lat[slots_u],
        geo_u.radius[slots_u],
        flats_u.cells[u_idx],
        geo_v.lat[slots_v],
        geo_v.lng[slots_v],
        geo_v.cos_lat[slots_v],
        geo_v.radius[slots_v],
        flats_v.cells[v_idx],
    )
    ratio = np.minimum(distances / runaway, 2.0 - config.alibi_eps)
    prox = np.log2(2.0 - ratio)
    if config.use_idf:
        contribution = prox * np.minimum(flats_u.idf[u_idx], flats_v.idf[v_idx])
    else:
        contribution = prox

    if config.pairing == "mnn":
        nearest = _segment_first_extreme(distances, seg_start, lengths, largest=False)
        seg_totals = contribution[nearest]
        seg_alibi = (prox[nearest] < 0.0).astype(np.int64)
        if config.use_mfn and bool((distances > runaway).any()):
            furthest = _segment_first_extreme(
                distances, seg_start, lengths, largest=True
            )
            delta = contribution[furthest]
            negative = (furthest != nearest) & (delta < 0.0)
            seg_totals = seg_totals + np.where(negative, delta, 0.0)
            seg_alibi += negative
    else:
        seg_totals = np.add.reduceat(contribution, seg_start)
        seg_alibi = np.add.reduceat((prox < 0.0).astype(np.int64), seg_start)

    np.add.at(totals, pair_of, seg_totals)
    np.add.at(alibi_bins, pair_of, seg_alibi)


def _score_shape_group(
    left: HistoryCorpus,
    right: HistoryCorpus,
    config: "SimilarityConfig",
    runaway: float,
    pair_index: np.ndarray,
    u_slots: np.ndarray,
    v_slots: np.ndarray,
    u_cells: np.ndarray,
    v_cells: np.ndarray,
    u_idf: np.ndarray,
    v_idf: np.ndarray,
    valid: "np.ndarray | None",
    totals: np.ndarray,
    alibi_bins: np.ndarray,
) -> None:
    """Score every interaction of one padded shape bucket in place.

    ``valid`` masks real (non-padded) matrix entries; ``None`` means the
    whole bucket is unpadded.  Padded rows/columns duplicate the last real
    cell of their side, so the distance math never sees garbage — they are
    simply excluded from selection and aggregation.
    """
    rows = u_slots.shape[1]
    cols = v_slots.shape[1]
    mnn = config.pairing == "mnn"
    use_mfn = config.use_mfn and mnn and (rows > 1 or cols > 1)

    distances = _pairwise_distances(left, right, u_slots, v_slots, u_cells, v_cells)
    ratio = np.minimum(distances / runaway, 2.0 - config.alibi_eps)
    prox = np.log2(2.0 - ratio)
    if config.use_idf:
        weight = np.minimum(u_idf[:, :, None], v_idf[:, None, :])
        contribution = prox * weight
    else:
        contribution = prox

    if mnn:
        selected = greedy_select_batch(distances, reverse=False, valid=valid)
    elif valid is None:
        selected = np.ones_like(contribution, dtype=bool)
    else:
        selected = valid

    group_totals = np.where(selected, contribution, 0.0).sum(axis=(1, 2))
    group_alibi = (selected & (prox < 0.0)).sum(axis=(1, 2))

    if use_mfn:
        # The MFN pass can only contribute negative (alibi) terms, and
        # those need a distance beyond the runaway — matrices without one
        # are skipped wholesale, which on friendly workloads prunes almost
        # the entire furthest-pairing cost.
        alibi_possible = distances > runaway
        if valid is not None:
            alibi_possible &= valid
        needs_mfn = np.nonzero(alibi_possible.any(axis=(1, 2)))[0]
        if needs_mfn.size:
            furthest = greedy_select_batch(
                distances[needs_mfn],
                reverse=True,
                valid=None if valid is None else valid[needs_mfn],
            )
            negative = (
                furthest & ~selected[needs_mfn] & (contribution[needs_mfn] < 0.0)
            )
            group_totals[needs_mfn] += np.where(
                negative, contribution[needs_mfn], 0.0
            ).sum(axis=(1, 2))
            group_alibi[needs_mfn] += negative.sum(axis=(1, 2))

    np.add.at(totals, pair_index, group_totals)
    np.add.at(alibi_bins, pair_index, group_alibi)


def score_pairs_batch(
    left: HistoryCorpus,
    right: HistoryCorpus,
    pairs: Sequence[Tuple[str, str]],
    config: "SimilarityConfig",
) -> BatchScoreResult:
    """Score a block of candidate pairs through the vectorized kernel.

    Semantically identical to running the scalar
    :meth:`repro.core.similarity.SimilarityEngine.score_with_stats` over
    ``pairs``; all the per-pair counters of
    :class:`~repro.core.similarity.SimilarityStats` are reproduced so the
    instrumented figures (bin comparisons, alibi pairs) are backend
    independent.
    """
    num_pairs = len(pairs)
    totals = np.zeros(num_pairs, dtype=np.float64)
    bin_comparisons = np.zeros(num_pairs, dtype=np.int64)
    common_windows = np.zeros(num_pairs, dtype=np.int64)
    alibi_bins = np.zeros(num_pairs, dtype=np.int64)
    runaway = config.runaway_meters
    flats_u = left.arrays()
    flats_v = right.arrays()

    # Per pair, the temporal windows both entities are active in become
    # interaction records (pair, u offset, u count, v offset, v count).
    # Small histories (the common case) intersect through the window dicts
    # — with an O(min) disjointness pre-reject, crucial for sparse worlds
    # where most candidate pairs share nothing; large ones use one sorted
    # numpy intersection.
    pair_records: List[int] = []
    off_u_records: List[int] = []
    count_u_records: List[int] = []
    off_v_records: List[int] = []
    count_v_records: List[int] = []
    pair_chunks: List[np.ndarray] = []
    field_chunks: List[np.ndarray] = []
    for index, (left_entity, right_entity) in enumerate(pairs):
        index_u = left.window_index(left_entity)
        index_v = right.window_index(right_entity)
        if min(len(index_u), len(index_v)) <= _DICT_INTERSECT_MAX_WINDOWS:
            slices_u = index_u.slices
            slices_v = index_v.slices
            if len(slices_u) <= len(slices_v):
                if slices_u.keys().isdisjoint(slices_v):
                    continue
                for window, (offset_u, cells_u) in slices_u.items():
                    hit = slices_v.get(window)
                    if hit is None:
                        continue
                    pair_records.append(index)
                    off_u_records.append(offset_u)
                    count_u_records.append(cells_u)
                    off_v_records.append(hit[0])
                    count_v_records.append(hit[1])
            else:
                if slices_v.keys().isdisjoint(slices_u):
                    continue
                for window, (offset_v, cells_v) in slices_v.items():
                    hit = slices_u.get(window)
                    if hit is None:
                        continue
                    pair_records.append(index)
                    off_u_records.append(hit[0])
                    count_u_records.append(hit[1])
                    off_v_records.append(offset_v)
                    count_v_records.append(cells_v)
            continue
        _, in_u, in_v = np.intersect1d(
            index_u.windows,
            index_v.windows,
            assume_unique=True,
            return_indices=True,
        )
        if not in_u.size:
            continue
        fields = np.empty((4, in_u.size), dtype=np.int64)
        fields[0] = index_u.offsets[in_u]
        fields[1] = index_u.counts[in_u]
        fields[2] = index_v.offsets[in_v]
        fields[3] = index_v.counts[in_v]
        pair_chunks.append(np.full(in_u.size, index, dtype=np.int64))
        field_chunks.append(fields)

    if pair_records:
        pair_chunks.append(np.asarray(pair_records, dtype=np.int64))
        field_chunks.append(
            np.asarray(
                [off_u_records, count_u_records, off_v_records, count_v_records],
                dtype=np.int64,
            )
        )
    if not pair_chunks:
        return BatchScoreResult(
            scores=totals,
            bin_comparisons=bin_comparisons,
            common_windows=common_windows,
            alibi_bin_pairs=alibi_bins,
        )

    pair_of = np.concatenate(pair_chunks)
    off_u, count_u, off_v, count_v = np.hstack(field_chunks)
    common_windows += np.bincount(pair_of, minlength=num_pairs).astype(np.int64)
    bin_comparisons += np.bincount(
        pair_of, weights=(count_u * count_v).astype(np.float64), minlength=num_pairs
    ).astype(np.int64)

    # Vector-shaped interactions (one cell on either side) take the flat
    # ragged path: one dispatch, no padding, no greedy loop.
    vector = (count_u == 1) | (count_v == 1)
    if vector.any():
        members = np.nonzero(vector)[0]
        _score_vector_interactions(
            left,
            right,
            config,
            runaway,
            pair_of[members],
            off_u[members],
            count_u[members],
            off_v[members],
            count_v[members],
            totals,
            alibi_bins,
        )

    # True matrices go into square power-of-two buckets: a (m, n) matrix
    # lands in bucket s = pow2ceil(max(m, n)), padded by repeating each
    # side's last cell (masked out of selection/aggregation).  Bounded
    # padding waste buys an O(log) bucket count instead of one dispatch
    # per distinct shape.
    matrix = np.nonzero(~vector)[0]
    if matrix.size:
        sizes = _pow2ceil(np.maximum(count_u[matrix], count_v[matrix]))
        for side in np.unique(sizes).tolist():
            members = matrix[sizes == side]
            m_real = count_u[members, None]
            n_real = count_v[members, None]
            span = np.arange(side)
            idx_u = off_u[members, None] + np.minimum(span, m_real - 1)
            idx_v = off_v[members, None] + np.minimum(span, n_real - 1)
            if (m_real < side).any() or (n_real < side).any():
                valid = (span < m_real)[:, :, None] & (span < n_real)[:, None, :]
            else:
                valid = None
            _score_shape_group(
                left,
                right,
                config,
                runaway,
                pair_of[members],
                flats_u.slots[idx_u],
                flats_v.slots[idx_v],
                flats_u.cells[idx_u],
                flats_v.cells[idx_v],
                flats_u.idf[idx_u],
                flats_v.idf[idx_v],
                valid,
                totals,
                alibi_bins,
            )

    if config.use_normalization:
        for index, (left_entity, right_entity) in enumerate(pairs):
            norm = left.length_norm(left_entity, config.b) * right.length_norm(
                right_entity, config.b
            )
            if norm > 0:
                totals[index] /= norm

    return BatchScoreResult(
        scores=totals,
        bin_comparisons=bin_comparisons,
        common_windows=common_windows,
        alibi_bin_pairs=alibi_bins,
    )

"""The SLIM pipeline (Alg. 1): histories -> candidates -> scores ->
matching -> automated stop threshold.

:class:`SlimLinker` is the library's front door.  Given two location
datasets it

1. builds a **common windowing** so both sides index temporal windows
   identically;
2. builds **mobility histories** at a storage level fine enough for both
   the similarity level and the LSH signature level;
3. selects **candidate pairs** — by LSH bucketing when configured, else
   brute force;
4. computes **similarity scores** (Eq. 2 with the MFN alibi pass) and keeps
   positive-score edges;
5. runs **maximum-sum bipartite matching** (greedy by default, the paper's
   matcher);
6. fits the **stop-threshold** model over matched edge weights and keeps
   only links above it.

Every stage is timed and instrumented; :class:`LinkageResult` carries the
links plus everything the evaluation section reports (comparison counts,
candidate counts, threshold diagnostics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..data.records import LocationDataset
from ..lsh.index import LshConfig, LshIndex
from ..temporal import Windowing, common_windowing
from .corpus import HistoryCorpus
from .history import MobilityHistory, build_histories
from .matching import Edge, match
from .similarity import SimilarityConfig, SimilarityEngine, SimilarityStats
from .threshold import (
    ThresholdDecision,
    gmm_stop_threshold,
    otsu_threshold,
    two_means_threshold,
)

__all__ = ["SlimConfig", "LinkageResult", "SlimLinker"]

_THRESHOLD_METHODS = {
    "gmm": gmm_stop_threshold,
    "otsu": otsu_threshold,
    "two_means": two_means_threshold,
}


@dataclass(frozen=True)
class SlimConfig:
    """Full pipeline configuration.

    ``lsh=None`` disables the filtering step (brute-force candidate set),
    which is the right default for correctness-critical small runs; the
    scalability experiments pass an :class:`~repro.lsh.index.LshConfig`.

    ``threshold_method`` is ``"gmm"`` (paper), ``"otsu"``, ``"two_means"``
    or ``"none"`` (keep every matched edge — what prior work implicitly
    does, and the ablation baseline for the stop-threshold mechanism).
    """

    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    lsh: Optional[LshConfig] = None
    matching: str = "greedy"
    threshold_method: str = "gmm"
    storage_level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threshold_method not in (*_THRESHOLD_METHODS, "none"):
            raise ValueError(
                f"unknown threshold method {self.threshold_method!r}"
            )

    def resolved_storage_level(self) -> int:
        """The history storage level: explicitly set, or the finest level
        any stage needs."""
        if self.storage_level is not None:
            return self.storage_level
        level = self.similarity.spatial_level
        if self.lsh is not None:
            level = max(level, self.lsh.spatial_level)
        return level


@dataclass
class LinkageResult:
    """Everything a linkage run produces.

    Attributes
    ----------
    links:
        The final linkage ``{left entity: right entity}`` — matched pairs
        at or above the stop threshold.
    matched_edges:
        The full matching before thresholding (Fig. 2's histogram is drawn
        over these weights).
    edges:
        All positive-score candidate edges (the bipartite graph).
    threshold:
        The stop-threshold decision and its GMM diagnostics.
    candidate_pairs:
        Number of pairs the similarity engine was asked to score.
    stats:
        Similarity-engine counters (bin comparisons, alibi pairs).
    timings:
        Per-stage wall-clock seconds.
    """

    links: Dict[str, str]
    matched_edges: List[Edge]
    edges: List[Edge]
    threshold: ThresholdDecision
    candidate_pairs: int
    stats: SimilarityStats
    timings: Dict[str, float]
    windowing: Windowing
    total_windows: int

    @property
    def link_scores(self) -> Dict[Tuple[str, str], float]:
        """Scores of the final links."""
        accepted = {
            (edge.left, edge.right): edge.weight for edge in self.matched_edges
        }
        return {
            (left, right): accepted[(left, right)]
            for left, right in self.links.items()
        }

    @property
    def runtime_seconds(self) -> float:
        """Total wall-clock time across stages."""
        return sum(self.timings.values())


class SlimLinker:
    """Links entities across two mobility datasets (Alg. 1)."""

    def __init__(self, config: Optional[SlimConfig] = None) -> None:
        self.config = config or SlimConfig()

    # ------------------------------------------------------------------
    # pipeline stages (public so experiments can run them piecemeal)
    # ------------------------------------------------------------------
    def build_windowing(
        self, left: LocationDataset, right: LocationDataset
    ) -> Tuple[Windowing, int]:
        """Common windowing over both datasets and its total window count."""
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            self.config.similarity.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        total_windows = windowing.index_of(latest) + 1
        return windowing, total_windows

    def build_corpora(
        self,
        left: LocationDataset,
        right: LocationDataset,
        windowing: Windowing,
    ) -> Tuple[HistoryCorpus, HistoryCorpus, Dict[str, MobilityHistory], Dict[str, MobilityHistory]]:
        """Histories and corpus statistics for both sides."""
        storage = self.config.resolved_storage_level()
        left_histories = build_histories(left, windowing, storage)
        right_histories = build_histories(right, windowing, storage)
        level = self.config.similarity.spatial_level
        return (
            HistoryCorpus(left_histories, level),
            HistoryCorpus(right_histories, level),
            left_histories,
            right_histories,
        )

    def select_candidates(
        self,
        left_histories: Dict[str, MobilityHistory],
        right_histories: Dict[str, MobilityHistory],
        total_windows: int,
    ) -> Set[Tuple[str, str]]:
        """The ``LSHFilterPairs`` step of Alg. 1 (or the brute-force set)."""
        lsh = self.config.lsh
        if lsh is None:
            return LshIndex.all_pairs(left_histories, right_histories)
        index = LshIndex(lsh, lsh.signature_spec(total_windows))
        index.add_histories(left_histories, right_histories)
        return index.candidate_pairs()

    #: Candidate pairs scored per batch-kernel dispatch.  Bounds the peak
    #: size of the kernel's per-shape tensors while still amortising the
    #: vectorized work over thousands of (pair, window) interactions.
    SCORE_BLOCK_SIZE = 4096

    def score_candidates(
        self,
        engine: SimilarityEngine,
        candidates: Set[Tuple[str, str]],
    ) -> List[Edge]:
        """Score candidates; keep the positive-score edges (Alg. 1's
        ``if S > 0``).

        Candidates are sorted (determinism) and scored in blocks through
        :meth:`SimilarityEngine.score_batch`, which under the numpy
        backend groups every pair's common windows into shared kernel
        dispatches; the python backend degrades to the per-pair loop.
        """
        ordered = sorted(candidates)
        edges: List[Edge] = []
        block = self.SCORE_BLOCK_SIZE
        for start in range(0, len(ordered), block):
            chunk = ordered[start : start + block]
            for (left_entity, right_entity), score in zip(
                chunk, engine.score_batch(chunk)
            ):
                if score > 0.0:
                    edges.append(Edge(left_entity, right_entity, score))
        return edges

    def decide_threshold(self, matched: List[Edge]) -> ThresholdDecision:
        """Stop-threshold decision over the matched edge weights."""
        method = self.config.threshold_method
        if method == "none" or not matched:
            floor = min((edge.weight for edge in matched), default=0.0)
            return ThresholdDecision(
                threshold=floor,
                method="none",
                expected_precision=float("nan"),
                expected_recall=float("nan"),
                expected_f1=float("nan"),
            )
        weights = [edge.weight for edge in matched]
        return _THRESHOLD_METHODS[method](weights)

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------
    def link(self, left: LocationDataset, right: LocationDataset) -> LinkageResult:
        """Run the complete SLIM pipeline and return the linkage."""
        timings: Dict[str, float] = {}

        clock = time.perf_counter()
        windowing, total_windows = self.build_windowing(left, right)
        left_corpus, right_corpus, left_histories, right_histories = (
            self.build_corpora(left, right, windowing)
        )
        timings["build_histories"] = time.perf_counter() - clock

        clock = time.perf_counter()
        candidates = self.select_candidates(
            left_histories, right_histories, total_windows
        )
        timings["candidates"] = time.perf_counter() - clock

        clock = time.perf_counter()
        engine = SimilarityEngine(left_corpus, right_corpus, self.config.similarity)
        edges = self.score_candidates(engine, candidates)
        timings["similarity"] = time.perf_counter() - clock

        clock = time.perf_counter()
        matched = match(edges, self.config.matching)
        timings["matching"] = time.perf_counter() - clock

        clock = time.perf_counter()
        decision = self.decide_threshold(matched)
        links = {
            edge.left: edge.right
            for edge in matched
            if edge.weight >= decision.threshold
        }
        timings["threshold"] = time.perf_counter() - clock

        return LinkageResult(
            links=links,
            matched_edges=matched,
            edges=edges,
            threshold=decision,
            candidate_pairs=len(candidates),
            stats=engine.stats,
            timings=timings,
            windowing=windowing,
            total_windows=total_windows,
        )

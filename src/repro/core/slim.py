"""The SLIM pipeline (Alg. 1) — deprecated front door.

.. deprecated:: PR 3
   The pipeline now lives in :mod:`repro.pipeline`:
   :class:`~repro.pipeline.config.LinkageConfig` replaces
   :class:`SlimConfig`, :class:`~repro.pipeline.runner.LinkagePipeline`
   replaces :class:`SlimLinker`, and every front door returns a
   :class:`~repro.pipeline.report.LinkageReport` (of which
   :data:`LinkageResult` is an alias).  This module remains as a thin
   compatibility shim — same construction, same results — and will not
   grow new features.

:class:`SlimLinker` is a convenience wrapper: given two location datasets
it runs the canonical stage composition (prepare → candidates → scoring →
matching → threshold, see :mod:`repro.pipeline.stages`) and returns the
report.  The piecemeal stage methods (:meth:`SlimLinker.build_windowing`,
:meth:`SlimLinker.select_candidates`, ...) are kept so experiments can
still run stages individually.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..data.records import LocationDataset
from ..lsh.index import LshConfig, LshIndex
from ..pipeline.config import LinkageConfig
from ..pipeline.report import LinkageReport
from ..pipeline.runner import LinkagePipeline
from ..pipeline.stages import (
    SCORE_BLOCK_SIZE,
    ThresholdStage,
    threshold_methods,
)
from ..temporal import Windowing, common_windowing
from .corpus import HistoryCorpus
from .history import MobilityHistory, build_histories
from .matching import Edge
from .similarity import SimilarityConfig, SimilarityEngine
from .threshold import ThresholdDecision

__all__ = ["SlimConfig", "LinkageResult", "SlimLinker"]

#: Deprecated alias — every linker now returns a
#: :class:`~repro.pipeline.report.LinkageReport`.
LinkageResult = LinkageReport

#: Shim names that have already warned (exactly once per process: the
#: shims sit under long-running sweeps that construct thousands of
#: configs, and a warning per construction would drown real output).
_DEPRECATION_WARNED: Set[str] = set()


def _warn_deprecated(name: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit the PR 3 deprecation warning for ``name``, once per process.

    ``stacklevel`` must land the warning on the *caller's* line — pass
    one extra level for each intermediate frame (e.g. a dataclass'
    generated ``__init__`` between the caller and ``__post_init__``).
    """
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} from repro.pipeline "
        "(this shim stays functional but will not grow new features)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


@dataclass(frozen=True)
class SlimConfig:
    """Full pipeline configuration (deprecated shim).

    .. deprecated:: PR 3
       Use :class:`~repro.pipeline.config.LinkageConfig`, which adds stage
       selection and ``to_dict()``/``from_dict()`` serialization;
       :meth:`to_linkage_config` converts.

    ``lsh=None`` disables the filtering step (brute-force candidate set),
    which is the right default for correctness-critical small runs; the
    scalability experiments pass an :class:`~repro.lsh.index.LshConfig`.

    ``threshold_method`` is ``"gmm"`` (paper), ``"otsu"``, ``"two_means"``
    or ``"none"`` (keep every matched edge — what prior work implicitly
    does, and the ablation baseline for the stop-threshold mechanism).
    """

    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    lsh: Optional[LshConfig] = None
    matching: str = "greedy"
    threshold_method: str = "gmm"
    storage_level: Optional[int] = None

    def __post_init__(self) -> None:
        # caller -> generated __init__ -> __post_init__ -> _warn_deprecated
        _warn_deprecated("SlimConfig", "LinkageConfig", stacklevel=4)
        if self.threshold_method not in threshold_methods:
            raise ValueError(
                f"unknown threshold method {self.threshold_method!r}"
            )

    def to_linkage_config(self) -> LinkageConfig:
        """The equivalent :class:`~repro.pipeline.config.LinkageConfig`."""
        return LinkageConfig(
            similarity=self.similarity,
            lsh=self.lsh,
            matching=self.matching,
            threshold=self.threshold_method,
            storage_level=self.storage_level,
        )

    def resolved_storage_level(self) -> int:
        """The history storage level: explicitly set, or the finest level
        any stage needs."""
        return self.to_linkage_config().resolved_storage_level()


def _as_linkage_config(
    config: Optional[object],
) -> LinkageConfig:
    """Normalise ``None`` / ``SlimConfig`` / ``LinkageConfig`` to the
    canonical config type."""
    if config is None:
        return LinkageConfig()
    if isinstance(config, LinkageConfig):
        return config
    if isinstance(config, SlimConfig):
        return config.to_linkage_config()
    raise TypeError(
        f"expected LinkageConfig or SlimConfig, got {type(config).__name__}"
    )


class SlimLinker:
    """Links entities across two mobility datasets (Alg. 1).

    .. deprecated:: PR 3
       Thin shim over :class:`~repro.pipeline.runner.LinkagePipeline`;
       accepts either a :class:`SlimConfig` (legacy) or a
       :class:`~repro.pipeline.config.LinkageConfig`.
    """

    #: Candidate pairs scored per batch-kernel dispatch (re-exported from
    #: :mod:`repro.pipeline.stages` for back-compat).
    SCORE_BLOCK_SIZE = SCORE_BLOCK_SIZE

    def __init__(self, config: Optional[object] = None) -> None:
        _warn_deprecated("SlimLinker", "LinkagePipeline")
        #: The config as passed (``SlimConfig`` callers keep seeing their
        #: own type); ``pipeline_config`` is the normalised form.
        self.config = config if config is not None else SlimConfig()
        self.pipeline_config = _as_linkage_config(config)

    # ------------------------------------------------------------------
    # pipeline stages (public so experiments can run them piecemeal)
    # ------------------------------------------------------------------
    def build_windowing(
        self, left: LocationDataset, right: LocationDataset
    ) -> Tuple[Windowing, int]:
        """Common windowing over both datasets and its total window count."""
        windowing = common_windowing(
            (left.time_range(), right.time_range()),
            self.pipeline_config.similarity.window_width_seconds,
        )
        latest = max(left.time_range()[1], right.time_range()[1])
        total_windows = windowing.index_of(latest) + 1
        return windowing, total_windows

    def build_corpora(
        self,
        left: LocationDataset,
        right: LocationDataset,
        windowing: Windowing,
    ) -> Tuple[HistoryCorpus, HistoryCorpus, Dict[str, MobilityHistory], Dict[str, MobilityHistory]]:
        """Histories and corpus statistics for both sides."""
        storage = self.pipeline_config.resolved_storage_level()
        left_histories = build_histories(left, windowing, storage)
        right_histories = build_histories(right, windowing, storage)
        level = self.pipeline_config.similarity.spatial_level
        return (
            HistoryCorpus(left_histories, level),
            HistoryCorpus(right_histories, level),
            left_histories,
            right_histories,
        )

    def select_candidates(
        self,
        left_histories: Dict[str, MobilityHistory],
        right_histories: Dict[str, MobilityHistory],
        total_windows: int,
    ) -> Set[Tuple[str, str]]:
        """The ``LSHFilterPairs`` step of Alg. 1 (or the brute-force set)."""
        lsh = self.pipeline_config.lsh
        if lsh is None:
            return LshIndex.all_pairs(left_histories, right_histories)
        index = LshIndex(lsh, lsh.signature_spec(total_windows))
        index.add_histories(left_histories, right_histories)
        return index.candidate_pairs()

    def score_candidates(
        self,
        engine: SimilarityEngine,
        candidates: Set[Tuple[str, str]],
    ) -> List[Edge]:
        """Score candidates; keep the positive-score edges (Alg. 1's
        ``if S > 0``).

        Candidates are sorted (determinism) and scored in blocks through
        :meth:`SimilarityEngine.score_batch`, which under the numpy
        backend groups every pair's common windows into shared kernel
        dispatches; the python backend degrades to the per-pair loop.
        """
        ordered = sorted(candidates)
        edges: List[Edge] = []
        block = self.SCORE_BLOCK_SIZE
        for start in range(0, len(ordered), block):
            chunk = ordered[start : start + block]
            for (left_entity, right_entity), score in zip(
                chunk, engine.score_batch(chunk)
            ):
                if score > 0.0:
                    edges.append(Edge(left_entity, right_entity, score))
        return edges

    def decide_threshold(self, matched: List[Edge]) -> ThresholdDecision:
        """Stop-threshold decision over the matched edge weights."""
        stage = ThresholdStage(self.pipeline_config)
        context_like = _ThresholdScratch(matched)
        stage.run(context_like)
        return context_like.threshold

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------
    def link(self, left: LocationDataset, right: LocationDataset) -> LinkageReport:
        """Run the complete SLIM pipeline and return the linkage report."""
        return LinkagePipeline(self.pipeline_config).run(left, right)


class _ThresholdScratch:
    """The minimal context surface :class:`ThresholdStage` touches — lets
    :meth:`SlimLinker.decide_threshold` stay a standalone helper."""

    def __init__(self, matched: List[Edge]) -> None:
        self.matched_edges = matched
        self.threshold: Optional[ThresholdDecision] = None
        self.links: Dict[str, str] = {}

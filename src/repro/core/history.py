"""Mobility histories (Sec. 2.3, Fig. 1).

A mobility history aggregates one entity's records into *time-location
bins*: the leaves of a temporal tree hold, per leaf window, the grid cells
visited (with counts); internal nodes aggregate those counts so range
queries — notably the dominating-cell queries of the LSH layer — are
logarithmic.

The temporal hierarchy is deliberate: the paper partitions hierarchically in
*time*, not space, because alibi detection needs fast retrieval of all cells
an entity touched in a given window (Sec. 2.3).

Histories are stored at a fine ``storage_level`` and re-binned on demand to
any coarser level via integer parent mapping, so one history build serves
both the similarity computation (e.g. level 12) and LSH signatures at an
independently chosen level (Sec. 5.3 varies them separately).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..data.records import LocationDataset
from ..geo import LatLng, cell_ids_from_degrees
from ..geo.cell import CellId, parent_id
from ..temporal import TemporalCountTree, Windowing

__all__ = ["MobilityHistory", "build_histories"]


def _accumulate(
    leaves: Dict[int, Counter],
    indices: np.ndarray,
    cells: np.ndarray,
    lats: np.ndarray,
    lngs: np.ndarray,
    storage_level: int,
    radii: Optional[np.ndarray],
) -> None:
    """Distribute records over (window, cell) leaf counters.

    Point records add weight 1 to their cell; region records (``radii``)
    spread weight ``1/n`` over the ``n`` cells of their cap cover — the
    Sec. 2.1 region extension.
    """
    for row, (index, cell) in enumerate(zip(indices.tolist(), cells.tolist())):
        counter = leaves.get(index)
        if counter is None:
            counter = Counter()
            leaves[index] = counter
        if radii is None:
            counter[cell] += 1
            continue
        radius = float(radii[row])
        if radius <= CellId(cell).circumradius_meters() * 0.5:
            counter[cell] += 1
            continue
        from ..geo.coverage import cover_cap  # deferred: optional path

        cover = cover_cap(
            LatLng.from_degrees(float(lats[row]), float(lngs[row])),
            radius,
            storage_level,
        )
        weight = 1.0 / len(cover)
        for covered in cover:
            counter[covered.id] += weight


class MobilityHistory:
    """One entity's hierarchical spatio-temporal summary.

    Bins are exposed as ``{window index: (cell ids...)}`` dictionaries per
    spatial level; cell ids are bare integers (see :mod:`repro.geo.cell`)
    for speed.
    """

    __slots__ = (
        "entity_id",
        "windowing",
        "storage_level",
        "num_records",
        "version",
        "_leaves",
        "_tree",
        "_bins_cache",
        "_level_trees",
    )

    def __init__(
        self,
        entity_id: str,
        windowing: Windowing,
        storage_level: int,
        leaves: Dict[int, Counter],
        num_records: int,
    ) -> None:
        self.entity_id = entity_id
        self.windowing = windowing
        self.storage_level = storage_level
        self.num_records = num_records
        #: Monotone change counter: bumped by every :meth:`extend` call.
        #: Downstream caches (:class:`~repro.core.corpus.HistoryCorpus`
        #: snapshots, :class:`~repro.core.score_cache.ScoreCache` entries,
        #: LSH signature placements) key their validity on it.
        self.version = 0
        self._leaves = leaves
        self._tree: Optional[TemporalCountTree] = None
        self._level_trees: Dict[int, TemporalCountTree] = {}
        self._bins_cache: Dict[int, Dict[int, Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        entity_id: str,
        timestamps: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        windowing: Windowing,
        storage_level: int,
        radii: Optional[np.ndarray] = None,
    ) -> "MobilityHistory":
        """Build a history from column arrays (one record per row).

        ``radii`` (optional, metres per record) enables the paper's
        region-record extension (Sec. 2.1): a record whose location is a
        region rather than a point is "copied into multiple cells ... using
        weights" — weight ``1/n`` into each of the ``n`` cells of the
        region's cap cover at ``storage_level``.  Records with a radius
        smaller than the cell remain single-cell with weight 1.
        """
        cells = cell_ids_from_degrees(lats, lngs, storage_level)
        indices = np.floor(
            (np.asarray(timestamps, dtype=np.float64) - windowing.origin)
            / windowing.width_seconds
        ).astype(np.int64)
        if indices.size and indices.min() < 0:
            raise ValueError(
                f"records before windowing origin for entity {entity_id!r}; "
                "use common_windowing over all datasets in the run"
            )
        if radii is not None:
            radii = np.asarray(radii, dtype=np.float64)
            if radii.shape != indices.shape:
                raise ValueError("radii must have one entry per record")

        leaves: Dict[int, Counter] = {}
        _accumulate(leaves, indices, cells, lats, lngs, storage_level, radii)
        return cls(entity_id, windowing, storage_level, leaves, int(indices.size))

    def extend(
        self,
        timestamps: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        radii: Optional[np.ndarray] = None,
    ) -> None:
        """Append new records in place (streaming ingestion).

        Invalidates all cached bins and trees; the next query rebuilds them.
        Used by :class:`~repro.core.streaming.StreamingLinker` for the
        dynamic-datasets case the paper's introduction motivates.
        """
        cells = cell_ids_from_degrees(lats, lngs, self.storage_level)
        indices = np.floor(
            (np.asarray(timestamps, dtype=np.float64) - self.windowing.origin)
            / self.windowing.width_seconds
        ).astype(np.int64)
        if indices.size and indices.min() < 0:
            raise ValueError(
                f"records before windowing origin for entity {self.entity_id!r}"
            )
        if radii is not None:
            radii = np.asarray(radii, dtype=np.float64)
            if radii.shape != indices.shape:
                raise ValueError("radii must have one entry per record")
        _accumulate(
            self._leaves, indices, cells, lats, lngs, self.storage_level, radii
        )
        self.num_records += int(indices.size)
        self.version += 1
        self._tree = None
        self._level_trees.clear()
        self._bins_cache.clear()

    # ------------------------------------------------------------------
    # bins
    # ------------------------------------------------------------------
    def windows(self) -> List[int]:
        """Populated leaf-window indices, ascending."""
        return sorted(self._leaves)

    def latest_window(self) -> int:
        """The most recent populated leaf-window index (-1 when the
        history holds no records) — the activity recency the retention
        policies of :mod:`repro.core.retention` rank entities by."""
        return max(self._leaves, default=-1)

    def bins(self, level: int) -> Dict[int, Tuple[int, ...]]:
        """``{window: (distinct cells at level, sorted)}`` (cached).

        This is ``H_u``, the set of time-location bins of Sec. 3.1.2,
        re-binned at the requested spatial level.
        """
        cached = self._bins_cache.get(level)
        if cached is not None:
            return cached
        if level > self.storage_level:
            raise ValueError(
                f"level {level} is finer than storage level {self.storage_level}"
            )
        result: Dict[int, Tuple[int, ...]] = {}
        if level == self.storage_level:
            for window, counter in self._leaves.items():
                result[window] = tuple(sorted(counter))
        else:
            for window, counter in self._leaves.items():
                result[window] = tuple(
                    sorted({parent_id(cell, level) for cell in counter})
                )
        self._bins_cache[level] = result
        return result

    def num_bins(self, level: int) -> int:
        """``|H_u|``: the number of time-location bins at ``level``."""
        return sum(len(cells) for cells in self.bins(level).values())

    def records_in_window(self, window: int) -> int:
        """Number of raw records falling in one leaf window."""
        counter = self._leaves.get(window)
        return sum(counter.values()) if counter else 0

    def counts_in_window(self, window: int, level: int) -> Counter:
        """Cell-id counts within one leaf window at ``level``."""
        counter = self._leaves.get(window)
        if not counter:
            return Counter()
        if level == self.storage_level:
            return Counter(counter)
        rebinned: Counter = Counter()
        for cell, count in counter.items():
            rebinned[parent_id(cell, level)] += count
        return rebinned

    # ------------------------------------------------------------------
    # tree queries (LSH support)
    # ------------------------------------------------------------------
    def tree(self, level: Optional[int] = None) -> TemporalCountTree:
        """The hierarchical count tree at ``level`` (default storage level).

        Trees are built lazily and cached per level; the LSH layer queries
        them for dominating cells over multi-window steps.
        """
        if level is None or level == self.storage_level:
            if self._tree is None:
                self._tree = TemporalCountTree(self._leaves)
            return self._tree
        cached = self._level_trees.get(level)
        if cached is None:
            rebinned = {
                window: self.counts_in_window(window, level)
                for window in self._leaves
            }
            cached = TemporalCountTree(rebinned)
            self._level_trees[level] = cached
        return cached

    def dominating_cell(
        self, start_window: int, end_window: int, level: Optional[int] = None
    ) -> Optional[int]:
        """The dominating grid cell over leaf windows ``[start, end)``.

        Returns the cell id holding the most records (ties to the smallest
        id), or ``None`` when the entity has no records there — the LSH
        signature placeholder case (Sec. 4).
        """
        result = self.tree(level).dominating(start_window, end_window)
        return None if result is None else int(result)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"MobilityHistory({self.entity_id!r}, records={self.num_records}, "
            f"windows={len(self._leaves)}, storage_level={self.storage_level})"
        )


def build_histories(
    dataset: LocationDataset,
    windowing: Windowing,
    storage_level: int,
    entities: Optional[Iterable[str]] = None,
) -> Dict[str, MobilityHistory]:
    """Build histories for every entity of a dataset.

    This is the ``CreateHistories`` step of Alg. 1.  ``storage_level``
    should be at least as fine as both the similarity spatial level and any
    LSH signature level the run will use.
    """
    histories: Dict[str, MobilityHistory] = {}
    for entity_id in entities if entities is not None else dataset.entities:
        timestamps, lats, lngs = dataset.columns(entity_id)
        histories[entity_id] = MobilityHistory.from_columns(
            entity_id, timestamps, lats, lngs, windowing, storage_level
        )
    return histories

"""Pairing functions over same-window time-location bins (Sec. 3.1.2).

Given the cells two entities visited in one temporal window, the pairing
function decides which cross-entity bin pairs contribute to the similarity
aggregation:

* :func:`mnn_pairs` — the paper's ``N``: greedy *mutually nearest
  neighbour* pairing.  Pick the globally closest pair, remove both bins,
  repeat until the smaller side is exhausted.  Avoids the over-counting of
  a Cartesian product (each bin participates in at most one pair).
* :func:`mfn_pairs` — the paper's ``N'``: the same construction by
  *furthest* distance, used as an extra alibi-detection pass (Alg. 1's
  inner loop) because MNN can hide an alibi behind a nearer bin.
* :func:`all_pairs` — the Cartesian product, kept as the ablation baseline
  ("All_Pairs" in Fig. 10).

The index-based cores (:func:`greedy_index_pairs`,
:func:`cartesian_index_pairs`) are what the similarity engine's inner loop
uses; the cell-level wrappers are the readable public API.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

__all__ = [
    "mnn_pairs",
    "mfn_pairs",
    "all_pairs",
    "distance_matrix",
    "greedy_index_pairs",
    "cartesian_index_pairs",
]

Pair = Tuple[int, int, float]
IndexPair = Tuple[int, int, float]
DistanceFn = Callable[[int, int], float]


def distance_matrix(
    cells_u: Sequence[int], cells_v: Sequence[int], distance_fn: DistanceFn
) -> List[List[float]]:
    """Pairwise distances between two small cell sets.

    Bin sets within one window are tiny (distinct cells visited in e.g. 15
    minutes), so a list-of-lists beats numpy here.
    """
    return [[distance_fn(cu, cv) for cv in cells_v] for cu in cells_u]


def greedy_index_pairs(matrix: Sequence[Sequence[float]], reverse: bool) -> List[IndexPair]:
    """Greedy mutual pairing over a distance matrix, by index.

    ``reverse=False`` selects nearest-first (MNN), ``reverse=True``
    furthest-first (MFN).  Returns ``(iu, iv, distance)`` triples; exactly
    ``min(rows, cols)`` of them, each row/column used at most once.
    """
    len_u = len(matrix)
    if not len_u:
        return []
    len_v = len(matrix[0])
    if not len_v:
        return []
    if len_u == 1 and len_v == 1:
        return [(0, 0, matrix[0][0])]

    candidates = [
        (matrix[iu][iv], iu, iv) for iu in range(len_u) for iv in range(len_v)
    ]
    candidates.sort(key=lambda item: item[0], reverse=reverse)
    target = min(len_u, len_v)
    used_u = [False] * len_u
    used_v = [False] * len_v
    pairs: List[IndexPair] = []
    for distance, iu, iv in candidates:
        if used_u[iu] or used_v[iv]:
            continue
        used_u[iu] = True
        used_v[iv] = True
        pairs.append((iu, iv, distance))
        if len(pairs) == target:
            break
    return pairs


def cartesian_index_pairs(matrix: Sequence[Sequence[float]]) -> List[IndexPair]:
    """All index pairs with their distances (the All_Pairs ablation)."""
    return [
        (iu, iv, distance)
        for iu, row in enumerate(matrix)
        for iv, distance in enumerate(row)
    ]


def _to_cells(
    pairs: List[IndexPair], cells_u: Sequence[int], cells_v: Sequence[int]
) -> List[Pair]:
    return [(cells_u[iu], cells_v[iv], distance) for iu, iv, distance in pairs]


def mnn_pairs(
    cells_u: Sequence[int],
    cells_v: Sequence[int],
    distance_fn: DistanceFn,
    matrix: Sequence[Sequence[float]] | None = None,
) -> List[Pair]:
    """Mutually-nearest-neighbour pairs (the paper's ``N_w``).

    Exactly ``min(|cells_u|, |cells_v|)`` pairs are returned and no bin
    appears twice.  ``matrix`` may be supplied to share distance work with
    :func:`mfn_pairs` for the same window.
    """
    if matrix is None:
        matrix = distance_matrix(cells_u, cells_v, distance_fn)
    return _to_cells(greedy_index_pairs(matrix, reverse=False), cells_u, cells_v)


def mfn_pairs(
    cells_u: Sequence[int],
    cells_v: Sequence[int],
    distance_fn: DistanceFn,
    matrix: Sequence[Sequence[float]] | None = None,
) -> List[Pair]:
    """Mutually-furthest-neighbour pairs (the paper's ``N'_w``)."""
    if matrix is None:
        matrix = distance_matrix(cells_u, cells_v, distance_fn)
    return _to_cells(greedy_index_pairs(matrix, reverse=True), cells_u, cells_v)


def all_pairs(
    cells_u: Sequence[int],
    cells_v: Sequence[int],
    distance_fn: DistanceFn,
    matrix: Sequence[Sequence[float]] | None = None,
) -> List[Pair]:
    """Cartesian-product pairing (the Fig. 10 "All_Pairs" ablation)."""
    if matrix is None:
        matrix = distance_matrix(cells_u, cells_v, distance_fn)
    return _to_cells(cartesian_index_pairs(matrix), cells_u, cells_v)

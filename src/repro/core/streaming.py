"""Incremental (streaming) linkage.

The paper motivates scalable linkage with "the scale and *dynamic nature*
of location datasets" (Sec. 1): real feeds grow continuously.
:class:`StreamingLinker` supports that case:

* records are ingested incrementally — per-entity mobility histories are
  *extended in place* (no rebuild of the temporal binning);
* ``relink()`` re-runs the candidate/score/match/threshold stages on the
  current state.  Corpus statistics (IDF, average history sizes) and the
  stop threshold are recomputed each time — they are global properties of
  the data seen so far and cannot be maintained incrementally without
  changing the score — but the LSH filter keeps each relink proportional
  to the candidate set, not the pair space.

The windowing origin must be fixed up front (before the first record), so
window indices remain stable as data arrives.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..data.records import Record
from ..temporal import Windowing
from .corpus import HistoryCorpus
from .history import MobilityHistory
from .matching import match
from .similarity import SimilarityEngine
from .slim import LinkageResult, SlimConfig, SlimLinker

__all__ = ["StreamingLinker"]


class StreamingLinker:
    """Maintains two growing datasets and relinks on demand.

    >>> linker = StreamingLinker(origin=0.0)
    >>> linker.observe("left", [Record("u", 37.77, -122.42, 100.0)])
    >>> linker.observe("right", [Record("v", 37.77, -122.42, 130.0)])
    >>> result = linker.relink()  # doctest: +SKIP
    """

    def __init__(self, origin: float, config: Optional[SlimConfig] = None) -> None:
        self.config = config or SlimConfig()
        self.windowing = Windowing(
            origin, self.config.similarity.window_width_seconds
        )
        self._storage_level = self.config.resolved_storage_level()
        self._sides: Dict[str, Dict[str, MobilityHistory]] = {
            "left": {},
            "right": {},
        }
        self._latest = origin
        self._slim = SlimLinker(self.config)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, side: str, records: Iterable[Record]) -> int:
        """Ingest records on ``side`` (``"left"`` or ``"right"``).

        Returns the number of records ingested.  Records are grouped by
        entity and appended to the entity's history.
        """
        if side not in self._sides:
            raise ValueError(f"side must be left or right, got {side!r}")
        grouped: Dict[str, list] = {}
        for record in records:
            grouped.setdefault(record.entity_id, []).append(record)
        histories = self._sides[side]
        total = 0
        for entity_id, rows in grouped.items():
            timestamps = np.array([r.timestamp for r in rows])
            lats = np.array([r.lat for r in rows])
            lngs = np.array([r.lng for r in rows])
            history = histories.get(entity_id)
            if history is None:
                history = MobilityHistory.from_columns(
                    entity_id, timestamps, lats, lngs,
                    self.windowing, self._storage_level,
                )
                histories[entity_id] = history
            else:
                history.extend(timestamps, lats, lngs)
            total += len(rows)
            self._latest = max(self._latest, float(timestamps.max()))
        return total

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def num_left_entities(self) -> int:
        """Entities observed on the left side so far."""
        return len(self._sides["left"])

    @property
    def num_right_entities(self) -> int:
        """Entities observed on the right side so far."""
        return len(self._sides["right"])

    def total_windows(self) -> int:
        """Leaf windows spanned by the data seen so far."""
        return max(1, self.windowing.index_of(self._latest) + 1)

    # ------------------------------------------------------------------
    # relink
    # ------------------------------------------------------------------
    def relink(self) -> LinkageResult:
        """Run candidate selection, scoring, matching and thresholding on
        the current state."""
        left_histories = self._sides["left"]
        right_histories = self._sides["right"]
        if not left_histories or not right_histories:
            raise ValueError("both sides need at least one entity before relinking")

        level = self.config.similarity.spatial_level
        left_corpus = HistoryCorpus(left_histories, level)
        right_corpus = HistoryCorpus(right_histories, level)

        candidates = self._slim.select_candidates(
            left_histories, right_histories, self.total_windows()
        )
        engine = SimilarityEngine(left_corpus, right_corpus, self.config.similarity)
        edges = self._slim.score_candidates(engine, candidates)
        matched = match(edges, self.config.matching)
        decision = self._slim.decide_threshold(matched)
        links = {
            edge.left: edge.right
            for edge in matched
            if edge.weight >= decision.threshold
        }
        return LinkageResult(
            links=links,
            matched_edges=matched,
            edges=edges,
            threshold=decision,
            candidate_pairs=len(candidates),
            stats=engine.stats,
            timings={},
            windowing=self.windowing,
            total_windows=self.total_windows(),
        )

"""Incremental (streaming) linkage.

The paper motivates scalable linkage with "the scale and *dynamic nature*
of location datasets" (Sec. 1): real feeds grow continuously.
:class:`StreamingLinker` supports that case end to end:

* records are ingested incrementally — per-entity mobility histories are
  *extended in place* (no rebuild of the temporal binning);
* ``relink()`` is a **delta relink**: it re-runs candidate selection,
  scoring, matching and thresholding on the current state, but reuses
  everything a small delta cannot have changed.

The reuse machinery, stage by stage:

* **Corpus statistics** — both sides keep one live
  :class:`~repro.core.corpus.HistoryCorpus` whose
  :meth:`~repro.core.corpus.HistoryCorpus.refresh` folds history growth
  into the document frequencies and extends the batch kernel's array
  views in place (O(changed bins), not O(corpus)).
* **Candidates** — under LSH, the bucket index is persistent: only
  new/changed histories are re-signatured (``remove`` + ``add``), and the
  index is rebuilt from scratch only when the growing window span changes
  the signature layout itself.
* **Scores** — a :class:`~repro.core.score_cache.ScoreCache` memoises
  every pair's raw Eq. 2 total keyed on the pair's history versions.  A
  relink re-scores only pairs that involve a changed history *or* whose
  cached total was invalidated by IDF drift: a third entity's new bins
  can move the document frequency — hence the idf weight — inside an
  otherwise untouched pair.  With the default ``idf_tolerance=0.0`` any
  drift on a shared bin invalidates its holders, which makes an
  incremental relink produce **exactly** the links and scores of a cold
  full relink; a positive tolerance trades small controlled staleness for
  more reuse.
* **Matching / threshold** — recomputed in full each relink (they are
  global decisions over the edge set, and cheap next to scoring).
* **Retention** — a :class:`~repro.core.retention.RetentionPolicy`
  (``retention="sliding_window"`` / ``"max_entities"`` on the config)
  retires entities that left the live working set ahead of each relink,
  cascading the removal through every layer above — so a long-running
  linker is *bounded-memory* instead of growing with everything it ever
  saw.  A relink after retirement equals a cold run over the survivors.

:attr:`StreamingLinker.last_relink` reports what the delta machinery did
(pairs re-scored vs served from cache, dirty entities, IDF invalidations,
whether the LSH index was rebuilt).

The windowing origin must be fixed up front (before the first record), so
window indices remain stable as data arrives.

>>> from repro.data import Record
>>> linker = StreamingLinker(origin=0.0)
>>> linker.observe("left", [Record("u", 37.77, -122.42, 100.0),
...                         Record("w", 40.71, -74.00, 110.0)])
2
>>> linker.observe("right", [Record("v", 37.77, -122.42, 130.0),
...                          Record("x", 40.71, -74.00, 140.0)])
2
>>> sorted(linker.relink().links.items())
[('u', 'v'), ('w', 'x')]
>>> linker.relink().links["u"]       # zero-delta relink: pure cache hits
'v'
>>> linker.last_relink.pairs_rescored
0
"""

from __future__ import annotations

# repro-lint: timing-module -- relink reports include wall-clock stage timings
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from ..data.records import Record
from ..lsh.index import LshIndex
from ..lsh.signature import build_signature
from ..pipeline.context import LinkageContext
from ..pipeline.report import LinkageReport
from ..pipeline.runner import LinkagePipeline
from ..pipeline.stages import (
    STAGE_CANDIDATES,
    STAGE_PREPARE,
    MatchingStage,
    ScoringStage,
    ThresholdStage,
    candidate_stages,
)
from ..temporal import Windowing
from .corpus import CorpusDelta, HistoryCorpus
from .history import MobilityHistory
from .retention import RetentionPolicy, build_retention
from .score_cache import ScoreCache
from .similarity import score_cache_space
from .slim import _as_linkage_config

__all__ = ["StreamingLinker", "RelinkStats"]


@dataclass(frozen=True)
class RelinkStats:
    """What one :meth:`StreamingLinker.relink` reused versus recomputed.

    Attributes
    ----------
    candidate_pairs:
        Size of the candidate set the similarity stage was asked about.
    pairs_rescored:
        Candidates whose raw totals had to be recomputed (cache misses).
    cache_hits:
        Candidates served from the :class:`~repro.core.score_cache.ScoreCache`.
        A zero-delta relink shows ``pairs_rescored == 0`` here.
    dirty_left, dirty_right:
        Histories that grew (or appeared) since the previous relink.
    idf_invalidated:
        Cached pair totals dropped because a shared bin's IDF drifted
        beyond the linker's ``idf_tolerance``.
    lsh_rebuilt:
        True when the LSH index had to be rebuilt from scratch (first
        relink, or the signature layout changed); False for delta
        ingestion or brute-force candidate generation.
    evicted_left, evicted_right:
        Entities the retention policy retired ahead of this relink (see
        :mod:`repro.core.retention`); their histories, corpus statistics,
        LSH placements and cached pair scores were all dropped.
    """

    candidate_pairs: int
    pairs_rescored: int
    cache_hits: int
    dirty_left: int
    dirty_right: int
    idf_invalidated: int
    lsh_rebuilt: bool
    evicted_left: int = 0
    evicted_right: int = 0


class StreamingLinker:
    """Maintains two growing datasets and relinks on demand.

    ``idf_tolerance`` bounds the IDF staleness an incremental relink may
    keep: a cached pair score is reused only while every shared bin's idf
    moved by at most this much since the pair was scored (drift is
    accumulated across relinks — many small deltas count as their sum,
    never less).  The default
    ``0.0`` keeps incremental relinks *exactly* equal to cold ones (the
    parity pinned by ``tests/core/test_streaming_incremental.py``);
    larger values reuse more of the cache on churny corpora.

    ``score_cache_cap`` optionally bounds the score cache (entries, LRU
    eviction); the default keeps every candidate pair, which is the
    working set of a relink — note that without a cap, pairs that leave
    the candidate set (LSH churn) keep their entries, so a very
    long-lived linker on a churny stream should set a cap (a cap at
    least the candidate-set size preserves the zero-delta no-op).

    ``retention`` bounds *everything else*: a
    :class:`~repro.core.retention.RetentionPolicy` (or the one named by
    the config's ``retention`` / ``retention_window`` fields) retires
    entities that left the live working set ahead of every relink.
    Retirement cascades through every layer — histories, corpus
    statistics and array views (with eager compaction), LSH band
    placements, cached pair scores in *every* cache space (an id observed
    again later restarts at history version 0, so stale rows must not
    linger) — and the relink after a retirement is bit-identical to a
    cold run over the surviving entities
    (``tests/core/test_retention.py``).

    ``score_cache`` attaches an external score cache — typically one
    persisted by :meth:`~repro.core.score_cache.ScoreCache.save` and
    reloaded with :meth:`~repro.core.score_cache.ScoreCache.load` —
    instead of creating a private one (``score_cache_cap`` is ignored
    then; cap the cache you pass).
    """

    def __init__(
        self,
        origin: float,
        config: Optional[object] = None,
        idf_tolerance: float = 0.0,
        score_cache_cap: Optional[int] = None,
        retention: Optional[RetentionPolicy] = None,
        score_cache: Optional[ScoreCache] = None,
        storage: str = "memory",
        store_dir: Optional[object] = None,
        store_chunk_rows: Optional[int] = None,
        store_cache_chunks: int = 8,
    ) -> None:
        if idf_tolerance < 0.0:
            raise ValueError("idf tolerance must be non-negative")
        if storage not in ("memory", "disk"):
            raise ValueError(
                f"storage must be 'memory' or 'disk', got {storage!r}"
            )
        if storage == "disk" and store_dir is None:
            raise ValueError("storage='disk' needs a store_dir")
        #: ``"memory"`` keeps corpus flat views on the heap; ``"disk"``
        #: spills them into a chunked column store under ``store_dir``
        #: (one subdirectory per side) the first time each side's corpus
        #: is built — links, scores and relink counters are bit-identical
        #: either way (``tests/store/``), only the residency changes.
        self.storage = storage
        self._store_dir = store_dir
        self._store_chunk_rows = store_chunk_rows
        self._store_cache_chunks = store_cache_chunks
        #: The config as passed (legacy ``SlimConfig`` callers keep seeing
        #: their own type, mirroring :class:`~repro.core.slim.SlimLinker`);
        #: ``pipeline_config`` is the normalised
        #: :class:`~repro.pipeline.config.LinkageConfig` the stages run on.
        self.config = config if config is not None else _as_linkage_config(None)
        self.pipeline_config = _as_linkage_config(config)
        self.idf_tolerance = idf_tolerance
        self.windowing = Windowing(
            origin, self.pipeline_config.similarity.window_width_seconds
        )
        self._storage_level = self.pipeline_config.resolved_storage_level()
        self._sides: Dict[str, Dict[str, MobilityHistory]] = {
            "left": {},
            "right": {},
        }
        self._latest = origin
        self._score_cache = (
            score_cache
            if score_cache is not None
            else ScoreCache(cap=score_cache_cap)
        )
        self._retention = (
            retention
            if retention is not None
            else build_retention(
                self.pipeline_config.retention,
                self.pipeline_config.retention_window,
            )
        )
        self._corpora: Dict[str, Optional[HistoryCorpus]] = {
            "left": None,
            "right": None,
        }
        self._lsh_index: Optional[LshIndex] = None
        self._lsh_members: Dict[str, Dict[str, int]] = {"left": {}, "right": {}}
        self._last_relink: Optional[RelinkStats] = None
        # Accumulated IDF drift per bin (and per side globally) since the
        # affected cache entries were last invalidated.  Tolerance is
        # checked against the *accumulated* value, so repeated
        # under-tolerance refreshes cannot compound into unbounded
        # staleness; invalidating a bin's holders resets its accumulator
        # (those pairs get re-scored with current IDFs).
        self._pending_drift: Dict[str, Dict[Tuple[int, int], float]] = {
            "left": {},
            "right": {},
        }
        self._pending_global: Dict[str, float] = {"left": 0.0, "right": 0.0}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, side: str, records: Iterable[Record]) -> int:
        """Ingest records on ``side`` (``"left"`` or ``"right"``).

        Returns the number of records ingested.  Records are grouped by
        entity and appended to the entity's history; within a batch (and
        across batches) records may arrive in any timestamp order — bins
        are pure functions of each record's own window, so out-of-order
        arrivals land exactly where in-order ones would.
        """
        if side not in self._sides:
            raise ValueError(f"side must be left or right, got {side!r}")
        grouped: Dict[str, list] = {}
        for record in records:
            grouped.setdefault(record.entity_id, []).append(record)
        histories = self._sides[side]
        total = 0
        for entity_id, rows in grouped.items():
            timestamps = np.array([r.timestamp for r in rows])
            lats = np.array([r.lat for r in rows])
            lngs = np.array([r.lng for r in rows])
            history = histories.get(entity_id)
            if history is None:
                history = MobilityHistory.from_columns(
                    entity_id, timestamps, lats, lngs,
                    self.windowing, self._storage_level,
                )
                histories[entity_id] = history
            else:
                history.extend(timestamps, lats, lngs)
            total += len(rows)
            self._latest = max(self._latest, float(timestamps.max()))
        return total

    def retire(self, side: str, entity_ids: Iterable[str]) -> int:
        """Explicitly retire entities on ``side`` (event-driven deletes).

        The mirror of :meth:`observe` for the serving layer's retire
        events: the named entities' histories are dropped immediately and
        their cached pair scores are swept from *every* cache space (an
        id observed again later restarts at history version 0, exactly
        like a policy-driven retirement).  Corpus statistics and LSH band
        placements are retracted by the next :meth:`relink`, which is
        bit-identical to a cold run over the survivors.

        Unknown ids raise :class:`KeyError` naming them — a retire event
        for an entity that was never observed (or already retired) is an
        upstream bug worth surfacing, not silently ignoring.  Returns the
        number of entities retired.
        """
        if side not in self._sides:
            raise ValueError(f"side must be left or right, got {side!r}")
        histories = self._sides[side]
        doomed = {str(entity_id) for entity_id in entity_ids}
        unknown = sorted(doomed - set(histories))
        if unknown:
            raise KeyError(
                f"cannot retire unknown {side} entities: {unknown}"
            )
        for entity_id in doomed:
            del histories[entity_id]
        if doomed:
            self._score_cache.invalidate_pairs(
                doomed if side == "left" else set(),
                doomed if side == "right" else set(),
                space=None,
            )
        return len(doomed)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def num_left_entities(self) -> int:
        """Entities observed on the left side so far."""
        return len(self._sides["left"])

    @property
    def num_right_entities(self) -> int:
        """Entities observed on the right side so far."""
        return len(self._sides["right"])

    @property
    def last_relink(self) -> Optional[RelinkStats]:
        """Reuse diagnostics of the most recent :meth:`relink` call."""
        return self._last_relink

    @property
    def watermark(self) -> float:
        """Event-time high-water mark: the largest record timestamp
        observed so far (the windowing origin before any record).  A
        restored linker resumes exactly past this point."""
        return self._latest

    @property
    def score_cache(self) -> ScoreCache:
        """The cross-relink score cache (hit/miss counters included)."""
        return self._score_cache

    def total_windows(self) -> int:
        """Leaf windows spanned by the data seen so far."""
        return max(1, self.windowing.index_of(self._latest) + 1)

    def memory_stats(self) -> Dict[str, int]:
        """Footprint counters across the linker's layers (one flat dict,
        keys prefixed ``left_`` / ``right_``) — what the retention
        benchmark samples per relink and
        :func:`~repro.eval.reporting.retention_table` renders.
        """
        stats: Dict[str, int] = {
            "score_cache_rows": len(self._score_cache),
            "lsh_entities": sum(
                len(members) for members in self._lsh_members.values()
            ),
        }
        for side in ("left", "right"):
            corpus = self._corpora[side]
            corpus_stats = (
                corpus.memory_stats()
                if corpus is not None
                else {"flat_entries": 0, "flat_live": 0, "df_slots": 0,
                      "total_bins": 0, "flat_resident_bytes": 0}
            )
            stats[f"{side}_entities"] = len(self._sides[side])
            for key in ("total_bins", "df_slots", "flat_entries", "flat_live",
                        "flat_resident_bytes"):
                stats[f"{side}_{key}"] = corpus_stats[key]
        return stats

    # ------------------------------------------------------------------
    # durable snapshots
    # ------------------------------------------------------------------
    def save(self, directory: object) -> object:
        """Write one atomic whole-linker snapshot under ``directory``.

        Everything a restart needs rides along: both sides' histories,
        the corpus statistics and flat views, LSH placements, the score
        cache (its own SHA-256-fingerprinted blob format), the retention
        policy and the event-time watermark.  The write follows the
        tmp-dir + ``os.replace`` protocol of
        :mod:`repro.store.snapshot` — a crash mid-save leaves the
        previous snapshot intact.  Returns the promoted snapshot
        directory.
        """
        from pathlib import Path

        from ..store.snapshot import write_snapshot

        return write_snapshot(
            Path(directory),
            self._snapshot_state(),
            {"score_cache.bin": self._score_cache.save},
        )

    def _snapshot_state(self) -> Dict[str, object]:
        """The picklable state :meth:`save` persists (score cache aside,
        which writes its own blob)."""
        corpora: Dict[str, Optional[Dict[str, object]]] = {}
        for side, corpus in self._corpora.items():
            if corpus is None:
                corpora[side] = None
            else:
                corpora[side] = {
                    "level": corpus.level,
                    "cache_token": corpus.cache_token,
                    "checkpoint": corpus.materialized_checkpoint(),
                }
        return {
            "origin": self.windowing.origin,
            "config": self.config,
            "idf_tolerance": self.idf_tolerance,
            "retention": self._retention,
            "latest": self._latest,
            "histories": {
                side: dict(histories)
                for side, histories in self._sides.items()
            },
            "corpora": corpora,
            "lsh_index": (
                None if self._lsh_index is None else self._lsh_index.checkpoint()
            ),
            "lsh_members": {
                side: dict(members)
                for side, members in self._lsh_members.items()
            },
            "pending_drift": {
                side: dict(drift)
                for side, drift in self._pending_drift.items()
            },
            "pending_global": dict(self._pending_global),
            "last_relink": self._last_relink,
        }

    @classmethod
    def restore(
        cls,
        directory: object,
        *,
        strict: bool = False,
        storage: str = "memory",
        store_dir: Optional[object] = None,
        store_chunk_rows: Optional[int] = None,
        store_cache_chunks: int = 8,
    ) -> Optional["StreamingLinker"]:
        """Rebuild a linker from the newest snapshot under ``directory``.

        The restored linker relinks **bit-identically** to the linker
        that wrote the snapshot — same links, scores, and
        :class:`RelinkStats` counters, under every executor backend
        (pinned by ``tests/store/test_snapshot_restore.py``).

        Returns ``None`` — a cold start — when no snapshot exists (no
        warning) or when the newest snapshot cannot be trusted: a
        truncated manifest, a payload digest mismatch, a format version
        skew, or nothing but tmp-dir litter from a crashed writer.  Each
        untrustworthy case warns naming the
        :class:`~repro.store.snapshot.SnapshotError` subclass; pass
        ``strict=True`` to raise it instead.

        ``storage="disk"`` (with ``store_dir``) re-spills the restored
        corpora out of core; snapshots themselves are storage-agnostic.
        """
        import warnings
        from pathlib import Path

        from ..store.snapshot import SnapshotError, SnapshotMissing, load_state

        try:
            state, cache_path = load_state(Path(directory))
        except SnapshotMissing:
            return None
        except SnapshotError as exc:
            if strict:
                raise
            warnings.warn(
                f"snapshot restore from {directory} failed "
                f"({type(exc).__name__}: {exc}); falling back to a cold "
                "start",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        cache = None if cache_path is None else ScoreCache.load(cache_path)
        linker = cls(
            state["origin"],
            config=state["config"],
            idf_tolerance=state["idf_tolerance"],
            retention=state["retention"],
            score_cache=cache,
            storage=storage,
            store_dir=store_dir,
            store_chunk_rows=store_chunk_rows,
            store_cache_chunks=store_cache_chunks,
        )
        linker._sides = {
            side: dict(histories)
            for side, histories in state["histories"].items()
        }
        linker._latest = state["latest"]
        for side, saved in state["corpora"].items():
            if saved is None:
                continue
            corpus = HistoryCorpus.from_checkpoint(
                linker._sides[side],
                saved["level"],
                saved["checkpoint"],
                cache_token=saved["cache_token"],
            )
            if storage == "disk":
                corpus.spill(
                    Path(store_dir) / side,
                    chunk_rows=store_chunk_rows,
                    cache_chunks=store_cache_chunks,
                )
            linker._corpora[side] = corpus
        lsh_state = state["lsh_index"]
        if lsh_state is not None:
            index = LshIndex(linker.pipeline_config.lsh, lsh_state["spec"])
            index.restore(lsh_state)
            linker._lsh_index = index
        linker._lsh_members = {
            side: dict(members)
            for side, members in state["lsh_members"].items()
        }
        linker._pending_drift = {
            side: dict(drift)
            for side, drift in state["pending_drift"].items()
        }
        linker._pending_global = dict(state["pending_global"])
        linker._last_relink = state["last_relink"]
        return linker

    # ------------------------------------------------------------------
    # incremental helpers
    # ------------------------------------------------------------------
    def _retire(self, side: str) -> Tuple[str, ...]:
        """Apply the retention policy to one side, ahead of a relink.

        Drops the retired histories from the side's mapping (the next
        :meth:`HistoryCorpus.refresh` retracts their statistics as a
        removal delta) and returns the retired ids, sorted.

        The policy's verdict is validated *before* anything is deleted: a
        policy that names an entity the side does not hold, or that would
        empty the side entirely (breaking the :meth:`relink`
        precondition), raises a :class:`ValueError` naming the policy —
        inside the relink transaction, so the checkpoint rollback leaves
        the linker untouched and the fault is a clean retry-able error
        instead of a half-applied eviction.
        """
        histories = self._sides[side]
        if not histories:
            return ()
        doomed = set(
            self._retention.retire(
                histories, self.windowing.index_of(self._latest)
            )
        )
        policy = type(self._retention).__name__
        unknown = sorted(doomed - set(histories))
        if unknown:
            raise ValueError(
                f"retention policy {policy} retired entities the {side} "
                f"side does not hold: {unknown}"
            )
        if doomed and len(doomed) >= len(histories):
            raise ValueError(
                f"retention policy {policy} would retire every {side} "
                f"entity ({len(histories)} of {len(histories)}); a policy "
                "must always spare at least one per side"
            )
        for entity_id in doomed:
            del histories[entity_id]
        return tuple(sorted(doomed))

    def _refresh_corpus(self, side: str) -> Optional[CorpusDelta]:
        """Create the side's corpus on first use; fold deltas afterwards.

        Returns ``None`` on the cold build (everything is new — the score
        cache is empty, no invalidation needed) and a
        :class:`~repro.core.corpus.CorpusDelta` thereafter.
        """
        corpus = self._corpora[side]
        if corpus is None:
            corpus = HistoryCorpus(
                self._sides[side], self.pipeline_config.similarity.spatial_level
            )
            if self.storage == "disk":
                from pathlib import Path

                corpus.spill(
                    Path(self._store_dir) / side,
                    chunk_rows=self._store_chunk_rows,
                    cache_chunks=self._store_cache_chunks,
                )
            self._corpora[side] = corpus
            return None
        return corpus.refresh()

    def _idf_affected(
        self, side: str, delta: Optional[CorpusDelta]
    ) -> Set[str]:
        """Entities whose cached pair totals the delta's IDF movement may
        have silently changed (beyond the configured tolerance).

        Drift is accumulated across refreshes and compared to the
        tolerance cumulatively, so a sequence of small deltas cannot
        sneak unbounded staleness past the bound; once a bin's holders
        are invalidated (forcing a re-score at current IDFs), its
        accumulator restarts.  History versions already invalidate pairs
        of *dirty* entities, so those are excluded; what remains are
        clean holders of drifted bins — and every entity when the corpus
        size itself changed.
        """
        if delta is None or delta.empty:
            return set()
        corpus = self._corpora[side]
        assert corpus is not None
        tolerance = self.idf_tolerance
        dirty = set(delta.dirty_entities)
        pending = self._pending_drift[side]
        self._pending_global[side] += delta.global_drift
        for key, drift in delta.idf_drift.items():
            pending[key] = pending.get(key, 0.0) + drift
        if self._pending_global[side] > tolerance:
            # Every idf on this side moved too far: the whole side's
            # cached pairs go, and all accumulators restart with them.
            self._pending_global[side] = 0.0
            pending.clear()
            return set(corpus.entities) - dirty
        drifted = [key for key, drift in pending.items() if drift > tolerance]
        if not drifted:
            return set()
        for key in drifted:
            del pending[key]
        return corpus.entities_with_bins(drifted) - dirty

    def _lsh_candidates(self) -> Tuple[Set[Tuple[str, str]], bool]:
        """Candidate pairs from the persistent LSH index.

        The index survives across relinks; each relink re-signatures only
        changed histories.  Only when the growing window span changes the
        signature *length* (and with it the banding) is the index rebuilt
        wholesale.  Returns ``(candidates, rebuilt)``.
        """
        lsh = self.pipeline_config.lsh
        if lsh is None:
            # Same contract as the batch LshCandidates stage: naming the
            # missing field beats an AttributeError three frames deeper.
            raise ValueError(
                "candidates='lsh' needs LinkageConfig.lsh to be set"
            )
        spec = lsh.signature_spec(self.total_windows())
        index = self._lsh_index
        if index is None or index.spec.length != spec.length:
            index = LshIndex(lsh, spec)
            index.add_histories(self._sides["left"], self._sides["right"])
            self._lsh_index = index
            self._lsh_members = {
                side: {
                    entity_id: history.version
                    for entity_id, history in self._sides[side].items()
                }
                for side in ("left", "right")
            }
            return index.candidate_pairs(), True
        if index.spec != spec:
            index.update_spec(spec)
        for side in ("left", "right"):
            members = self._lsh_members[side]
            histories = self._sides[side]
            # Retired entities first: withdraw their band placements so
            # no bucket can pair a survivor with a ghost.
            for entity_id in [eid for eid in members if eid not in histories]:
                index.remove(entity_id, side)
                del members[entity_id]
            for entity_id, history in self._sides[side].items():
                if members.get(entity_id) == history.version:
                    continue
                index.remove(entity_id, side)
                index.add(entity_id, build_signature(history, spec), side)
                members[entity_id] = history.version
        return index.candidate_pairs(), False

    # ------------------------------------------------------------------
    # relink
    # ------------------------------------------------------------------
    def relink(self) -> LinkageReport:
        """Delta relink: candidate selection, scoring, matching and
        thresholding over the current state, reusing every cached pair
        total the deltas since the previous relink left intact.

        The tail of the run is the *same stage pipeline* every linker
        uses (:mod:`repro.pipeline`): a streaming-aware candidate stage
        (persistent LSH index) followed by the shared scoring, matching
        and threshold stages, with the delta refresh recorded under the
        canonical ``prepare`` timing key.

        The result is exactly what a cold relink over the same data would
        produce (see the module docstring for the invalidation rules that
        guarantee it at ``idf_tolerance=0.0``).

        The relink is **all-or-nothing**: retirement evictions, corpus
        refreshes, LSH placements and score-cache writes are rolled back
        if anything raises mid-relink (a worker fault past its retry
        budget, an injected chaos fault, a bug), leaving the linker
        answering from the previous consistent snapshot — bit-identical
        to never having called :meth:`relink` — and the failed call can
        simply be retried.  Pinned by ``tests/chaos/test_relink_rollback``.
        """
        if not self._sides["left"] or not self._sides["right"]:
            raise ValueError("both sides need at least one entity before relinking")
        snapshot = self._checkpoint()
        try:
            return self._relink_once()
        except BaseException:
            self._rollback(snapshot)
            raise

    def _checkpoint(self) -> Dict[str, object]:
        """Stage every structure :meth:`_relink_once` mutates.

        Cheap: corpus snapshots are shallow (its arrays are
        replaced-not-mutated), the score cache copies only its allocated
        columnar prefix, and the LSH snapshot copies membership lists.
        """
        return {
            "sides": {
                side: dict(histories)
                for side, histories in self._sides.items()
            },
            "corpora": {
                side: None if corpus is None else corpus.checkpoint()
                for side, corpus in self._corpora.items()
            },
            "corpus_refs": dict(self._corpora),
            "cache": self._score_cache.checkpoint(),
            "lsh_index": self._lsh_index,
            "lsh_state": (
                None if self._lsh_index is None else self._lsh_index.checkpoint()
            ),
            "lsh_members": {
                side: dict(members)
                for side, members in self._lsh_members.items()
            },
            "pending_drift": {
                side: dict(drift)
                for side, drift in self._pending_drift.items()
            },
            "pending_global": dict(self._pending_global),
            "last_relink": self._last_relink,
        }

    def _rollback(self, state: Dict[str, object]) -> None:
        """Rewind every structure to its :meth:`_checkpoint` snapshot.

        The sides dicts are restored *in place* (corpora reference them as
        their histories mapping); a corpus or LSH index first built during
        the failed relink rolls back to ``None``.
        """
        for side, saved in state["sides"].items():
            histories = self._sides[side]
            histories.clear()
            histories.update(saved)
        for side, corpus in state["corpus_refs"].items():
            corpus_state = state["corpora"][side]
            if corpus is not None:
                corpus.restore(corpus_state)
            self._corpora[side] = corpus
        self._score_cache.restore(state["cache"])
        index = state["lsh_index"]
        if index is not None:
            index.restore(state["lsh_state"])
        self._lsh_index = index
        self._lsh_members = {
            side: dict(members)
            for side, members in state["lsh_members"].items()
        }
        self._pending_drift = {
            side: dict(drift)
            for side, drift in state["pending_drift"].items()
        }
        self._pending_global = dict(state["pending_global"])
        self._last_relink = state["last_relink"]

    def _relink_once(self) -> LinkageReport:
        """One relink attempt over live state (see :meth:`relink`, which
        wraps this in the checkpoint/rollback transaction)."""
        left_histories = self._sides["left"]
        right_histories = self._sides["right"]

        clock = time.perf_counter()
        retired = {side: self._retire(side) for side in ("left", "right")}
        if retired["left"] or retired["right"]:
            # Drop retired entities' rows in *every* cache space, not just
            # this linker's: a retired id observed again later restarts at
            # history version 0, and a stale row under matching versions
            # would otherwise be served as a hit.  Sweeping foreign spaces
            # (e.g. entries loaded from a persisted cache) can only cost
            # misses, never correctness.
            self._score_cache.invalidate_pairs(
                set(retired["left"]), set(retired["right"]), space=None
            )
        deltas = {side: self._refresh_corpus(side) for side in ("left", "right")}
        left_corpus = self._corpora["left"]
        right_corpus = self._corpora["right"]
        assert left_corpus is not None and right_corpus is not None

        invalidated = 0
        affected_left = self._idf_affected("left", deltas["left"])
        affected_right = self._idf_affected("right", deltas["right"])
        if affected_left or affected_right:
            # Scoped to this linker's space: in a shared cache, other
            # owners' corpora are untouched by our IDF drift.
            invalidated = self._score_cache.invalidate_pairs(
                affected_left,
                affected_right,
                space=score_cache_space(
                    left_corpus, right_corpus, self.pipeline_config.similarity
                ),
            )

        context = LinkageContext(config=self.pipeline_config)
        context.windowing = self.windowing
        context.total_windows = self.total_windows()
        context.left_histories = left_histories
        context.right_histories = right_histories
        context.left_corpus = left_corpus
        context.right_corpus = right_corpus
        context.score_cache = self._score_cache
        context.timings[STAGE_PREPARE] = time.perf_counter() - clock
        context.stage_names.append(STAGE_PREPARE)

        hits_before = self._score_cache.hits
        misses_before = self._score_cache.misses
        pipeline = LinkagePipeline(
            self.pipeline_config,
            stages=[
                _StreamingCandidates(self),
                ScoringStage(self.pipeline_config),
                MatchingStage(self.pipeline_config),
                ThresholdStage(self.pipeline_config),
            ],
        )
        report = pipeline.execute(context)

        def _dirty(delta: Optional[CorpusDelta], side: str) -> int:
            if delta is None:
                return len(self._sides[side])
            return len(delta.dirty_entities)

        self._last_relink = RelinkStats(
            candidate_pairs=len(context.candidates),
            pairs_rescored=self._score_cache.misses - misses_before,
            cache_hits=self._score_cache.hits - hits_before,
            dirty_left=_dirty(deltas["left"], "left"),
            dirty_right=_dirty(deltas["right"], "right"),
            idf_invalidated=invalidated,
            lsh_rebuilt=bool(context.extras.get("lsh_rebuilt", False)),
            evicted_left=len(retired["left"]),
            evicted_right=len(retired["right"]),
        )
        report.extras["relink"] = self._last_relink
        return report


class _StreamingCandidates:
    """Streaming-aware candidate stage.

    ``"lsh"`` resolves to the linker's *persistent* index (dirty entities
    re-signatured in place, full rebuild only when the growing span
    changes the signature layout); every other name — ``"brute"``,
    ``"temporal"``, custom registrations — dispatches through the
    :data:`~repro.pipeline.stages.candidate_stages` registry exactly as
    the batch pipeline would, so streaming runs honour the config's
    ``candidates`` choice."""

    name = STAGE_CANDIDATES

    def __init__(self, linker: StreamingLinker) -> None:
        self.linker = linker

    def run(self, context: LinkageContext) -> None:
        linker = self.linker
        resolved = linker.pipeline_config.resolved_candidates()
        if resolved == "lsh":
            candidates, rebuilt = linker._lsh_candidates()
            context.candidates = candidates
            context.extras["lsh_rebuilt"] = rebuilt
        else:
            stage = candidate_stages.get(resolved)(linker.pipeline_config)
            context.candidates = stage.generate(context)
            context.extras["lsh_rebuilt"] = False

"""Automatic spatial-level tuning (Sec. 3.3).

Picking the grid level for a given temporal window trades accuracy against
cost: too coarse and entities become indistinguishable, too fine and history
sizes (and pairwise comparison counts) grow with no accuracy gain.  The
paper's unsupervised procedure, implemented here:

1. sample a subset of entities from a dataset;
2. for each sampled entity ``u`` and a set of other entities ``v``, compute
   the ratio ``S(u, v) / S(u, u)`` — *pair similarity over self-similarity*
   — at each candidate spatial level;
3. average the ratios per level; the curve decreases (more detail separates
   entities better) and then flattens;
4. detect the best trade-off point with Kneedle (ref [36]) and use it as
   the level — when linking two datasets, the larger of their two elbow
   levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.records import LocationDataset
from ..temporal import Windowing, common_windowing
from .corpus import HistoryCorpus
from .elbow import kneedle_index
from .history import build_histories
from .similarity import SimilarityConfig, SimilarityEngine

__all__ = ["SpatialLevelChoice", "self_similarity_curve", "auto_spatial_level", "auto_spatial_level_for_pair"]

RngLike = Union[int, np.random.Generator, None]

#: Candidate levels the paper's experiments sweep (Figs. 4, 5, 10a).
DEFAULT_LEVELS: Tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16, 18, 20)


@dataclass(frozen=True)
class SpatialLevelChoice:
    """The tuned level plus the diagnostic curve behind the decision."""

    level: int
    levels: Tuple[int, ...]
    ratios: Tuple[float, ...]

    def curve(self) -> Dict[int, float]:
        """``{level: average pair/self similarity ratio}``."""
        return dict(zip(self.levels, self.ratios))


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def self_similarity_curve(
    dataset: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: Optional[SimilarityConfig] = None,
    windowing: Optional[Windowing] = None,
) -> List[float]:
    """Average ``S(u, v) / S(u, u)`` per candidate level.

    ``config`` supplies non-level similarity knobs (speed, ``b``, ...);
    its ``spatial_level`` is overridden per candidate.
    """
    rng = _as_rng(rng)
    base = config or SimilarityConfig(window_width_minutes=window_width_minutes)
    if windowing is None:
        windowing = common_windowing(
            (dataset.time_range(),), base.window_width_seconds
        )

    entities = dataset.entities
    if len(entities) < 2:
        raise ValueError("need at least two entities to compute the curve")
    probe_count = min(sample_size, len(entities))
    probe_indices = rng.choice(len(entities), size=probe_count, replace=False)
    probes = [entities[int(k)] for k in probe_indices]

    # Fix the partner draw across levels so the curve is comparable.
    partners: Dict[str, List[str]] = {}
    for probe in probes:
        others = [e for e in entities if e != probe]
        take = min(pairs_per_entity, len(others))
        chosen = rng.choice(len(others), size=take, replace=False)
        partners[probe] = [others[int(k)] for k in chosen]

    storage_level = max(levels)
    histories = build_histories(dataset, windowing, storage_level)

    ratios: List[float] = []
    for level in levels:
        corpus = HistoryCorpus(histories, level)
        # The probe workload scores a handful of pairs per level; the
        # scalar backend avoids paying the batch kernel's corpus-wide
        # array-view build for <1% of the entities.
        engine = SimilarityEngine(
            corpus, corpus, base.without(spatial_level=level, backend="python")
        )
        values: List[float] = []
        for probe in probes:
            self_score = engine.score(probe, probe)
            if self_score <= 0:
                continue
            for partner in partners[probe]:
                values.append(max(0.0, engine.score(probe, partner)) / self_score)
        ratios.append(float(np.mean(values)) if values else 1.0)
    return ratios


def auto_spatial_level(
    dataset: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: Optional[SimilarityConfig] = None,
    windowing: Optional[Windowing] = None,
) -> SpatialLevelChoice:
    """Tune the spatial level for one dataset (Sec. 3.3)."""
    ratios = self_similarity_curve(
        dataset,
        window_width_minutes=window_width_minutes,
        levels=levels,
        sample_size=sample_size,
        pairs_per_entity=pairs_per_entity,
        rng=rng,
        config=config,
        windowing=windowing,
    )
    knee = kneedle_index(list(levels), ratios, curve="convex", direction="decreasing")
    return SpatialLevelChoice(
        level=int(levels[knee]), levels=tuple(levels), ratios=tuple(ratios)
    )


def auto_spatial_level_for_pair(
    left: LocationDataset,
    right: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: Optional[SimilarityConfig] = None,
) -> int:
    """Tune both datasets independently and take the higher elbow level,
    as the paper prescribes for a linkage run."""
    rng = _as_rng(rng)
    width_seconds = (config or SimilarityConfig()).window_width_seconds \
        if config else window_width_minutes * 60.0
    windowing = common_windowing(
        (left.time_range(), right.time_range()), width_seconds
    )
    choice_left = auto_spatial_level(
        left,
        window_width_minutes,
        levels,
        sample_size,
        pairs_per_entity,
        rng,
        config,
        windowing,
    )
    choice_right = auto_spatial_level(
        right,
        window_width_minutes,
        levels,
        sample_size,
        pairs_per_entity,
        rng,
        config,
        windowing,
    )
    return max(choice_left.level, choice_right.level)

"""Automatic spatial-level tuning (Sec. 3.3).

Picking the grid level for a given temporal window trades accuracy against
cost: too coarse and entities become indistinguishable, too fine and history
sizes (and pairwise comparison counts) grow with no accuracy gain.  The
paper's unsupervised procedure, implemented here:

1. sample a subset of entities from a dataset;
2. for each sampled entity ``u`` and a set of other entities ``v``, compute
   the ratio ``S(u, v) / S(u, u)`` — *pair similarity over self-similarity*
   — at each candidate spatial level;
3. average the ratios per level; the curve decreases (more detail separates
   entities better) and then flattens;
4. detect the best trade-off point with Kneedle (ref [36]) and use it as
   the level — when linking two datasets, the larger of their two elbow
   levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.records import LocationDataset
from ..exec import Executor, as_executor, raise_on_task_errors
from ..temporal import Windowing, common_windowing
from .corpus import HistoryCorpus
from .elbow import kneedle_index
from .history import MobilityHistory, build_histories
from .score_cache import ScoreCache
from .similarity import SimilarityConfig, SimilarityEngine

__all__ = ["SpatialLevelChoice", "self_similarity_curve", "auto_spatial_level", "auto_spatial_level_for_pair"]

RngLike = Union[int, np.random.Generator, None]

#: ``config`` arguments accept the similarity knobs directly or any
#: object composing them under ``.similarity`` (e.g. a
#: :class:`~repro.pipeline.config.LinkageConfig`).
ConfigLike = Optional[object]


def _similarity_config(config: ConfigLike) -> Optional[SimilarityConfig]:
    """Normalise ``None`` / ``SimilarityConfig`` / anything carrying a
    ``.similarity`` (``LinkageConfig``, legacy ``SlimConfig``)."""
    if config is None or isinstance(config, SimilarityConfig):
        return config
    similarity = getattr(config, "similarity", None)
    if isinstance(similarity, SimilarityConfig):
        return similarity
    raise TypeError(
        "expected SimilarityConfig or a config with a .similarity, got "
        f"{type(config).__name__}"
    )

#: Candidate levels the paper's experiments sweep (Figs. 4, 5, 10a).
DEFAULT_LEVELS: Tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16, 18, 20)


class _HistoriesToken:
    """Identity token for a histories mapping inside a shared ScoreCache.

    Hashes/compares by the *identity* of the wrapped mapping, and holds a
    strong reference to it — so as long as any cache entry keyed by this
    token exists, the mapping cannot be garbage collected and its identity
    cannot be recycled by an unrelated dict (``id()`` alone could alias a
    dead mapping; this cannot).
    """

    __slots__ = ("histories",)

    def __init__(self, histories: Dict[str, MobilityHistory]) -> None:
        self.histories = histories

    def __hash__(self) -> int:
        return id(self.histories)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _HistoriesToken)
            and self.histories is other.histories
        )


@dataclass(frozen=True)
class SpatialLevelChoice:
    """The tuned level plus the diagnostic curve behind the decision."""

    level: int
    levels: Tuple[int, ...]
    ratios: Tuple[float, ...]

    def curve(self) -> Dict[int, float]:
        """``{level: average pair/self similarity ratio}``."""
        return dict(zip(self.levels, self.ratios))


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _level_ratio(
    histories: Dict[str, MobilityHistory],
    level: int,
    base: SimilarityConfig,
    probes: Sequence[str],
    partners: Dict[str, List[str]],
    score_cache: Optional[ScoreCache] = None,
    cache_token=None,
) -> float:
    """Average pair/self similarity ratio at one candidate level (the
    loop body of :func:`self_similarity_curve`, shared by the serial path
    and the executor tasks)."""
    corpus = HistoryCorpus(histories, level, cache_token=cache_token)
    # The probe workload scores a handful of pairs per level; the
    # scalar backend avoids paying the batch kernel's corpus-wide
    # array-view build for <1% of the entities.
    engine = SimilarityEngine(
        corpus,
        corpus,
        base.without(spatial_level=level, backend="python"),
        score_cache=score_cache,
    )
    values: List[float] = []
    for probe in probes:
        self_score = engine.score(probe, probe)
        if self_score <= 0:
            continue
        for partner in partners[probe]:
            values.append(max(0.0, engine.score(probe, partner)) / self_score)
    return float(np.mean(values)) if values else 1.0


def _curve_level_task(payload, level: int) -> float:
    """Executor task for one candidate level (module-level so the
    ``"process"`` backend can pickle it by reference)."""
    histories, base, probes, partners = payload
    return _level_ratio(histories, level, base, probes, partners)


def self_similarity_curve(
    dataset: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: ConfigLike = None,
    windowing: Optional[Windowing] = None,
    score_cache: Optional[ScoreCache] = None,
    histories: Optional[Dict[str, MobilityHistory]] = None,
    executor: Optional[Union[Executor, str]] = None,
) -> List[float]:
    """Average ``S(u, v) / S(u, u)`` per candidate level.

    ``config`` supplies non-level similarity knobs (speed, ``b``, ...) —
    a :class:`~repro.core.similarity.SimilarityConfig` or anything
    composing one under ``.similarity`` (a
    :class:`~repro.pipeline.config.LinkageConfig`); its
    ``spatial_level`` is overridden per candidate.

    Repeated sweeps over the same dataset (re-tuning as data streams in,
    sensitivity benches that vary ``sample_size``) re-score many of the
    same probe pairs.  Passing both ``histories`` (prebuilt once, e.g. via
    :func:`~repro.core.history.build_histories` at ``max(levels)``) and a
    shared :class:`~repro.core.score_cache.ScoreCache` lets those repeats
    hit previously computed raw totals: the per-level corpora are given a
    cache token tied to the identity of the ``histories`` mapping (which
    the cache keeps alive), so entries stay valid exactly as long as the
    caller reuses the same, unmutated mapping.

    ``executor`` fans the candidate levels out through an execution
    backend (:mod:`repro.exec`) — an :class:`~repro.exec.Executor`
    instance (borrowed) or a backend name (``"thread"``, ``"process"``;
    created and shut down internally).  Levels are independent, so
    results are identical to the serial sweep.  Level fan-out and score
    *caching* are mutually exclusive (the cache is not shared across
    workers); when both are requested the cache wins and the sweep runs
    serially.
    """
    rng = _as_rng(rng)
    base = _similarity_config(config) or SimilarityConfig(
        window_width_minutes=window_width_minutes
    )
    if windowing is None:
        windowing = common_windowing(
            (dataset.time_range(),), base.window_width_seconds
        )

    entities = dataset.entities
    if len(entities) < 2:
        raise ValueError("need at least two entities to compute the curve")
    probe_count = min(sample_size, len(entities))
    probe_indices = rng.choice(len(entities), size=probe_count, replace=False)
    probes = [entities[int(k)] for k in probe_indices]

    # Fix the partner draw across levels so the curve is comparable.
    partners: Dict[str, List[str]] = {}
    for probe in probes:
        others = [e for e in entities if e != probe]
        take = min(pairs_per_entity, len(others))
        chosen = rng.choice(len(others), size=take, replace=False)
        partners[probe] = [others[int(k)] for k in chosen]

    storage_level = max(levels)
    caller_owns_histories = histories is not None
    if histories is None:
        histories = build_histories(dataset, windowing, storage_level)
    # Cross-call reuse is only sound for a caller-owned histories mapping:
    # internally built histories die with this call, so attaching the
    # cache would only deposit never-hittable entries.
    use_cache = score_cache is not None and caller_owns_histories

    resolved, owned = as_executor(executor)
    try:
        if resolved is not None and resolved.name != "serial" and not use_cache:
            outcomes = resolved.map_blocks(
                _curve_level_task,
                list(levels),
                payload=(histories, base, probes, partners),
            )
            # A level that failed past its retry budget must not surface
            # as a silent None ratio — fail after the sweep completed.
            raise_on_task_errors(outcomes, "self-similarity level")
            return [outcome.value for outcome in outcomes]
        ratios: List[float] = []
        for level in levels:
            token = (
                ("tuning", _HistoriesToken(histories), level)
                if use_cache
                else None
            )
            ratios.append(
                _level_ratio(
                    histories,
                    level,
                    base,
                    probes,
                    partners,
                    score_cache=score_cache if use_cache else None,
                    cache_token=token,
                )
            )
        return ratios
    finally:
        if owned:
            resolved.shutdown()


def auto_spatial_level(
    dataset: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: ConfigLike = None,
    windowing: Optional[Windowing] = None,
    score_cache: Optional[ScoreCache] = None,
    histories: Optional[Dict[str, MobilityHistory]] = None,
    executor: Optional[Union[Executor, str]] = None,
) -> SpatialLevelChoice:
    """Tune the spatial level for one dataset (Sec. 3.3).

    ``score_cache`` / ``histories`` enable raw-score reuse across repeated
    sweeps; ``executor`` fans the candidate levels out through an
    execution backend — see :func:`self_similarity_curve`.
    """
    ratios = self_similarity_curve(
        dataset,
        window_width_minutes=window_width_minutes,
        levels=levels,
        sample_size=sample_size,
        pairs_per_entity=pairs_per_entity,
        rng=rng,
        config=config,
        windowing=windowing,
        score_cache=score_cache,
        histories=histories,
        executor=executor,
    )
    knee = kneedle_index(list(levels), ratios, curve="convex", direction="decreasing")
    return SpatialLevelChoice(
        level=int(levels[knee]), levels=tuple(levels), ratios=tuple(ratios)
    )


def auto_spatial_level_for_pair(
    left: LocationDataset,
    right: LocationDataset,
    window_width_minutes: float = 15.0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    sample_size: int = 8,
    pairs_per_entity: int = 8,
    rng: RngLike = None,
    config: ConfigLike = None,
    score_cache: Optional[ScoreCache] = None,
    left_histories: Optional[Dict[str, MobilityHistory]] = None,
    right_histories: Optional[Dict[str, MobilityHistory]] = None,
    executor: Optional[Union[Executor, str]] = None,
) -> int:
    """Tune both datasets independently and take the higher elbow level,
    as the paper prescribes for a linkage run.

    Score reuse across repeated runs needs both ``score_cache`` and
    caller-owned prebuilt histories (one mapping per side) — see
    :func:`self_similarity_curve`; a cache without histories is ignored.
    ``executor`` (an :class:`~repro.exec.Executor` or a backend name)
    fans each side's level sweep out through the same execution API the
    scoring stage uses; a named backend is created once and shared by
    both sides.
    """
    rng = _as_rng(rng)
    executor, owned_executor = as_executor(executor)
    config = _similarity_config(config)
    width_seconds = (
        config.window_width_seconds
        if config is not None
        else window_width_minutes * 60.0
    )
    windowing = common_windowing(
        (left.time_range(), right.time_range()), width_seconds
    )
    try:
        choice_left = auto_spatial_level(
            left,
            window_width_minutes,
            levels,
            sample_size,
            pairs_per_entity,
            rng,
            config,
            windowing,
            score_cache=score_cache,
            histories=left_histories,
            executor=executor,
        )
        choice_right = auto_spatial_level(
            right,
            window_width_minutes,
            levels,
            sample_size,
            pairs_per_entity,
            rng,
            config,
            windowing,
            score_cache=score_cache,
            histories=right_histories,
            executor=executor,
        )
    finally:
        if owned_executor:
            executor.shutdown()
    return max(choice_left.level, choice_right.level)

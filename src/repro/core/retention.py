"""Retention policies: bounded-memory streaming via entity retirement.

A long-running :class:`~repro.core.streaming.StreamingLinker` only ever
*grows*: every entity observed since the origin keeps its history, its
corpus statistics, its LSH placements and its cached pair scores forever.
On an unbounded stream that is an unbounded memory leak — and every relink
pays candidate generation and IDF bookkeeping for entities that stopped
reporting long ago and can never match again.

A :class:`RetentionPolicy` decides, before each relink, which entities
have left the live working set.  Retirement is a *first-class removal
delta*, not a rebuild: the linker drops the retired histories,
:meth:`~repro.core.corpus.HistoryCorpus.refresh` retracts their bins
(document frequencies, flat array views, df slots) through the existing
compaction path, the persistent LSH index withdraws their band placements
(:meth:`~repro.lsh.index.LshIndex.remove`), and the
:class:`~repro.core.score_cache.ScoreCache` drops their rows.  The parity
contract mirrors the delta-relink one: a relink after retirement is
bit-identical to a cold run over the *surviving* entities
(``tests/core/test_retention.py``).

Policies live in a string-keyed registry and plug in like every other
strategy in this package:

>>> policy = build_retention("sliding_window", 4)
>>> from repro.core.history import MobilityHistory
>>> from repro.temporal import Windowing
>>> import numpy as np
>>> w = Windowing(0.0, 900.0)
>>> def history(eid, *times):
...     t = np.array(times)
...     return MobilityHistory.from_columns(
...         eid, t, np.full(t.shape, 37.77), np.full(t.shape, -122.42), w, 12)
>>> histories = {"old": history("old", 10.0), "new": history("new", 9000.0)}
>>> sorted(policy.retire(histories, current_window=10))
['old']
>>> build_retention("none", 0).retire(histories, current_window=10)
set()
"""

from __future__ import annotations

from typing import Dict, Set

from ..registry import Registry
from .history import MobilityHistory

__all__ = [
    "RetentionPolicy",
    "NoRetention",
    "SlidingWindowRetention",
    "MaxEntitiesRetention",
    "retention_policies",
    "build_retention",
]

#: Registered retention strategies; entries are factories called with the
#: policy's ``window`` parameter (see :func:`build_retention`).
retention_policies: Registry["type"] = Registry("retention policy")


class RetentionPolicy:
    """Decides which entities have left the live working set.

    ``retire`` returns the entity ids to drop, given a side's current
    histories and the stream's latest leaf-window index.  Implementations
    must be **deterministic** (the eviction parity contract replays them)
    and must never retire *every* entity — a side needs at least one
    survivor to relink.  ``window`` is the policy's single integer
    parameter; its meaning is policy-specific (see the built-ins).
    """

    def __init__(self, window: int) -> None:
        self.window = window

    def retire(
        self, histories: Dict[str, MobilityHistory], current_window: int
    ) -> Set[str]:
        raise NotImplementedError

    @staticmethod
    def _spare_most_recent(
        doomed: Set[str], histories: Dict[str, MobilityHistory]
    ) -> Set[str]:
        """Never empty a side: keep the most recently active entity (ties
        to the largest id, so the survivor is deterministic)."""
        if doomed and len(doomed) == len(histories):
            survivor = max(
                histories, key=lambda eid: (histories[eid].latest_window(), eid)
            )
            doomed = doomed - {survivor}
        return doomed


@retention_policies.register("none")
class NoRetention(RetentionPolicy):
    """Keep everything — the historical (pre-retention) behaviour."""

    def retire(
        self, histories: Dict[str, MobilityHistory], current_window: int
    ) -> Set[str]:
        return set()


@retention_policies.register("sliding_window")
class SlidingWindowRetention(RetentionPolicy):
    """Retire entities whose last activity fell out of a sliding window.

    ``window`` is the maximum age in leaf windows: an entity whose latest
    populated window is more than ``window`` windows behind the stream's
    current window is retired.  An entity active in the current window has
    age 0; ``window=96`` with 15-minute windows keeps one day of activity.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("sliding_window retention needs window >= 1")
        super().__init__(window)

    def retire(
        self, histories: Dict[str, MobilityHistory], current_window: int
    ) -> Set[str]:
        horizon = current_window - self.window
        doomed = {
            entity_id
            for entity_id, history in histories.items()
            if history.latest_window() < horizon
        }
        return self._spare_most_recent(doomed, histories)


@retention_policies.register("max_entities")
class MaxEntitiesRetention(RetentionPolicy):
    """Bound the entity count, retiring least-recently-active first.

    ``window`` is the maximum number of entities kept per side.  Beyond
    it, entities are retired in order of their latest populated window
    (oldest activity first, ties to the smallest entity id — an LRU over
    *data* recency, so the policy is deterministic and replayable).
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("max_entities retention needs window >= 1")
        super().__init__(window)

    def retire(
        self, histories: Dict[str, MobilityHistory], current_window: int
    ) -> Set[str]:
        excess = len(histories) - self.window
        if excess <= 0:
            return set()
        by_recency = sorted(
            histories,
            key=lambda eid: (histories[eid].latest_window(), eid),
        )
        return set(by_recency[:excess])


def build_retention(name: str, window: int) -> RetentionPolicy:
    """Instantiate a registered policy (the config front door).

    ``window`` is the policy's integer parameter (max window age for
    ``"sliding_window"``, max entity count for ``"max_entities"``,
    ignored by ``"none"``).  Unknown names raise a :class:`KeyError`
    listing the registered policies.
    """
    return retention_policies.get(name)(window)

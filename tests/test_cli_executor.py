"""CLI executor and score-cache flags."""

import json

import pytest

from repro.cli import build_parser, config_from_args, main
from repro.data import sample_linkage_pair, save_csv


@pytest.fixture(scope="module")
def csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli-executor")
    world = cab_world.subset(cab_world.entities[:12])
    pair = sample_linkage_pair(world, 0.5, 0.5, rng=8)
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    save_csv(pair.left, left)
    save_csv(pair.right, right)
    return str(left), str(right)


def _config(argv):
    parser = build_parser()
    return config_from_args(parser.parse_args(argv), dict.fromkeys(argv))


class TestExecutorFlags:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_all_backends_run(self, csv_pair, backend, capsys):
        left, right = csv_pair
        assert main([left, right, "--executor", backend, "--workers", "2"]) == 0
        assert capsys.readouterr().out.startswith("left,right,score,linked")

    def test_flags_reach_config(self, csv_pair):
        left, right = csv_pair
        parser = build_parser()
        args = parser.parse_args(
            [left, right, "--executor", "process", "--workers", "4"]
        )
        config = config_from_args(args, {"executor": "process", "workers": 4})
        assert config.executor == "process"
        assert config.workers == 4

    def test_flags_override_config_file(self, csv_pair, tmp_path):
        from repro.pipeline import LinkageConfig

        left, right = csv_pair
        path = tmp_path / "run.json"
        path.write_text(json.dumps(LinkageConfig(executor="thread").to_dict()))
        parser = build_parser()
        args = parser.parse_args(
            [left, right, "--config", str(path), "--executor", "serial"]
        )
        config = config_from_args(args, {"config": str(path), "executor": "serial"})
        assert config.executor == "serial"
        # Without the explicit flag, the file's value survives.
        args = parser.parse_args([left, right, "--config", str(path)])
        config = config_from_args(args, {"config": str(path)})
        assert config.executor == "thread"


class TestScoreCacheFlag:
    def test_warm_start_round_trip(self, csv_pair, tmp_path, capsys):
        left, right = csv_pair
        cache_path = tmp_path / "scores.bin"

        assert main([left, right, "--score-cache", str(cache_path)]) == 0
        first = capsys.readouterr()
        assert cache_path.exists()
        assert "0 hits" in first.err

        from repro.core.score_cache import ScoreCache

        misses_after_first = ScoreCache.load(cache_path).misses
        assert main([left, right, "--score-cache", str(cache_path)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # identical links either way
        assert "0 hits" not in second.err  # warm-started
        # Counters persist across runs; the second run added no misses.
        assert ScoreCache.load(cache_path).misses == misses_after_first

    def test_corrupt_cache_warns_and_rebuilds(self, csv_pair, tmp_path, capsys):
        left, right = csv_pair
        cache_path = tmp_path / "scores.bin"
        cache_path.write_bytes(b"not a cache")
        assert main([left, right, "--score-cache", str(cache_path)]) == 0
        err = capsys.readouterr().err
        assert "warning: ignoring score cache" in err
        # The run still persisted a fresh, now-valid cache.
        from repro.core.score_cache import ScoreCache

        assert len(ScoreCache.load(cache_path)) > 0

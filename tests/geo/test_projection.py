"""Unit tests for the cube-face projection."""

import math

import pytest

from repro.geo.projection import (
    IJ_SIZE,
    MAX_LEVEL,
    face_uv_to_xyz,
    ij_to_st,
    st_to_ij,
    st_to_uv,
    uv_to_st,
    xyz_to_face_uv,
)


class TestStUv:
    def test_st_to_uv_endpoints(self):
        assert st_to_uv(0.0) == pytest.approx(-1.0)
        assert st_to_uv(0.5) == pytest.approx(0.0)
        assert st_to_uv(1.0) == pytest.approx(1.0)

    def test_uv_to_st_endpoints(self):
        assert uv_to_st(-1.0) == pytest.approx(0.0)
        assert uv_to_st(0.0) == pytest.approx(0.5)
        assert uv_to_st(1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("s", [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
    def test_roundtrip(self, s):
        assert uv_to_st(st_to_uv(s)) == pytest.approx(s, abs=1e-12)

    def test_monotonic(self):
        values = [st_to_uv(s / 100) for s in range(101)]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestIj:
    def test_st_to_ij_bounds(self):
        assert st_to_ij(0.0) == 0
        assert st_to_ij(1.0) == IJ_SIZE - 1  # clamped
        assert st_to_ij(0.5) == IJ_SIZE // 2

    def test_ij_to_st_is_cell_center(self):
        assert ij_to_st(0) == pytest.approx(0.5 / IJ_SIZE)

    def test_roundtrip_center(self):
        for i in (0, 1, 12345, IJ_SIZE - 1):
            assert st_to_ij(ij_to_st(i)) == i

    def test_max_level_constant(self):
        assert MAX_LEVEL == 30
        assert IJ_SIZE == 1 << 30


class TestFaceProjection:
    @pytest.mark.parametrize("face", range(6))
    def test_face_roundtrip(self, face):
        x, y, z = face_uv_to_xyz(face, 0.3, -0.4)
        recovered_face, u, v = xyz_to_face_uv(x, y, z)
        assert recovered_face == face
        assert u == pytest.approx(0.3)
        assert v == pytest.approx(-0.4)

    def test_face_axes(self):
        assert xyz_to_face_uv(1.0, 0.0, 0.0)[0] == 0
        assert xyz_to_face_uv(0.0, 1.0, 0.0)[0] == 1
        assert xyz_to_face_uv(0.0, 0.0, 1.0)[0] == 2
        assert xyz_to_face_uv(-1.0, 0.0, 0.0)[0] == 3
        assert xyz_to_face_uv(0.0, -1.0, 0.0)[0] == 4
        assert xyz_to_face_uv(0.0, 0.0, -1.0)[0] == 5

    def test_invalid_face_raises(self):
        with pytest.raises(ValueError):
            face_uv_to_xyz(6, 0.0, 0.0)

    def test_face_center_unit_vectors(self):
        x, y, z = face_uv_to_xyz(0, 0.0, 0.0)
        assert (x, y, z) == (1.0, 0.0, 0.0)

    def test_all_directions_covered(self):
        # Any random direction must land on exactly one face with |u|,|v| <= 1.
        directions = [
            (0.5, 0.3, 0.2),
            (-0.9, 0.1, 0.4),
            (0.2, -0.8, 0.5),
            (0.1, 0.2, -0.95),
        ]
        for x, y, z in directions:
            face, u, v = xyz_to_face_uv(x, y, z)
            assert 0 <= face <= 5
            assert abs(u) <= 1.0 + 1e-12
            assert abs(v) <= 1.0 + 1e-12

    def test_projection_preserves_direction(self):
        x, y, z = 0.4, -0.5, 0.77
        face, u, v = xyz_to_face_uv(x, y, z)
        px, py, pz = face_uv_to_xyz(face, u, v)
        # Projected vector must be a positive scalar multiple of the input.
        scale = math.sqrt((px * px + py * py + pz * pz) / (x * x + y * y + z * z))
        assert px == pytest.approx(x * scale, rel=1e-9)
        assert py == pytest.approx(y * scale, rel=1e-9)
        assert pz == pytest.approx(z * scale, rel=1e-9)

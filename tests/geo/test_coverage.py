"""Unit tests for cell adjacency and cap covering."""

import pytest

from repro.geo import (
    CellId,
    LatLng,
    all_neighbors,
    cover_cap,
    edge_neighbors,
    point_to_cell_distance,
)


@pytest.fixture()
def cell() -> CellId:
    return CellId.from_degrees(37.77, -122.42, 14)


class TestNeighbors:
    def test_edge_neighbor_count(self, cell):
        assert len(edge_neighbors(cell)) == 4

    def test_all_neighbor_count(self, cell):
        assert len(all_neighbors(cell)) == 8

    def test_neighbors_same_level(self, cell):
        for neighbor in all_neighbors(cell):
            assert neighbor.level() == cell.level()

    def test_neighbors_distinct_and_exclude_self(self, cell):
        neighbors = all_neighbors(cell)
        assert cell not in neighbors
        assert len(set(neighbors)) == len(neighbors)

    def test_neighbors_are_adjacent(self, cell):
        # Each neighbour's minimum distance to the cell is (near) zero.
        for neighbor in edge_neighbors(cell):
            assert cell.distance_meters(neighbor) == 0.0

    def test_edge_neighbors_subset_of_all(self, cell):
        assert set(edge_neighbors(cell)) <= set(all_neighbors(cell))

    def test_neighbor_symmetry_within_face(self, cell):
        for neighbor in edge_neighbors(cell):
            assert cell in edge_neighbors(neighbor)

    def test_face_boundary_fallback(self):
        # A cell hugging a face boundary (lat/lng 45/45 region) still
        # produces 8 distinct, valid neighbours via the geodesic fallback.
        boundary_cell = CellId.from_degrees(0.0, 44.99, 10)
        neighbors = all_neighbors(boundary_cell)
        assert len(neighbors) == 8
        assert all(n.is_valid() for n in neighbors)

    def test_level_zero_raises(self):
        with pytest.raises(ValueError):
            edge_neighbors(CellId.from_degrees(0, 0, 0))


class TestPointToCellDistance:
    def test_inside_is_zero(self, cell):
        assert point_to_cell_distance(cell.center(), cell) == 0.0

    def test_outside_positive(self, cell):
        far = LatLng.from_degrees(40.71, -74.0)
        distance = point_to_cell_distance(far, cell)
        assert distance > 1e6

    def test_lower_bounds_true_distance(self, cell):
        point = LatLng.from_degrees(37.9, -122.2)
        assert point_to_cell_distance(point, cell) <= point.distance_meters(
            cell.center()
        )


class TestCoverCap:
    CENTER = LatLng.from_degrees(37.77, -122.42)

    def test_contains_center_cell(self):
        cover = cover_cap(self.CENTER, 500.0, 14)
        assert CellId.from_lat_lng(self.CENTER, 14) in cover

    def test_radius_zero_is_small_and_contains_center(self):
        # The distance bound is conservative (lower bound clamped at zero),
        # so immediate neighbours may be over-covered; the cover must stay
        # within the 3x3 patch and include the containing cell.
        cover = cover_cap(self.CENTER, 0.0, 14)
        assert CellId.from_lat_lng(self.CENTER, 14) in cover
        assert len(cover) <= 9

    def test_larger_radius_more_cells(self):
        small = cover_cap(self.CENTER, 500.0, 14)
        large = cover_cap(self.CENTER, 3000.0, 14)
        assert len(large) > len(small)
        assert set(small) <= set(large)

    def test_all_cells_within_radius(self):
        radius = 2500.0
        for covered in cover_cap(self.CENTER, radius, 14):
            assert point_to_cell_distance(self.CENTER, covered) <= radius

    def test_cover_is_connected_superset_of_contained_points(self):
        """Points inside the cap land in covered cells."""
        radius = 2000.0
        cover = set(cover_cap(self.CENTER, radius, 14))
        for bearing in (0.0, 1.0, 2.0, 3.0, 4.5):
            inside = self.CENTER.destination(bearing, radius * 0.8)
            assert CellId.from_lat_lng(inside, 14) in cover

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            cover_cap(self.CENTER, -1.0, 12)

    def test_max_cells_guard(self):
        with pytest.raises(ValueError):
            cover_cap(self.CENTER, 100_000.0, 20, max_cells=32)

    def test_sorted_and_unique(self):
        cover = cover_cap(self.CENTER, 1500.0, 13)
        assert cover == sorted(set(cover))

"""Unit tests for hierarchical grid cells."""

import pytest

from repro.geo import CellId, LatLng, cell_union_normalize
from repro.geo.cell import id_level, parent_id


@pytest.fixture()
def sf_cell() -> CellId:
    return CellId.from_degrees(37.7749, -122.4194, level=12)


class TestConstruction:
    def test_leaf_by_default(self):
        cell = CellId.from_degrees(10.0, 20.0)
        assert cell.level() == 30
        assert cell.is_leaf()

    def test_level_encoding(self, sf_cell):
        assert sf_cell.level() == 12
        assert not sf_cell.is_leaf()

    @pytest.mark.parametrize("level", [0, 1, 5, 12, 20, 30])
    def test_all_levels_valid(self, level):
        cell = CellId.from_degrees(-33.86, 151.2, level)
        assert cell.is_valid()
        assert cell.level() == level

    def test_invalid_face_raises(self):
        with pytest.raises(ValueError):
            CellId.from_face_ij(6, 0, 0, 10)

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            CellId.from_face_ij(0, 0, 0, 31)

    def test_zero_id_invalid(self):
        assert not CellId(0).is_valid()

    def test_from_face_ij_roundtrip(self):
        cell = CellId.from_face_ij(2, 123456, 654321, 30)
        face, i, j, size = cell.to_face_ij()
        assert (face, i, j, size) == (2, 123456, 654321, 1)


class TestHierarchy:
    def test_parent_contains_child(self, sf_cell):
        for level in range(sf_cell.level()):
            assert sf_cell.parent(level).contains(sf_cell)

    def test_parent_of_same_level_is_self(self, sf_cell):
        assert sf_cell.parent(12) is sf_cell

    def test_parent_finer_raises(self, sf_cell):
        with pytest.raises(ValueError):
            sf_cell.parent(13)

    def test_children_partition(self, sf_cell):
        children = list(sf_cell.children())
        assert len(children) == 4
        assert len(set(children)) == 4
        for child in children:
            assert child.level() == 13
            assert sf_cell.contains(child)
            assert child.immediate_parent() == sf_cell

    def test_leaf_has_no_children(self):
        leaf = CellId.from_degrees(0.0, 0.0, 30)
        with pytest.raises(ValueError):
            leaf.child(0)

    def test_child_position_range(self, sf_cell):
        with pytest.raises(ValueError):
            sf_cell.child(4)

    def test_containment_is_not_symmetric(self, sf_cell):
        parent = sf_cell.parent(10)
        assert parent.contains(sf_cell)
        assert not sf_cell.contains(parent)

    def test_disjoint_cells_do_not_contain(self):
        a = CellId.from_degrees(37.77, -122.42, 12)
        b = CellId.from_degrees(40.71, -74.0, 12)
        assert not a.contains(b)
        assert not b.contains(a)
        assert not a.intersects(b)

    def test_intersects_ancestor(self, sf_cell):
        assert sf_cell.intersects(sf_cell.parent(8))
        assert sf_cell.parent(8).intersects(sf_cell)

    def test_point_stays_in_cell_across_levels(self):
        point = LatLng.from_degrees(48.8566, 2.3522)
        leaf = CellId.from_lat_lng(point, 30)
        for level in range(0, 30, 3):
            assert CellId.from_lat_lng(point, level).contains(leaf)


class TestRawIdHelpers:
    def test_parent_id_matches_object_api(self, sf_cell):
        assert parent_id(sf_cell.id, 8) == sf_cell.parent(8).id

    def test_id_level_matches_object_api(self, sf_cell):
        assert id_level(sf_cell.id) == 12
        assert id_level(sf_cell.parent(3).id) == 3


class TestGeometry:
    def test_center_inside_cell(self, sf_cell):
        center_cell = CellId.from_lat_lng(sf_cell.center(), 12)
        assert center_cell == sf_cell

    def test_vertices_count(self, sf_cell):
        assert len(sf_cell.vertices()) == 4

    def test_circumradius_bounds_vertices(self, sf_cell):
        center = sf_cell.center()
        radius = sf_cell.circumradius_meters()
        for vertex in sf_cell.vertices():
            assert center.distance_meters(vertex) <= radius + 1e-6

    def test_same_cell_distance_zero(self, sf_cell):
        assert sf_cell.distance_meters(sf_cell) == 0.0

    def test_nested_cells_distance_zero(self, sf_cell):
        assert sf_cell.distance_meters(sf_cell.parent(8)) == 0.0

    def test_far_cells_distance_positive(self):
        sf = CellId.from_degrees(37.77, -122.42, 12)
        nyc = CellId.from_degrees(40.71, -74.0, 12)
        distance = sf.distance_meters(nyc)
        # SF-NYC is ~4,130 km; the cell bound subtracts only a few km.
        assert distance == pytest.approx(4.13e6, rel=0.02)

    def test_distance_symmetry(self):
        a = CellId.from_degrees(37.77, -122.42, 14)
        b = CellId.from_degrees(37.80, -122.25, 14)
        assert a.distance_meters(b) == pytest.approx(b.distance_meters(a))

    def test_distance_is_lower_bound_of_point_distance(self):
        p1 = LatLng.from_degrees(37.77, -122.42)
        p2 = LatLng.from_degrees(37.90, -122.10)
        c1 = CellId.from_lat_lng(p1, 13)
        c2 = CellId.from_lat_lng(p2, 13)
        assert c1.distance_meters(c2) <= p1.distance_meters(p2)

    def test_average_edge_meters_halves_per_level(self):
        assert CellId.average_edge_meters(11) == pytest.approx(
            2 * CellId.average_edge_meters(12)
        )


class TestTokens:
    def test_token_roundtrip(self, sf_cell):
        assert CellId.from_token(sf_cell.to_token()) == sf_cell

    def test_token_strips_zeros(self):
        cell = CellId.from_degrees(0.0, 0.0, 4)
        assert not cell.to_token().endswith("0")

    def test_invalid_token_raises(self):
        with pytest.raises(ValueError):
            CellId.from_token("")
        with pytest.raises(ValueError):
            CellId.from_token("0" * 17)

    def test_ordering(self):
        a = CellId.from_degrees(10.0, 10.0, 10)
        b = CellId.from_degrees(10.0, 10.0, 10)
        assert a <= b
        assert not (a < b)


class TestCellUnionNormalize:
    def test_removes_duplicates(self, sf_cell):
        assert cell_union_normalize([sf_cell, sf_cell]) == [sf_cell]

    def test_removes_contained(self, sf_cell):
        parent = sf_cell.parent(10)
        assert cell_union_normalize([sf_cell, parent]) == [parent]

    def test_keeps_disjoint(self):
        a = CellId.from_degrees(37.77, -122.42, 12)
        b = CellId.from_degrees(40.71, -74.0, 12)
        assert set(cell_union_normalize([a, b])) == {a, b}

    def test_empty(self):
        assert cell_union_normalize([]) == []

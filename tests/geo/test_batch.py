"""Unit tests for vectorised cell-id conversion."""

import numpy as np
import pytest

from repro.geo import CellId, cell_ids_from_degrees


class TestBatchConversion:
    def test_matches_scalar_path(self):
        rng = np.random.default_rng(42)
        lats = rng.uniform(-85, 85, 500)
        lngs = rng.uniform(-180, 180, 500)
        for level in (4, 12, 20, 30):
            batch = cell_ids_from_degrees(lats, lngs, level)
            scalar = np.array(
                [CellId.from_degrees(a, b, level).id for a, b in zip(lats, lngs)],
                dtype=np.uint64,
            )
            assert (batch == scalar).all()

    def test_empty_input(self):
        out = cell_ids_from_degrees(np.array([]), np.array([]), 12)
        assert out.shape == (0,)
        assert out.dtype == np.uint64

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cell_ids_from_degrees(np.zeros(3), np.zeros(4), 12)

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            cell_ids_from_degrees(np.zeros(1), np.zeros(1), 31)

    def test_poles_and_dateline(self):
        lats = np.array([89.99, -89.99, 0.0, 0.0])
        lngs = np.array([0.0, 0.0, 179.99, -179.99])
        ids = cell_ids_from_degrees(lats, lngs, 10)
        for value in ids:
            assert CellId(int(value)).is_valid()

    def test_results_are_valid_cells_of_requested_level(self):
        rng = np.random.default_rng(0)
        lats = rng.uniform(-60, 60, 100)
        lngs = rng.uniform(-170, 170, 100)
        ids = cell_ids_from_degrees(lats, lngs, 14)
        for value in ids:
            cell = CellId(int(value))
            assert cell.is_valid()
            assert cell.level() == 14

    def test_accepts_lists(self):
        out = cell_ids_from_degrees([37.7, 37.8], [-122.4, -122.3], 12)
        assert out.shape == (2,)

    def test_nearby_points_share_coarse_cell(self):
        lats = np.array([37.7749, 37.7750])
        lngs = np.array([-122.4194, -122.4195])
        coarse = cell_ids_from_degrees(lats, lngs, 8)
        assert coarse[0] == coarse[1]

"""Unit tests for spherical point arithmetic."""

import math

import pytest

from repro.geo import EARTH_RADIUS_METERS, LatLng


class TestConstruction:
    def test_from_degrees_roundtrip(self):
        point = LatLng.from_degrees(37.7749, -122.4194)
        assert point.lat_degrees == pytest.approx(37.7749)
        assert point.lng_degrees == pytest.approx(-122.4194)

    def test_from_radians(self):
        point = LatLng.from_radians(math.pi / 4, -math.pi / 2)
        assert point.lat_degrees == pytest.approx(45.0)
        assert point.lng_degrees == pytest.approx(-90.0)

    def test_xyz_roundtrip(self):
        point = LatLng.from_degrees(51.5, -0.12)
        recovered = LatLng.from_xyz(*point.to_xyz())
        assert recovered.approx_equals(point, 1e-12)

    def test_xyz_accepts_unnormalised_vector(self):
        point = LatLng.from_xyz(2.0, 0.0, 0.0)
        assert point.lat_degrees == pytest.approx(0.0)
        assert point.lng_degrees == pytest.approx(0.0)

    def test_is_valid(self):
        assert LatLng.from_degrees(90.0, 180.0).is_valid()
        assert not LatLng.from_degrees(91.0, 0.0).is_valid()
        assert not LatLng.from_degrees(0.0, 181.0).is_valid()


class TestDistance:
    def test_zero_distance_to_self(self):
        point = LatLng.from_degrees(10.0, 20.0)
        assert point.distance_meters(point) == 0.0

    def test_known_distance_sf_to_la(self):
        sf = LatLng.from_degrees(37.7749, -122.4194)
        la = LatLng.from_degrees(34.0522, -118.2437)
        # Great-circle distance is ~559 km.
        assert sf.distance_meters(la) == pytest.approx(559_000, rel=0.01)

    def test_quarter_circumference(self):
        equator = LatLng.from_degrees(0.0, 0.0)
        pole = LatLng.from_degrees(90.0, 0.0)
        expected = math.pi / 2 * EARTH_RADIUS_METERS
        assert equator.distance_meters(pole) == pytest.approx(expected, rel=1e-9)

    def test_symmetry(self):
        a = LatLng.from_degrees(48.85, 2.35)
        b = LatLng.from_degrees(40.71, -74.0)
        assert a.distance_meters(b) == pytest.approx(b.distance_meters(a))

    def test_small_distance_precision(self):
        a = LatLng.from_degrees(37.0, -122.0)
        b = LatLng.from_degrees(37.00001, -122.0)
        # ~1.11 m of latitude.
        assert a.distance_meters(b) == pytest.approx(1.113, rel=0.01)


class TestDestination:
    def test_destination_north(self):
        start = LatLng.from_degrees(0.0, 0.0)
        end = start.destination(0.0, 111_320.0)
        assert end.lat_degrees == pytest.approx(1.0, abs=0.01)
        assert end.lng_degrees == pytest.approx(0.0, abs=1e-9)

    def test_destination_distance_consistency(self):
        start = LatLng.from_degrees(37.0, -122.0)
        for bearing in (0.0, 1.0, 2.5, 4.0):
            end = start.destination(bearing, 5_000.0)
            assert start.distance_meters(end) == pytest.approx(5_000.0, rel=1e-6)

    def test_destination_wraps_longitude(self):
        start = LatLng.from_degrees(0.0, 179.9)
        end = start.destination(math.pi / 2, 50_000.0)
        assert -180.0 <= end.lng_degrees <= 180.0


class TestInterpolate:
    def test_endpoints(self):
        a = LatLng.from_degrees(10.0, 10.0)
        b = LatLng.from_degrees(20.0, 20.0)
        assert a.interpolate(b, 0.0).approx_equals(a, 1e-9)
        assert a.interpolate(b, 1.0).approx_equals(b, 1e-9)

    def test_midpoint_equidistant(self):
        a = LatLng.from_degrees(0.0, 0.0)
        b = LatLng.from_degrees(0.0, 90.0)
        mid = a.interpolate(b, 0.5)
        assert a.distance_meters(mid) == pytest.approx(b.distance_meters(mid), rel=1e-9)

    def test_interpolate_identical_points(self):
        a = LatLng.from_degrees(5.0, 5.0)
        assert a.interpolate(a, 0.7).approx_equals(a, 1e-9)

    def test_fraction_scales_distance(self):
        a = LatLng.from_degrees(37.0, -122.0)
        b = LatLng.from_degrees(38.0, -121.0)
        total = a.distance_meters(b)
        quarter = a.interpolate(b, 0.25)
        assert a.distance_meters(quarter) == pytest.approx(total / 4, rel=1e-6)


class TestDunder:
    def test_equality_and_hash(self):
        a = LatLng.from_degrees(1.0, 2.0)
        b = LatLng.from_degrees(1.0, 2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != LatLng.from_degrees(1.0, 2.1)

    def test_iteration_yields_radians(self):
        point = LatLng.from_degrees(90.0, 0.0)
        lat, lng = point
        assert lat == pytest.approx(math.pi / 2)
        assert lng == 0.0

    def test_repr_contains_degrees(self):
        assert "37.77" in repr(LatLng.from_degrees(37.7749, -122.4194))

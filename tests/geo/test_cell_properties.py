"""Property-based tests for the spatial grid (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import CellId, LatLng

# Stay away from the exact poles where longitude degenerates.
lat_strategy = st.floats(min_value=-84.9, max_value=84.9, allow_nan=False)
lng_strategy = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)
level_strategy = st.integers(min_value=0, max_value=30)


@given(lat=lat_strategy, lng=lng_strategy, level=level_strategy)
@settings(max_examples=150, deadline=None)
def test_cell_contains_its_point_leaf(lat, lng, level):
    """A cell at any level contains the leaf cell of the point it was
    derived from."""
    point = LatLng.from_degrees(lat, lng)
    leaf = CellId.from_lat_lng(point, 30)
    cell = CellId.from_lat_lng(point, level)
    assert cell.contains(leaf)


@given(lat=lat_strategy, lng=lng_strategy, level=st.integers(min_value=1, max_value=30))
@settings(max_examples=150, deadline=None)
def test_parent_chain_is_consistent(lat, lng, level):
    """parent(level-1) == immediate_parent, and levels decrease by one."""
    cell = CellId.from_degrees(lat, lng, level)
    parent = cell.immediate_parent()
    assert parent.level() == level - 1
    assert parent == cell.parent(level - 1)
    assert parent.contains(cell)


@given(lat=lat_strategy, lng=lng_strategy, level=st.integers(min_value=0, max_value=29))
@settings(max_examples=100, deadline=None)
def test_exactly_one_child_contains_point(lat, lng, level):
    """The four children partition the parent: the generating point falls in
    exactly one of them."""
    point = LatLng.from_degrees(lat, lng)
    cell = CellId.from_lat_lng(point, level)
    finer = CellId.from_lat_lng(point, level + 1)
    containing = [child for child in cell.children() if child == finer]
    assert len(containing) == 1


@given(lat=lat_strategy, lng=lng_strategy, level=st.integers(min_value=2, max_value=28))
@settings(max_examples=100, deadline=None)
def test_center_distance_bounded_by_circumradius(lat, lng, level):
    """The generating point lies within the circumradius of its cell.

    The absolute slack covers haversine rounding noise: at level 28 a
    cell's circumradius is ~2 cm, and two great-circle evaluations on an
    Earth-sized sphere can disagree by a few 1e-10 m — a purely numerical
    overshoot the relative tolerance alone cannot absorb.
    """
    point = LatLng.from_degrees(lat, lng)
    cell = CellId.from_lat_lng(point, level)
    bound = cell.circumradius_meters() * (1 + 1e-9) + 1e-6
    assert cell.center().distance_meters(point) <= bound


@given(lat=lat_strategy, lng=lng_strategy, level=level_strategy)
@settings(max_examples=100, deadline=None)
def test_token_roundtrip(lat, lng, level):
    cell = CellId.from_degrees(lat, lng, level)
    assert CellId.from_token(cell.to_token()) == cell


@given(
    lat1=lat_strategy,
    lng1=lng_strategy,
    lat2=lat_strategy,
    lng2=lng_strategy,
    level=st.integers(min_value=4, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_cell_distance_lower_bounds_point_distance(lat1, lng1, lat2, lng2, level):
    """Minimum cell distance never exceeds the distance between points in
    the cells (it is a lower bound by construction)."""
    p1 = LatLng.from_degrees(lat1, lng1)
    p2 = LatLng.from_degrees(lat2, lng2)
    c1 = CellId.from_lat_lng(p1, level)
    c2 = CellId.from_lat_lng(p2, level)
    assert c1.distance_meters(c2) <= p1.distance_meters(p2) + 1e-6


@given(
    lat1=lat_strategy,
    lng1=lng_strategy,
    lat2=lat_strategy,
    lng2=lng_strategy,
)
@settings(max_examples=100, deadline=None)
def test_haversine_triangle_inequality_via_origin(lat1, lng1, lat2, lng2):
    """Distance obeys the triangle inequality through a third point."""
    a = LatLng.from_degrees(lat1, lng1)
    b = LatLng.from_degrees(lat2, lng2)
    origin = LatLng.from_degrees(0.0, 0.0)
    assert a.distance_meters(b) <= a.distance_meters(origin) + origin.distance_meters(
        b
    ) + 1e-6


@given(lat=lat_strategy, lng=lng_strategy, bearing=st.floats(0, 2 * math.pi), meters=st.floats(1.0, 2e5))
@settings(max_examples=100, deadline=None)
def test_destination_distance(lat, lng, bearing, meters):
    """Travelling d metres lands exactly d metres away."""
    start = LatLng.from_degrees(lat, lng)
    end = start.destination(bearing, meters)
    assert math.isclose(start.distance_meters(end), meters, rel_tol=1e-5)

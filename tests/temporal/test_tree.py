"""Unit tests for the hierarchical temporal count tree."""

from collections import Counter

import pytest

from repro.temporal import TemporalCountTree


@pytest.fixture()
def tree() -> TemporalCountTree:
    return TemporalCountTree(
        {
            0: Counter({"a": 3, "b": 1}),
            2: Counter({"a": 1}),
            3: Counter({"b": 2, "c": 1}),
            7: Counter({"c": 5}),
        }
    )


class TestConstruction:
    def test_num_leaves(self, tree):
        assert tree.num_leaves == 8

    def test_height(self, tree):
        assert tree.height == 3

    def test_empty_tree(self):
        tree = TemporalCountTree({})
        assert tree.num_leaves == 0
        assert tree.root() == Counter()
        assert tree.total() == 0

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            TemporalCountTree({-1: Counter({"a": 1})})

    def test_empty_leaf_counters_are_dropped(self):
        tree = TemporalCountTree({0: Counter(), 1: Counter({"a": 1})})
        assert tree.leaf(0) == Counter()
        assert tree.leaf(1) == Counter({"a": 1})

    def test_single_leaf(self):
        tree = TemporalCountTree({0: Counter({"x": 2})})
        assert tree.height == 0
        assert tree.root() == Counter({"x": 2})

    def test_from_events(self):
        tree = TemporalCountTree.from_events([(0, "a"), (0, "a"), (1, "b")])
        assert tree.leaf(0) == Counter({"a": 2})
        assert tree.leaf(1) == Counter({"b": 1})

    def test_leaves_are_copied(self):
        source = {0: Counter({"a": 1})}
        tree = TemporalCountTree(source)
        source[0]["a"] = 99
        assert tree.leaf(0) == Counter({"a": 1})


class TestAccessors:
    def test_leaf(self, tree):
        assert tree.leaf(0) == Counter({"a": 3, "b": 1})
        assert tree.leaf(1) == Counter()

    def test_populated_leaves(self, tree):
        assert list(tree.populated_leaves()) == [0, 2, 3, 7]

    def test_root_aggregates_everything(self, tree):
        assert tree.root() == Counter({"a": 4, "b": 3, "c": 6})

    def test_total(self, tree):
        assert tree.total() == 13

    def test_node_count_is_sparse(self, tree):
        # 4 leaves + their ancestor paths only; far fewer than a dense tree.
        assert tree.node_count < 15


class TestRangeQueries:
    def test_full_range(self, tree):
        assert tree.range_counter(0, 8) == tree.root()

    def test_single_leaf_range(self, tree):
        assert tree.range_counter(3, 4) == Counter({"b": 2, "c": 1})

    def test_empty_range(self, tree):
        assert tree.range_counter(4, 7) == Counter()

    def test_partial_range(self, tree):
        assert tree.range_counter(0, 3) == Counter({"a": 4, "b": 1})

    def test_range_beyond_leaves_is_clamped(self, tree):
        assert tree.range_counter(0, 100) == tree.root()

    def test_invalid_range_raises(self, tree):
        with pytest.raises(ValueError):
            tree.range_counter(-1, 2)
        with pytest.raises(ValueError):
            tree.range_counter(5, 2)

    def test_matches_naive_everywhere(self, tree):
        for start in range(0, 9):
            for end in range(start, 9):
                assert tree.range_counter(start, end) == tree.naive_range_counter(
                    start, end
                ), (start, end)

    def test_range_total(self, tree):
        assert tree.range_total(0, 4) == 8
        assert tree.range_total(7, 8) == 5


class TestDominating:
    def test_dominating_full(self, tree):
        assert tree.dominating(0, 8) == "c"

    def test_dominating_subrange(self, tree):
        assert tree.dominating(0, 3) == "a"

    def test_dominating_empty_is_none(self, tree):
        assert tree.dominating(4, 7) is None

    def test_dominating_tie_breaks_to_smallest(self):
        tree = TemporalCountTree({0: Counter({2: 3, 1: 3})})
        assert tree.dominating(0, 1) == 1

    def test_dominating_single_window(self, tree):
        assert tree.dominating(7, 8) == "c"

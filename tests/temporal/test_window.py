"""Unit tests for temporal windowing."""

import pytest

from repro.temporal import TimeSpan, Windowing, common_windowing


class TestTimeSpan:
    def test_width(self):
        assert TimeSpan(10.0, 25.0).width == 15.0

    def test_contains_half_open(self):
        span = TimeSpan(10.0, 20.0)
        assert span.contains(10.0)
        assert span.contains(19.999)
        assert not span.contains(20.0)
        assert not span.contains(9.999)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            TimeSpan(20.0, 10.0)

    def test_overlaps(self):
        a = TimeSpan(0.0, 10.0)
        assert a.overlaps(TimeSpan(5.0, 15.0))
        assert not a.overlaps(TimeSpan(10.0, 20.0))  # half-open: touching is disjoint
        assert a.overlaps(TimeSpan(-5.0, 0.1))

    def test_zero_width_allowed(self):
        span = TimeSpan(5.0, 5.0)
        assert span.width == 0.0
        assert not span.contains(5.0)


class TestWindowing:
    def test_index_of(self):
        windowing = Windowing(origin=1000.0, width_seconds=60.0)
        assert windowing.index_of(1000.0) == 0
        assert windowing.index_of(1059.9) == 0
        assert windowing.index_of(1060.0) == 1
        assert windowing.index_of(999.9) == -1

    def test_span_of_roundtrip(self):
        windowing = Windowing(0.0, 900.0)
        span = windowing.span_of(3)
        assert span.start == 2700.0
        assert span.end == 3600.0
        assert windowing.index_of(span.start) == 3
        assert windowing.index_of(span.end) == 4

    def test_minutes_constructor(self):
        assert Windowing.minutes(0.0, 15.0).width_seconds == 900.0

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            Windowing(0.0, 0.0)
        with pytest.raises(ValueError):
            Windowing(0.0, -5.0)

    def test_count_for(self):
        windowing = Windowing(0.0, 100.0)
        assert windowing.count_for(0.0, 99.0) == 1
        assert windowing.count_for(0.0, 100.0) == 2
        assert windowing.count_for(50.0, 350.0) == 4

    def test_count_for_invalid(self):
        with pytest.raises(ValueError):
            Windowing(0.0, 100.0).count_for(10.0, 5.0)

    def test_indices_between(self):
        windowing = Windowing(0.0, 10.0)
        assert list(windowing.indices_between(5.0, 35.0)) == [0, 1, 2, 3]

    def test_aligned(self):
        a = Windowing(0.0, 10.0)
        assert a.aligned(Windowing(0.0, 10.0))
        assert not a.aligned(Windowing(1.0, 10.0))
        assert not a.aligned(Windowing(0.0, 20.0))

    def test_coarsen(self):
        fine = Windowing(100.0, 60.0)
        coarse = fine.coarsen(4)
        assert coarse.origin == 100.0
        assert coarse.width_seconds == 240.0

    def test_coarsen_invalid(self):
        with pytest.raises(ValueError):
            Windowing(0.0, 60.0).coarsen(0)

    def test_every_timestamp_in_its_window(self):
        windowing = Windowing(12.5, 37.0)
        for t in (12.5, 100.0, 1234.5, 9999.0):
            span = windowing.span_of(windowing.index_of(t))
            assert span.contains(t)


class TestCommonWindowing:
    def test_uses_earliest_start(self):
        windowing = common_windowing(((100.0, 200.0), (50.0, 300.0)), 60.0)
        assert windowing.origin == 50.0
        assert windowing.index_of(50.0) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            common_windowing((), 60.0)

    def test_single_range(self):
        windowing = common_windowing(((10.0, 20.0),), 5.0)
        assert windowing.origin == 10.0

"""Property-based tests for the temporal count tree."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal import TemporalCountTree

events_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=9)),
    min_size=0,
    max_size=120,
)


@given(events=events_strategy, start=st.integers(0, 64), width=st.integers(0, 64))
@settings(max_examples=200, deadline=None)
def test_range_query_matches_naive(events, start, width):
    """Segment decomposition agrees with a direct leaf scan on any range."""
    tree = TemporalCountTree.from_events(events)
    end = start + width
    assert tree.range_counter(start, end) == tree.naive_range_counter(start, end)


@given(events=events_strategy)
@settings(max_examples=100, deadline=None)
def test_root_equals_event_multiset(events):
    """The root aggregates exactly the inserted events."""
    tree = TemporalCountTree.from_events(events)
    expected = Counter(key for _, key in events)
    assert tree.root() == expected
    assert tree.total() == len(events)


@given(events=events_strategy, split=st.integers(0, 64))
@settings(max_examples=100, deadline=None)
def test_ranges_are_additive(events, split):
    """counter([0, split)) + counter([split, end)) == counter([0, end))."""
    tree = TemporalCountTree.from_events(events)
    left = tree.range_counter(0, split)
    right = tree.range_counter(split, 64)
    combined = Counter(left)
    combined.update(right)
    assert combined == tree.range_counter(0, 64)


@given(events=events_strategy, start=st.integers(0, 63), width=st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_dominating_is_argmax_of_range(events, start, width):
    """dominating() returns a maximal-count key (smallest on ties)."""
    tree = TemporalCountTree.from_events(events)
    counts = tree.range_counter(start, start + width)
    dominating = tree.dominating(start, start + width)
    if not counts:
        assert dominating is None
    else:
        best = max(counts.values())
        assert counts[dominating] == best
        assert dominating == min(k for k, v in counts.items() if v == best)

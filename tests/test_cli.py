"""Unit tests for the slim-link CLI."""

import pytest

from repro.cli import build_parser, main
from repro.data import save_csv, sample_linkage_pair


@pytest.fixture(scope="module")
def csv_pair(tmp_path_factory, cab_world):
    tmp_path = tmp_path_factory.mktemp("cli")
    pair = sample_linkage_pair(cab_world, 0.5, 0.5, rng=5)
    left_path = tmp_path / "left.csv"
    right_path = tmp_path / "right.csv"
    save_csv(pair.left, left_path)
    save_csv(pair.right, right_path)
    return left_path, right_path, pair


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["l.csv", "r.csv"])
        assert args.window_minutes == 15.0
        assert args.spatial_level == 12
        assert not args.lsh

    def test_lsh_flags(self):
        args = build_parser().parse_args(
            ["l.csv", "r.csv", "--lsh", "--lsh-threshold", "0.4", "--lsh-buckets", "256"]
        )
        assert args.lsh
        assert args.lsh_threshold == 0.4
        assert args.lsh_buckets == 256

    def test_bad_matching_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["l.csv", "r.csv", "--matching", "magic"])


class TestMain:
    def test_links_to_stdout(self, csv_pair, capsys):
        left_path, right_path, pair = csv_pair
        code = main([str(left_path), str(right_path)])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.strip().splitlines()
        assert lines[0] == "left,right,score,linked"
        assert len(lines) > 1
        assert "stop threshold" in captured.err

    def test_output_file(self, csv_pair, tmp_path, capsys):
        left_path, right_path, _ = csv_pair
        out = tmp_path / "links.csv"
        code = main([str(left_path), str(right_path), "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("left,right,score,linked")

    def test_links_mostly_correct(self, csv_pair, capsys):
        left_path, right_path, pair = csv_pair
        main([str(left_path), str(right_path)])
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        produced = {}
        for line in lines:
            left, right, _, linked = line.split(",")
            if linked == "1":
                produced[left] = right
        correct = sum(
            1 for l, r in produced.items() if pair.ground_truth.get(l) == r
        )
        assert produced
        assert correct / len(produced) >= 0.7

    def test_all_matches_flag_shows_rejected(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        main([str(left_path), str(right_path), "--all-matches"])
        all_lines = capsys.readouterr().out.strip().splitlines()[1:]
        main([str(left_path), str(right_path)])
        linked_lines = capsys.readouterr().out.strip().splitlines()[1:]
        assert len(all_lines) >= len(linked_lines)

    def test_lsh_mode_runs(self, csv_pair, capsys):
        left_path, right_path, _ = csv_pair
        code = main([str(left_path), str(right_path), "--lsh", "--lsh-step-windows", "8"])
        assert code == 0

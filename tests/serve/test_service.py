"""LinkageService behaviour: lifecycle, versioned snapshot reads, the
debounced relink scheduler's triggers, backpressure under both policies,
per-source caps, retire flow, relink-failure isolation and metrics."""

import asyncio
import threading

import pytest

from repro.data import Record
from repro.eval.reporting import serving_table
from repro.pipeline import LinkageConfig
from repro.serve import BackpressureError, LinkageService


def _rec(entity, t, lat=37.77, lng=-122.42):
    return Record(entity, lat, lng, t)


# A minimal linkable world: one entity per side alone scores zero (its
# bins carry no IDF weight when every entity visits them), so the smallest
# stream that actually links has two co-located pairs at distinct places.
_LEFT = (_rec("u", 10.0), _rec("w", 20.0, lat=37.90, lng=-122.40))
_RIGHT = (_rec("v", 40.0), _rec("x", 50.0, lat=37.90, lng=-122.40))
_LINKS = {"u": "v", "w": "x"}


def _gate_relink(service, gate):
    """Make the service's relink wait on ``gate`` (a threading.Event) so a
    test can hold the single-writer pump inside an apply while it probes
    the ingestion front end."""
    real = service.linker.relink

    def gated():
        assert gate.wait(timeout=30.0), "test gate never released"
        return real()

    service.linker.relink = gated


class TestLifecycle:
    def test_double_start_is_an_error(self):
        async def run():
            service = LinkageService(origin=0.0)
            await service.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await service.start()
            finally:
                await service.stop()

        asyncio.run(run())

    def test_submit_requires_running_service(self):
        async def run():
            service = LinkageService(origin=0.0)
            with pytest.raises(RuntimeError, match="not running"):
                await service.submit("left", [_rec("u", 10.0)])

        asyncio.run(run())

    def test_stop_is_idempotent(self):
        async def run():
            service = LinkageService(origin=0.0)
            await service.start()
            await service.stop()
            await service.stop()
            assert not service.running

        asyncio.run(run())

    def test_stop_folds_pending_events_into_final_relink(self):
        """No accepted event is ever dropped: events still pending at
        stop() ride a final relink before the pump exits."""

        async def run():
            service = LinkageService(
                origin=0.0, batch_records=10_000, max_staleness=60.0
            )
            await service.start()
            await service.submit("left", _LEFT)
            await service.submit("right", _RIGHT)
            await service.stop()
            return service.snapshot()

        snapshot = asyncio.run(run())
        assert snapshot.version == 1
        assert dict(snapshot.links) == _LINKS

    def test_submit_validates_side(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                with pytest.raises(ValueError, match="left or right"):
                    await service.submit("middle", [_rec("u", 10.0)])

        asyncio.run(run())


class TestVersionedReads:
    def test_versions_bump_and_answers_carry_version_and_watermark(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                assert service.snapshot().version == 0
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                first = await service.flush()
                await service.submit(
                    "left", [_rec("p", 70.0, lat=37.60, lng=-122.50)]
                )
                await service.submit(
                    "right", [_rec("q", 100.0, lat=37.60, lng=-122.50)]
                )
                second = await service.flush()
                answer = await service.links_for("u")
                reverse = await service.links_for("v", side="right")
                matched = await service.match("u", "v")
                stats = await service.stats()
                return first, second, answer, reverse, matched, stats

        first, second, answer, reverse, matched, stats = asyncio.run(run())
        assert (first.version, second.version) == (1, 2)
        assert first.watermark == 50.0
        assert second.watermark == 100.0
        assert dict(first.links) == _LINKS
        assert second.links.get("p") == "q"
        assert answer.linked == "v"
        assert answer.version == 2
        assert answer.watermark == 100.0
        assert answer.score == second.link_scores[("u", "v")]
        assert reverse.linked == "u"
        assert matched.linked and matched.version == 2
        assert stats["version"] == 2
        assert stats["links"] == len(second.links)
        assert stats["records_ingested"] == 6

    def test_unlinked_entity_answers_none(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                await service.flush()
                return await service.links_for("nobody")

        answer = asyncio.run(run())
        assert answer.linked is None
        assert answer.score is None
        assert answer.version == 1

    def test_published_snapshots_are_immutable(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                return await service.flush()

        snapshot = asyncio.run(run())
        with pytest.raises(TypeError):
            snapshot.links["u"] = "hijacked"
        with pytest.raises(Exception):  # frozen dataclass
            snapshot.version = 99


class TestScheduler:
    def test_batch_threshold_triggers_relink_without_flush(self):
        async def run():
            async with LinkageService(
                origin=0.0, batch_records=4, max_staleness=60.0
            ) as service:
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                for _ in range(200):
                    if service.snapshot().version:
                        break
                    await asyncio.sleep(0.02)
                return service.snapshot()

        snapshot = asyncio.run(run())
        assert snapshot.version == 1
        assert dict(snapshot.links) == _LINKS

    def test_staleness_deadline_triggers_relink_without_flush(self):
        async def run():
            async with LinkageService(
                origin=0.0, batch_records=10_000, max_staleness=0.1
            ) as service:
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                for _ in range(200):
                    if service.snapshot().version:
                        break
                    await asyncio.sleep(0.02)
                return service.snapshot()

        snapshot = asyncio.run(run())
        assert snapshot.version == 1
        assert dict(snapshot.links) == _LINKS

    def test_one_sided_stream_publishes_nothing_until_other_side(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit("left", _LEFT)
                only_left = await service.flush()
                await service.submit("right", _RIGHT)
                both = await service.flush()
                return only_left, both

        only_left, both = asyncio.run(run())
        assert only_left.version == 0  # nothing linkable yet
        assert both.version == 1
        assert dict(both.links) == _LINKS


class TestBackpressure:
    def test_reject_raises_when_queue_full(self):
        async def run():
            service = LinkageService(
                origin=0.0,
                queue_depth=2,
                batch_records=10_000,
                max_staleness=60.0,
                backpressure="reject",
            )
            gate = threading.Event()
            _gate_relink(service, gate)
            async with service:
                await service.submit("left", [_rec("u", 10.0)])
                await service.submit("right", [_rec("v", 40.0)])
                flush_task = asyncio.create_task(service.flush())
                await asyncio.sleep(0.05)  # pump is now held inside relink
                await service.submit("left", [_rec("w", 70.0)])
                await service.submit("left", [_rec("x", 80.0)])
                with pytest.raises(BackpressureError, match="queue full"):
                    await service.submit("left", [_rec("y", 90.0)])
                rejected = service.counters.rejected
                gate.set()
                await flush_task
            return service, rejected

        service, rejected = asyncio.run(run())
        assert rejected == 1
        assert service.metrics()["rejected"] == 1
        # The rejected records never counted as ingested.
        assert service.counters.records_in == 4

    def test_block_waits_for_capacity_then_completes(self):
        async def run():
            service = LinkageService(
                origin=0.0,
                queue_depth=1,
                batch_records=10_000,
                max_staleness=60.0,
                backpressure="block",
            )
            gate = threading.Event()
            _gate_relink(service, gate)
            async with service:
                await service.submit("left", [_rec("u", 10.0)])
                await service.submit("right", [_rec("v", 40.0)])
                flush_task = asyncio.create_task(service.flush())
                await asyncio.sleep(0.05)  # pump held; queue drained
                await service.submit("left", [_rec("w", 70.0)])  # fills depth 1
                held = asyncio.create_task(
                    service.submit("left", [_rec("x", 80.0)])
                )
                with pytest.raises(TimeoutError):
                    await asyncio.wait_for(asyncio.shield(held), timeout=0.1)
                blocked = service.counters.blocked
                gate.set()
                await flush_task
                assert await held == 1  # completed once capacity freed
            return blocked, service

        blocked, service = asyncio.run(run())
        assert blocked >= 1
        assert service.counters.rejected == 0
        assert service.counters.records_in == 4

    def test_per_source_cap_rejects_chatty_source_only(self):
        async def run():
            service = LinkageService(
                origin=0.0,
                queue_depth=100,
                batch_records=10_000,
                max_staleness=60.0,
                backpressure="reject",
                max_pending_per_source=1,
            )
            gate = threading.Event()
            _gate_relink(service, gate)
            async with service:
                await service.submit("left", [_rec("u", 10.0)])
                await service.submit("right", [_rec("v", 40.0)])
                flush_task = asyncio.create_task(service.flush())
                await asyncio.sleep(0.05)  # pump held; source slots free
                await service.submit(
                    "left", [_rec("w", 70.0)], source="chatty"
                )
                with pytest.raises(BackpressureError, match="chatty"):
                    await service.submit(
                        "left", [_rec("x", 80.0)], source="chatty"
                    )
                # The global queue still has room for everyone else.
                await service.submit("left", [_rec("y", 90.0)], source="quiet")
                await service.submit("left", [_rec("z", 95.0)])  # unlabelled
                gate.set()
                await flush_task
            return service

        service = asyncio.run(run())
        assert service.counters.rejected == 1
        assert service.counters.records_in == 5


class TestRetire:
    def test_retire_removes_entity_from_next_snapshot(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit(
                    "left", [_rec("u", 10.0), _rec("w", 20.0, lat=37.90)]
                )
                await service.submit(
                    "right", [_rec("v", 40.0), _rec("x", 50.0, lat=37.90)]
                )
                first = await service.flush()
                await service.retire("left", ["u"])
                second = await service.flush()
                return first, second, service

        first, second, service = asyncio.run(run())
        assert first.links.get("u") == "v"
        assert "u" not in second.links
        assert second.version == first.version + 1
        assert service.counters.records_retired == 1

    def test_retire_unknown_entity_surfaces_named_error(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit("left", [_rec("u", 10.0)])
                await service.submit("right", [_rec("v", 40.0)])
                await service.flush()
                await service.retire("left", ["ghost"])
                with pytest.raises(KeyError, match="ghost"):
                    await service.flush()
                # The failure was isolated: the service keeps serving and
                # a later flush still works.
                snapshot = await service.flush()
                return snapshot, service

        snapshot, service = asyncio.run(run())
        assert snapshot.version >= 1
        assert service.counters.relink_failures == 1


class TestRelinkFailure:
    def test_failed_relink_keeps_pump_alive_and_snapshot_serving(self):
        async def run():
            service = LinkageService(origin=0.0)
            real = service.linker.relink
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("injected relink failure")
                return real()

            service.linker.relink = flaky
            async with service:
                await service.submit("left", _LEFT)
                await service.submit("right", _RIGHT)
                with pytest.raises(RuntimeError, match="injected"):
                    await service.flush()
                assert service.snapshot().version == 0  # old state serves
                assert service.counters.relink_failures == 1
                # The failed batch stayed folded in and rides the retry.
                snapshot = await service.flush()
                return snapshot, service

        snapshot, service = asyncio.run(run())
        assert snapshot.version == 1
        assert dict(snapshot.links) == _LINKS
        assert isinstance(service.last_error, RuntimeError)


class TestMetricsAndReporting:
    _EXPECTED_KEYS = (
        "events_in",
        "records_in",
        "records_retired",
        "rejected",
        "blocked",
        "queue_depth",
        "queue_peak",
        "relinks",
        "relink_failures",
        "relink_p50_s",
        "relink_p99_s",
        "snapshot_version",
        "snapshot_age_s",
        "staleness_s",
        "ingest_rate",
        "queries",
        "query_p50_ms",
        "query_p99_ms",
    )

    def test_metrics_sample_renders_in_serving_table(self):
        async def run():
            async with LinkageService(origin=0.0) as service:
                await service.submit("left", [_rec("u", 10.0)])
                await service.submit("right", [_rec("v", 40.0)])
                await service.flush()
                await service.links_for("u")
                await service.match("u", "v")
                return service.metrics()

        sample = asyncio.run(run())
        for key in self._EXPECTED_KEYS:
            assert key in sample, key
        assert sample["events_in"] == 2
        assert sample["records_in"] == 2
        assert sample["relinks"] == 1
        assert sample["snapshot_version"] == 1
        assert sample["queries"] == 2
        assert sample["ingest_rate"] > 0
        table = serving_table([{"round": 0, **sample}], title="serving")
        assert "serving" in table
        for column in ("ingest_rate", "snapshot_version", "query_p99_ms"):
            assert column in table


class TestValidation:
    def test_unknown_backpressure_policy_named(self):
        with pytest.raises(ValueError, match="serve_backpressure"):
            LinkageService(origin=0.0, backpressure="bogus")

    def test_bad_queue_depth_named(self):
        with pytest.raises(ValueError, match="serve_queue_depth"):
            LinkageService(origin=0.0, queue_depth=0)

    def test_bad_batch_named(self):
        with pytest.raises(ValueError, match="serve_batch"):
            LinkageService(origin=0.0, batch_records=-1)

    def test_bad_staleness_named(self):
        with pytest.raises(ValueError, match="serve_staleness"):
            LinkageService(origin=0.0, max_staleness=0.0)

    def test_bad_source_cap_named(self):
        with pytest.raises(ValueError, match="max_pending_per_source"):
            LinkageService(origin=0.0, max_pending_per_source=-1)

    def test_config_serve_fields_flow_through(self):
        config = LinkageConfig(
            serve_queue_depth=7,
            serve_batch=3,
            serve_staleness=1.5,
            serve_backpressure="reject",
        )
        service = LinkageService(origin=0.0, config=config)
        assert service.queue_depth == 7
        assert service.batch_records == 3
        assert service.max_staleness == 1.5
        assert service.backpressure == "reject"

    def test_keyword_overrides_beat_config(self):
        config = LinkageConfig(serve_queue_depth=7, serve_backpressure="reject")
        service = LinkageService(
            origin=0.0, config=config, queue_depth=9, backpressure="block"
        )
        assert service.queue_depth == 9
        assert service.backpressure == "block"

"""Scenario event streams through the serving ingestion path (satellite):
exactly-once delivery — every record of the scenario pair is submitted
once and only once — and served == offline across the scenario zoo,
including the adversarial ``bursty_arrival`` stream."""

import asyncio

import pytest

from repro.core.streaming import StreamingLinker
from repro.pipeline import LinkageConfig
from repro.scenarios import get_scenario, stream_rounds
from repro.serve import LinkageService, replay_rounds
from repro.serve.replay import replay_origin

SCENARIOS = ("baseline_cab", "bursty_arrival", "dropout_gaps")
_SCALE = 0.3


def _scenario_rounds(name, rounds=3):
    scenario = get_scenario(name)
    pair = scenario.pair(scale=_SCALE)
    return pair, scenario.stream(scale=_SCALE, rounds=rounds)


@pytest.mark.parametrize("name", SCENARIOS)
def test_stream_delivers_every_record_exactly_once(name):
    """The round slices partition the pair: no record dropped, none
    duplicated — checked against the dataset sizes on both sides."""
    pair, rounds = _scenario_rounds(name)
    left_streamed = sum(len(cell.left) for cell in rounds)
    right_streamed = sum(len(cell.right) for cell in rounds)
    assert left_streamed == pair.left.num_records
    assert right_streamed == pair.right.num_records
    seen = set()
    for cell in rounds:
        for record in (*cell.left, *cell.right):
            key = (record.entity_id, record.timestamp, record.lat, record.lng)
            assert key not in seen, f"duplicate delivery: {key}"
            seen.add(key)


@pytest.mark.parametrize("name", SCENARIOS)
def test_service_ingests_stream_exactly_once(name):
    """The service's own ingest counter agrees with the dataset sizes
    after a full replay — the accepted-event ledger balances."""
    pair, rounds = _scenario_rounds(name)

    async def run():
        service = LinkageService(replay_origin(rounds), LinkageConfig())
        async with service:
            return await replay_rounds(service, rounds), service

    result, service = asyncio.run(run())
    expected = pair.left.num_records + pair.right.num_records
    assert service.counters.records_in == expected
    assert result.samples[-1]["records_in"] == expected
    assert service.counters.rejected == 0  # nothing sheds under "block"


@pytest.mark.parametrize("name", SCENARIOS)
def test_served_equals_offline_per_scenario(name):
    """Served final snapshot == offline replay for the scenario zoo."""
    _, rounds = _scenario_rounds(name)

    async def run():
        service = LinkageService(replay_origin(rounds), LinkageConfig())
        async with service:
            return await replay_rounds(service, rounds)

    result = asyncio.run(run())
    offline = StreamingLinker(origin=replay_origin(rounds), config=LinkageConfig())
    for cell in rounds:
        offline.observe("left", cell.left)
        offline.observe("right", cell.right)
    report = offline.relink()
    assert dict(result.snapshot.links) == report.links
    assert dict(result.snapshot.link_scores) == report.link_scores

"""The serving correctness anchor, pinned per executor backend: the links
in the final published snapshot are bit-identical to an offline
StreamingLinker replay of the same events — however the scheduler batched
them — because a delta relink equals a cold relink over the same state."""

import asyncio

import pytest

from repro.core.streaming import StreamingLinker
from repro.pipeline import LinkageConfig
from repro.scenarios import stream_rounds
from repro.serve import replay_pair
from repro.serve.replay import replay_origin

BACKENDS = ("serial", "thread", "process")


def _offline_all_at_once(rounds, config):
    """Offline baseline: observe every event, relink once at the end."""
    linker = StreamingLinker(origin=replay_origin(rounds), config=config)
    for cell in rounds:
        linker.observe("left", cell.left)
        linker.observe("right", cell.right)
    return linker.relink()


def _offline_per_round(rounds, config):
    """Offline baseline matching the service's flush-per-round schedule —
    required once retention makes evictions schedule-dependent."""
    linker = StreamingLinker(origin=replay_origin(rounds), config=config)
    report = None
    for cell in rounds:
        linker.observe("left", cell.left)
        linker.observe("right", cell.right)
        report = linker.relink()
    return report


@pytest.mark.parametrize("backend", BACKENDS)
def test_served_snapshot_bit_identical_to_offline(cab_pair, backend):
    """Served == offline regardless of how relinks were scheduled: the
    offline baseline relinks exactly once over the full stream, while the
    service relinked once per round."""
    config = LinkageConfig(executor=backend, workers=2)
    rounds = stream_rounds(cab_pair.left, cab_pair.right, rounds=3)
    result = asyncio.run(
        replay_pair(cab_pair.left, cab_pair.right, config, rounds=3)
    )
    offline = _offline_all_at_once(rounds, config)
    assert dict(result.snapshot.links) == offline.links
    assert dict(result.snapshot.link_scores) == offline.link_scores
    assert result.snapshot.threshold == offline.threshold.threshold


def test_served_snapshot_versions_track_rounds(cab_pair):
    result = asyncio.run(
        replay_pair(cab_pair.left, cab_pair.right, LinkageConfig(), rounds=3)
    )
    assert result.snapshot.version == 3
    assert [sample["round"] for sample in result.samples] == [0, 1, 2]
    assert [sample["snapshot_version"] for sample in result.samples] == [1, 2, 3]


def test_retention_parity_with_flush_per_round(cab_pair):
    """With a retention policy, evictions depend on the relink schedule —
    the service flushes per round, so the offline baseline must relink per
    round too, and then the snapshots still agree bit-for-bit."""
    config = LinkageConfig(retention="max_entities", retention_window=8)
    rounds = stream_rounds(cab_pair.left, cab_pair.right, rounds=3)
    result = asyncio.run(
        replay_pair(cab_pair.left, cab_pair.right, config, rounds=3)
    )
    offline = _offline_per_round(rounds, config)
    assert dict(result.snapshot.links) == offline.links
    assert dict(result.snapshot.link_scores) == offline.link_scores


def test_parity_independent_of_batch_boundaries(cab_pair):
    """Same stream pushed through two services with very different
    coalescing knobs publishes the same final links."""
    config = LinkageConfig()
    fine = asyncio.run(
        replay_pair(
            cab_pair.left, cab_pair.right, config, rounds=5, batch_records=1
        )
    )
    coarse = asyncio.run(
        replay_pair(
            cab_pair.left,
            cab_pair.right,
            config,
            rounds=2,
            batch_records=100_000,
        )
    )
    assert dict(fine.snapshot.links) == dict(coarse.snapshot.links)
    assert dict(fine.snapshot.link_scores) == dict(coarse.snapshot.link_scores)

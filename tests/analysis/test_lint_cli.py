"""The ``tools/repro_lint.py`` front door: exit codes, formats, listing."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import JSON_SCHEMA_VERSION, lint_rules

REPO = Path(__file__).resolve().parents[2]
LINT = REPO / "tools" / "repro_lint.py"
FIXTURES = Path(__file__).parent / "fixtures"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args], capture_output=True, text=True
    )


def test_clean_file_exits_zero():
    result = _run(str(FIXTURES / "wall-clock" / "ok.py"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_findings_exit_one_with_location_and_rule():
    bad = FIXTURES / "wall-clock" / "bad.py"
    result = _run("--select", "wall-clock", str(bad))
    assert result.returncode == 1
    assert f"{bad}:7:" in result.stdout
    assert "wall-clock" in result.stdout


def test_json_format_carries_the_schema_version():
    bad = FIXTURES / "unseeded-rng" / "bad.py"
    result = _run("--format", "json", "--select", "unseeded-rng", str(bad))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert {finding["rule"] for finding in payload["findings"]} == {"unseeded-rng"}


def test_list_rules_prints_every_id_and_invariant():
    result = _run("--list-rules")
    assert result.returncode == 0
    for name in lint_rules.names():
        assert f"{name}: " in result.stdout


def test_unknown_rule_id_is_a_usage_error():
    result = _run("--select", "no-such-rule", str(FIXTURES))
    assert result.returncode == 2
    assert "no-such-rule" in result.stderr


def test_missing_path_is_a_usage_error():
    result = _run("definitely/not/a/path")
    assert result.returncode == 2

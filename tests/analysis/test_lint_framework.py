"""Engine-level tests: suppressions, markers, selection, report shapes."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    collect_python_files,
    lint_rules,
    run_lint,
)


def _lint_source(tmp_path, source, **kwargs):
    module = tmp_path / "module.py"
    module.write_text(source)
    return run_lint([module], **kwargs)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
def test_scoped_disable_silences_exactly_its_line(tmp_path):
    report = _lint_source(
        tmp_path,
        "import numpy as np\n"
        "a = np.random.default_rng()  # repro-lint: disable=unseeded-rng -- fixture\n"
        "b = np.random.default_rng()\n",
    )
    assert [(f.rule, f.line) for f in report.findings] == [("unseeded-rng", 3)]


def test_disable_list_covers_multiple_rules_on_one_line(tmp_path):
    report = _lint_source(
        tmp_path,
        "import time\n"
        "import numpy as np\n"
        "x = np.random.default_rng() and time.time()"
        "  # repro-lint: disable=unseeded-rng,wall-clock -- fixture\n",
    )
    assert report.ok, report.render_text()


def test_unused_suppression_is_reported(tmp_path):
    report = _lint_source(
        tmp_path,
        "x = 1  # repro-lint: disable=unseeded-rng -- nothing to silence\n",
    )
    assert [(f.rule, f.line) for f in report.findings] == [("unused-suppression", 1)]


def test_unknown_rule_in_disable_is_reported(tmp_path):
    report = _lint_source(
        tmp_path, "x = 1  # repro-lint: disable=no-such-rule\n"
    )
    assert [f.rule for f in report.findings] == ["unknown-rule"]
    assert "no-such-rule" in report.findings[0].message


def test_select_subset_skips_other_rules_suppression_audit(tmp_path):
    # A wall-clock disable is not "unused" when wall-clock never ran.
    report = _lint_source(
        tmp_path,
        "x = 1  # repro-lint: disable=wall-clock -- audited only when active\n",
        select=["unseeded-rng"],
    )
    assert report.ok, report.render_text()


def test_directives_inside_docstrings_are_inert(tmp_path):
    report = _lint_source(
        tmp_path,
        '"""Example: use ``# repro-lint: disable=unseeded-rng`` comments."""\n'
        "x = 1\n",
    )
    assert report.ok, report.render_text()


def test_stale_timing_marker_is_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "# repro-lint: timing-module -- but nothing here reads a clock\n"
        "x = 1\n",
    )
    assert [(f.rule, f.line) for f in report.findings] == [("wall-clock", 1)]
    assert "stale" in report.findings[0].message


# ---------------------------------------------------------------------------
# selection and inputs
# ---------------------------------------------------------------------------
def test_unknown_select_name_raises_with_alternatives(tmp_path):
    (tmp_path / "module.py").write_text("x = 1\n")
    with pytest.raises(KeyError, match="unseeded-rng"):
        run_lint([tmp_path], select=["not-a-rule"])


def test_ignore_removes_a_rule(tmp_path):
    report = _lint_source(
        tmp_path,
        "import numpy as np\nx = np.random.default_rng()\n",
        ignore=["unseeded-rng"],
    )
    assert report.ok
    assert "unseeded-rng" not in report.rules


def test_parse_error_becomes_a_finding(tmp_path):
    report = _lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in report.findings] == ["parse-error"]


def test_collect_python_files_dedupes_and_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
    files = collect_python_files([tmp_path, tmp_path / "pkg" / "a.py"])
    assert files == [tmp_path / "pkg" / "a.py"]


# ---------------------------------------------------------------------------
# report shapes
# ---------------------------------------------------------------------------
def test_json_schema_is_stable(tmp_path):
    report = _lint_source(tmp_path, "import numpy as np\nx = np.random.default_rng()\n")
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert sorted(payload) == ["files", "findings", "rules", "version"]
    assert payload["files"] == 1
    assert payload["rules"] == lint_rules.names()
    (finding,) = payload["findings"]
    assert sorted(finding) == ["col", "line", "message", "path", "rule"]
    assert finding["rule"] == "unseeded-rng"
    assert finding["line"] == 2


def test_text_report_lists_location_rule_and_summary(tmp_path):
    report = _lint_source(tmp_path, "import numpy as np\nx = np.random.default_rng()\n")
    text = report.render_text()
    assert "module.py:2:5: unseeded-rng:" in text
    assert text.endswith("1 finding in 1 file (13 rules)")


def test_every_rule_declares_an_invariant():
    for name in lint_rules.names():
        assert lint_rules.get(name).invariant, name

"""The acceptance gate: the real tree lints clean, and deleting a seed
guard from an enforced invariant is caught with the right rule and line.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import run_lint

REPO = Path(__file__).resolve().parents[2]
LINT = REPO / "tools" / "repro_lint.py"


def test_repo_tree_is_lint_clean():
    report = run_lint([REPO / "src", REPO / "tools", REPO / "benchmarks"])
    assert report.ok, report.render_text()


def _lint_cli(path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), str(path)],
        capture_output=True,
        text=True,
    )


def test_unseeding_city_rng_fails_with_rule_and_location(tmp_path):
    """Unseed the named-stream ``default_rng`` guard in a city.py copy."""
    source = (REPO / "src/repro/data/synth/city.py").read_text()
    seeded = 'np.random.default_rng(zlib.crc32("/".join(parts).encode("utf-8")))'
    assert seeded in source
    line = next(
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if seeded in text
    )
    mutated = tmp_path / "city.py"
    mutated.write_text(source.replace(seeded, "np.random.default_rng()"))

    result = _lint_cli(mutated)
    assert result.returncode == 1, result.stdout + result.stderr
    assert f"{mutated}:{line}:" in result.stdout
    assert "unseeded-rng" in result.stdout


def test_worker_side_cache_store_fails_with_rule_and_location(tmp_path):
    """Inject a ``ScoreCache.store_batch`` call into the scoring worker."""
    source = (REPO / "src/repro/pipeline/stages.py").read_text()
    anchor = "    pairs, config = item\n"
    assert anchor in source
    injected = anchor + "    cache.store_batch(pairs, [0.0] * len(pairs), (0, 0))\n"
    mutated = tmp_path / "stages.py"
    mutated.write_text(source.replace(anchor, injected, 1))
    line = next(
        number
        for number, text in enumerate(
            mutated.read_text().splitlines(), start=1
        )
        if "cache.store_batch" in text
    )

    result = _lint_cli(mutated)
    assert result.returncode == 1, result.stdout + result.stderr
    assert f"{mutated}:{line}:" in result.stdout
    assert "worker-cache-access" in result.stdout

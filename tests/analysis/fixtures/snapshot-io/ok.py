"""Snapshot bytes go through repro.store; reads and other writes are fine."""

import json


def inspect(snapshot_dir):
    with open(snapshot_dir / "manifest.json") as handle:
        return json.load(handle)


def checkpoint(linker, snapshot_dir):
    return linker.save(snapshot_dir)


def export(report, out_path):
    with open(out_path, "w") as handle:
        json.dump(dict(report.links), handle)

"""Hand-writing snapshot payloads bypasses the atomic repro.store writers."""

import json
import pickle

import numpy as np


def clobber(snapshot_dir, state, scores, manifest):
    with open(snapshot_dir / "state.pkl", "wb") as handle:  # lint-expect: snapshot-io
        pickle.dump(state, handle)
    np.save(snapshot_dir / "scores.npy", scores)  # lint-expect: snapshot-io
    np.save("out/snapshot-cells.npy", scores)  # lint-expect: snapshot-io
    (snapshot_dir / "manifest.json").write_text(json.dumps(manifest))  # lint-expect: snapshot-io


def litter(snap_path, state):
    with snap_path.open("w") as handle:  # lint-expect: snapshot-io
        json.dump(state, handle)

"""Non-cache receivers may use these method names freely."""


def worker(payload, item):
    store = payload
    store.save(item)
    return store.size()

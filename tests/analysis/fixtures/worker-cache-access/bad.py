"""ScoreCache store/lookup outside the in-parent scoring modules."""


def worker(payload, item):
    cache = payload
    cache.store_batch([item], [0.0], (0, 0))  # lint-expect: worker-cache-access
    return cache.lookup_batch([item], (0, 0))  # lint-expect: worker-cache-access

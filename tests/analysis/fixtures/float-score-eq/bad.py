"""Exact float equality on score-typed expressions."""


def accept(score, best_score):
    if score == 1.0:  # lint-expect: float-score-eq
        return True
    return best_score != score  # lint-expect: float-score-eq

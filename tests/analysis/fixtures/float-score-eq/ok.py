"""Scores are compared by ordering or tolerance, never ==."""

import math


def accept(score, threshold):
    return score > threshold or math.isclose(score, threshold)

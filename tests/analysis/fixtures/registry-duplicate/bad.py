"""The same plugin name registered twice without replace=True."""

from repro.registry import Registry

things = Registry("thing")  # repro-lint: disable=registry-config-knob -- fixture registry, selected nowhere


@things.register("same")
def _first():
    return 1


@things.register("same")  # lint-expect: registry-duplicate
def _second():
    return 2

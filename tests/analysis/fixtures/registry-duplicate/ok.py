"""Unique names; deliberate override uses replace=True."""

from repro.registry import Registry

things = Registry("thing")  # repro-lint: disable=registry-config-knob -- fixture registry, selected nowhere


@things.register("one")
def _first():
    return 1


@things.register("two")
def _second():
    return 2


@things.register("one", replace=True)
def _override():
    return 3

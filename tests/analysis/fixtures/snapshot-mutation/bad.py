"""Mutating a published snapshot or its mappings."""


def corrupt(snapshot, links):
    snapshot.watermark = 7  # lint-expect: snapshot-mutation
    snapshot.links["u"] = "v"  # lint-expect: snapshot-mutation
    snapshot.links.update(links)  # lint-expect: snapshot-mutation
    object.__setattr__(snapshot, "watermark", 8)  # lint-expect: snapshot-mutation

"""Publication is a reference swap; snapshot contents are only read."""


def publish(service, snapshot):
    service._snapshot = snapshot
    return dict(snapshot.links)

"""A declared timing module may read the clock."""

# repro-lint: timing-module -- this fixture measures wall-clock by contract
import time


def stamp():
    return time.perf_counter()

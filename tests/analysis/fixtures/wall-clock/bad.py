"""Wall-clock reads without a timing designation."""

import time


def stamp():
    return time.time()  # lint-expect: wall-clock

"""Workers are module-level defs, picklable by reference."""


def top_level_worker(payload, item):
    return item


def run(executor, items, payload):
    return executor.map_blocks(top_level_worker, items, payload)

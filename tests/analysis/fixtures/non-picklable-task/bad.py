"""Lambdas and nested defs cannot cross the process boundary."""


def run(executor, items, payload):
    first = executor.map_blocks(lambda payload, item: item, items, payload)  # lint-expect: non-picklable-task

    def local_worker(payload, item):
        return item

    second = executor.map_blocks(local_worker, items, payload)  # lint-expect: non-picklable-task
    return first, second

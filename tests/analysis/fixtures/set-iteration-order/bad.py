"""Bare-set iteration feeding ordering-sensitive sinks."""


def fold(timings, names):
    extra = set(timings) - set(names)
    total = sum(timings[key] for key in extra)  # lint-expect: set-iteration-order
    links = []
    for key in extra:  # lint-expect: set-iteration-order
        links.append(key)
    ordered = [key for key in extra]  # lint-expect: set-iteration-order
    return total, links, ordered

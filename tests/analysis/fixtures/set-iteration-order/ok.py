"""Set iteration is laundered through sorted() or order-free folds."""


def fold(timings, names):
    extra = set(timings) - set(names)
    total = sum(timings[key] for key in sorted(extra))
    if any(key.startswith("x") for key in extra):
        return 0.0
    return total

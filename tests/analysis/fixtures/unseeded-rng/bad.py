"""Unseeded and global-state RNG use."""

import random

import numpy as np

rng = np.random.default_rng()  # lint-expect: unseeded-rng
np.random.shuffle([1, 2, 3])  # lint-expect: unseeded-rng
x = random.random()  # lint-expect: unseeded-rng
r = random.Random()  # lint-expect: unseeded-rng

"""Seeded randomness only: named crc32 streams and explicit seeds."""

import random
import zlib

import numpy as np

rng = np.random.default_rng(zlib.crc32(b"fixture/stream"))
shuffler = random.Random(7)
value = rng.random()

"""A registry reachable from no LinkageConfig knob."""

from repro.registry import Registry

widgets = Registry("widget")  # lint-expect: registry-config-knob

"""A registry whose LinkageConfig field mapping is declared."""

from repro.registry import Registry

matchers = Registry("matcher")

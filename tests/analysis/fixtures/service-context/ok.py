"""State writes from declared contexts: async methods and sync writers."""


class LinkageService:
    def __init__(self):
        self._snapshot = None
        self.counters = {}

    def _publish(self, snapshot):
        self._snapshot = snapshot

    async def enqueue(self, item):
        self._queue = item

    def metrics(self):
        return dict(self.counters)

"""A sync method writing loop-owned service state."""


class LinkageService:
    def __init__(self):
        self._snapshot = None
        self.counters = {}

    def rogue_write(self):
        self._snapshot = object()  # lint-expect: service-context
        self.counters["queries"] = 1  # lint-expect: service-context

"""Public plugins are exported; private ones may stay internal."""

from repro.registry import Registry

__all__ = ["public_plugin", "things"]

things = Registry("thing")  # repro-lint: disable=registry-config-knob -- fixture registry, selected nowhere


@things.register("pub")
def public_plugin():
    return 1


@things.register("hidden")
def _private_plugin():
    return 2

"""A public registered plugin missing from __all__."""

from repro.registry import Registry

__all__ = ["things"]

things = Registry("thing")  # repro-lint: disable=registry-config-knob -- fixture registry, selected nowhere


@things.register("pub")  # lint-expect: registry-export
def public_plugin():
    return 1

"""Workers mutating the shared payload, globals, and module state."""

TOTALS = {}


def bad_worker(payload, item):
    payload.append(item)  # lint-expect: worker-shared-mutation
    payload[0] = item  # lint-expect: worker-shared-mutation
    TOTALS[item] = payload  # lint-expect: worker-shared-mutation
    return item


def global_worker(payload, item):
    global TOTALS  # lint-expect: worker-shared-mutation
    TOTALS = {}
    return item


def run(executor, items, payload):
    first = executor.map_blocks(bad_worker, items, payload)
    second = executor.map_blocks(global_worker, items, payload)
    return first, second

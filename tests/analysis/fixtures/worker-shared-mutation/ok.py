"""A worker builds and returns fresh data; the payload stays read-only."""


def good_worker(payload, item):
    left, right = payload
    scores = [left[item], right[item]]
    scores.append(item)
    return scores


def run(executor, items, payload):
    return executor.map_blocks(good_worker, items, payload)

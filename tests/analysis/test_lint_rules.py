"""Fixture-driven rule tests: one passing and one failing snippet per rule.

Each ``tests/analysis/fixtures/<rule-id>/`` directory holds ``ok.py``
(zero findings) and ``bad.py``, whose expected findings are declared
in-line with ``# lint-expect: <rule-id>`` trailing comments — the test
compares the exact (rule, line) set, so a rule that fires on the wrong
line fails just as loudly as one that misses.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import lint_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*lint-expect:\s*([a-z\-]+)")

RULE_IDS = sorted(path.name for path in FIXTURES.iterdir() if path.is_dir())


def _expected_findings(path: Path) -> set:
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is not None:
            expected.add((match.group(1), lineno))
    return expected


def test_every_registered_rule_has_fixtures():
    assert RULE_IDS == lint_rules.names()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_clean(rule_id):
    report = run_lint([FIXTURES / rule_id / "ok.py"], select=[rule_id])
    assert report.ok, report.render_text()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_findings_match_expectations(rule_id):
    bad = FIXTURES / rule_id / "bad.py"
    expected = _expected_findings(bad)
    assert expected, f"{bad} declares no lint-expect markers"
    report = run_lint([bad], select=[rule_id])
    actual = {(finding.rule, finding.line) for finding in report.findings}
    assert actual == expected, report.render_text()

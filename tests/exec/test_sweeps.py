"""Sweep fan-outs through the executor API: auto-tuning levels and
harness grid cells must match their serial results exactly."""

import pytest

from repro.core.tuning import auto_spatial_level, self_similarity_curve
from repro.eval.harness import run_grid
from repro.exec import create_executor
from repro.pipeline import LinkageConfig

LEVELS = (8, 10, 12, 14)


class TestTuningFanOut:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_curve_matches_serial(self, cab_world, backend):
        serial = self_similarity_curve(
            cab_world, levels=LEVELS, sample_size=4, pairs_per_entity=3, rng=5
        )
        parallel = self_similarity_curve(
            cab_world,
            levels=LEVELS,
            sample_size=4,
            pairs_per_entity=3,
            rng=5,
            executor=backend,
        )
        assert parallel == serial  # same draws, same arithmetic

    def test_choice_matches_serial(self, cab_world):
        executor = create_executor("thread", workers=2)
        try:
            serial = auto_spatial_level(
                cab_world, levels=LEVELS, sample_size=4,
                pairs_per_entity=3, rng=5,
            )
            parallel = auto_spatial_level(
                cab_world, levels=LEVELS, sample_size=4,
                pairs_per_entity=3, rng=5, executor=executor,
            )
            assert parallel == serial
            assert executor.stats.tasks == len(LEVELS)
        finally:
            executor.shutdown()


class TestGridFanOut:
    def _configs(self):
        return [
            LinkageConfig(threshold=method)
            for method in ("gmm", "otsu", "two_means", "none")
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cells_match_serial(self, cab_pair, backend):
        serial = run_grid(cab_pair, self._configs())
        parallel = run_grid(cab_pair, self._configs(), executor=backend)
        assert len(parallel) == len(serial)
        for cell_serial, cell_parallel in zip(serial, parallel):
            assert cell_parallel.result.links == cell_serial.result.links
            assert cell_parallel.f1 == cell_serial.f1
            assert (
                cell_parallel.result.threshold.threshold
                == cell_serial.result.threshold.threshold
            )

    def test_borrowed_executor_not_shut_down(self, cab_pair):
        executor = create_executor("thread", workers=2)
        try:
            run_grid(cab_pair, self._configs()[:2], executor=executor)
            assert executor.stats.dispatches == 1
            assert executor.stats.tasks == 2
            # Still usable afterwards: the harness borrowed, not owned.
            assert executor.map_blocks(lambda p, i: i, [1])[0].value == 1
        finally:
            executor.shutdown()

"""Unit tests of the execution backends: ordering, payload delivery,
stats accounting, registry lookup and environment resolution."""

import os

import pytest

from repro.exec import (
    AUTO_EXECUTOR,
    ENV_EXECUTOR,
    ENV_WORKERS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskError,
    ThreadExecutor,
    as_executor,
    create_executor,
    executors,
    raise_on_task_errors,
    resolve_executor_name,
    resolve_worker_count,
)
from repro.pipeline import LinkageConfig

BACKENDS = ("serial", "thread", "process")


def _square_plus(payload, item):
    """Top-level (picklable) task for the process backend."""
    return payload + item * item


class TestMapBlocks:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_results_in_item_order(self, name):
        executor = create_executor(name, workers=3)
        try:
            results = executor.map_blocks(
                _square_plus, list(range(10)), payload=100
            )
            assert [r.value for r in results] == [100 + k * k for k in range(10)]
            assert all(r.seconds >= 0.0 for r in results)
        finally:
            executor.shutdown()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_stats_accumulate(self, name):
        executor = create_executor(name, workers=2)
        try:
            executor.map_blocks(_square_plus, [1, 2, 3], payload=0)
            executor.map_blocks(_square_plus, [4], payload=0)
            assert executor.stats.dispatches == 2
            assert executor.stats.tasks == 4
            assert executor.stats.busy_seconds >= 0.0
        finally:
            executor.shutdown()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_items(self, name):
        executor = create_executor(name, workers=2)
        try:
            assert executor.map_blocks(_square_plus, [], payload=0) == []
        finally:
            executor.shutdown()

    def test_process_tasks_run_in_other_processes(self):
        executor = ProcessExecutor(workers=2)
        results = executor.map_blocks(_pid_task, [0, 1, 2, 3])
        pids = {r.value for r in results}
        assert os.getpid() not in pids

    def test_thread_pool_reused_until_shutdown(self):
        executor = ThreadExecutor(workers=2)
        executor.map_blocks(_square_plus, [1], payload=0)
        pool = executor._pool
        executor.map_blocks(_square_plus, [2], payload=0)
        assert executor._pool is pool
        executor.shutdown()
        assert executor._pool is None


def _pid_task(payload, item):
    return os.getpid()


class _PoisonPayload:
    """A payload whose very first use inside a worker raises (picklable,
    so it survives the trip into a process pool before detonating)."""

    def touch(self):
        raise RuntimeError("poisoned payload")


def _touch_payload(payload, item):
    return payload.touch()


class TestLifecycleEdgeCases:
    def test_process_pool_with_one_worker(self):
        with ProcessExecutor(workers=1) as executor:
            results = executor.map_blocks(_square_plus, [1, 2, 3], payload=10)
        assert [r.value for r in results] == [11, 14, 19]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_shutdown_twice_is_harmless(self, name):
        executor = create_executor(name, workers=2)
        executor.map_blocks(_square_plus, [1], payload=0)
        executor.shutdown()
        executor.shutdown()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_context_manager_releases_workers(self, name):
        with create_executor(name, workers=2) as executor:
            results = executor.map_blocks(_square_plus, [2], payload=1)
            assert results[0].value == 5
        if name == "thread":
            assert executor._pool is None
        # Already-released executors tolerate another shutdown.
        executor.shutdown()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_payload_raising_on_first_touch(self, name):
        """A payload that detonates inside the worker fails *clean*: every
        task carries an error, no value is fabricated, the dispatch
        returns (and only raise_on_task_errors escalates)."""
        with create_executor(name, workers=2, retries=1, backoff=0.0) as executor:
            results = executor.map_blocks(
                _touch_payload, [0, 1], payload=_PoisonPayload()
            )
        assert all(r.error is not None and r.value is None for r in results)
        assert "poisoned payload" in results[0].error
        assert executor.stats.task_errors == 2
        with pytest.raises(TaskError, match="2 probe task"):
            raise_on_task_errors(results, "probe")


def _nested_create(payload, item):
    """Inside a daemonic pool worker, 'process' must degrade to serial."""
    return create_executor("process", workers=2).name


class TestRegistryAndCreation:
    def test_builtins_registered(self):
        for name in BACKENDS:
            assert name in executors

    def test_unknown_backend_fails_loud(self):
        with pytest.raises(KeyError, match="registered executor"):
            create_executor("gpu")

    def test_instances_satisfy_protocol(self):
        for name in BACKENDS:
            assert isinstance(create_executor(name, workers=1), Executor)

    def test_serial_always_one_worker(self):
        assert SerialExecutor(workers=8).workers == 1

    def test_nested_process_fanout_degrades_to_serial(self):
        executor = ProcessExecutor(workers=1)
        results = executor.map_blocks(_nested_create, [0])
        assert results[0].value == "serial"

    def test_as_executor_none(self):
        assert as_executor(None) == (None, False)

    def test_as_executor_name_is_owned(self):
        executor, owned = as_executor("thread")
        try:
            assert owned and executor.name == "thread"
        finally:
            executor.shutdown()

    def test_as_executor_instance_is_borrowed(self):
        instance = SerialExecutor()
        assert as_executor(instance) == (instance, False)


class TestResolution:
    def test_auto_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        assert resolve_executor_name(AUTO_EXECUTOR) == "serial"

    def test_auto_honours_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "thread")
        assert resolve_executor_name(AUTO_EXECUTOR) == "thread"
        assert LinkageConfig().resolved_executor() == "thread"

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "thread")
        assert resolve_executor_name("process") == "process"
        assert LinkageConfig(executor="process").resolved_executor() == "process"

    def test_workers_zero_resolves_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_worker_count(0) == (os.cpu_count() or 1)

    def test_workers_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_worker_count(0) == 3
        assert LinkageConfig().resolved_workers() == 3

    def test_explicit_workers_beat_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_worker_count(5) == 5

    def test_bad_workers_environment_fails_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_worker_count(0)

    def test_executor_environment_typo_fails_at_construction(self, monkeypatch):
        """A REPRO_EXECUTOR typo behind executor="auto" must fail when the
        config is built, not minutes later inside the scoring stage."""
        monkeypatch.setenv(ENV_EXECUTOR, "proces")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            LinkageConfig()

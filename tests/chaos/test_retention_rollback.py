"""Transactional relink under *retention* faults (satellite): a failure
anywhere in the retention phase — the policy itself, the cache sweep the
evictions trigger, the corpus compaction that follows — must roll the
linker back bit-identically, and a misbehaving policy must be refused by
name before anything is deleted."""

import pytest

from repro.core.corpus import HistoryCorpus
from repro.core.retention import MaxEntitiesRetention, RetentionPolicy
from repro.core.score_cache import ScoreCache
from repro.core.streaming import StreamingLinker
from repro.pipeline import LinkageConfig


class _Boom(RuntimeError):
    """The injected mid-retention failure."""


def _boom(*args, **kwargs):
    raise _Boom("injected retention-phase failure")


def _origin(pair):
    return min(pair.left.time_range()[0], pair.right.time_range()[0])


def _midpoint(pair, fraction=0.5):
    origin = _origin(pair)
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    return origin + fraction * (end - origin)


def _feed(linker, pair, lo=None, hi=None):
    for side, dataset in (("left", pair.left), ("right", pair.right)):
        linker.observe(
            side,
            (
                r
                for r in dataset.records()
                if (lo is None or r.timestamp > lo)
                and (hi is None or r.timestamp <= hi)
            ),
        )


def _cache_fingerprint(cache):
    return (len(cache), cache.hits, cache.misses)


def _retention_config():
    """A bound tight enough that the second relink of a half/half cab
    replay actually evicts entities — the faults below must fire inside a
    retention phase that has real work to do (``max_entities=8`` evicts
    on both relinks of the warm pair; the cab taxis stay active all day,
    so an activity-age window would never trigger)."""
    return LinkageConfig(retention="max_entities", retention_window=8)


def _warm_pair(cab_pair, config):
    """Two identical warm linkers (subject + control) one relink in, with
    the second half of the stream observed but not yet relinked."""
    mid = _midpoint(cab_pair)
    linker = StreamingLinker(origin=_origin(cab_pair), config=config)
    control = StreamingLinker(origin=_origin(cab_pair), config=config)
    for target in (linker, control):
        _feed(target, cab_pair, hi=mid)
        target.relink()
        _feed(target, cab_pair, lo=mid)
    return linker, control


class TestRetentionPhaseRollback:
    """Faults injected at each retention sub-step roll back bit-identical."""

    def _assert_rollback_and_retry(self, linker, control, before):
        before_memory, before_cache, before_last = before
        assert linker.memory_stats() == before_memory
        assert _cache_fingerprint(linker.score_cache) == before_cache
        assert linker.last_relink is before_last

        retry = linker.relink()
        expected = control.relink()
        assert retry.links == expected.links
        assert retry.matched_edges == expected.matched_edges
        assert retry.candidate_pairs == expected.candidate_pairs
        assert retry.extras["relink"] == expected.extras["relink"]
        assert linker.memory_stats() == control.memory_stats()
        assert _cache_fingerprint(linker.score_cache) == _cache_fingerprint(
            control.score_cache
        )

    def test_policy_raising_mid_relink_rolls_back(self, cab_pair, monkeypatch):
        """The policy itself blows up while deciding who to evict."""
        linker, control = _warm_pair(cab_pair, _retention_config())
        before = (
            linker.memory_stats(),
            _cache_fingerprint(linker.score_cache),
            linker.last_relink,
        )
        monkeypatch.setattr(MaxEntitiesRetention, "retire", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()
        self._assert_rollback_and_retry(linker, control, before)

    def test_cache_sweep_raising_rolls_back(self, cab_pair, monkeypatch):
        """The eviction-triggered score-cache sweep blows up *after* the
        policy already deleted histories from the live side mappings."""
        linker, control = _warm_pair(cab_pair, _retention_config())
        before = (
            linker.memory_stats(),
            _cache_fingerprint(linker.score_cache),
            linker.last_relink,
        )
        monkeypatch.setattr(ScoreCache, "invalidate_pairs", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()
        self._assert_rollback_and_retry(linker, control, before)

    def test_corpus_compaction_raising_rolls_back(self, cab_pair, monkeypatch):
        """The corpus refresh that retracts the retired entities'
        statistics blows up — histories are already gone from the side
        mappings, the corpus is mid-compaction."""
        linker, control = _warm_pair(cab_pair, _retention_config())
        before = (
            linker.memory_stats(),
            _cache_fingerprint(linker.score_cache),
            linker.last_relink,
        )
        monkeypatch.setattr(HistoryCorpus, "refresh", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()
        self._assert_rollback_and_retry(linker, control, before)


class _LyingPolicy(RetentionPolicy):
    """Names entities the side does not hold."""

    def __init__(self):
        super().__init__(1)

    def retire(self, histories, current_window):
        return {"ghost-1", "ghost-2"}


class _ScorchedEarthPolicy(RetentionPolicy):
    """Retires every entity it is shown."""

    def __init__(self):
        super().__init__(1)

    def retire(self, histories, current_window):
        return set(histories)


class TestDefensiveValidation:
    """A policy's verdict is validated by name before anything is deleted."""

    def _warm(self, cab_pair, policy):
        linker = StreamingLinker(
            origin=_origin(cab_pair),
            config=LinkageConfig(),
            retention=policy,
        )
        return linker

    def test_unknown_ids_refused_by_policy_name(self, cab_pair):
        linker = self._warm(cab_pair, _LyingPolicy())
        _feed(linker, cab_pair)
        before = linker.memory_stats()
        with pytest.raises(ValueError, match="_LyingPolicy") as excinfo:
            linker.relink()
        assert "ghost-1" in str(excinfo.value)
        assert "does not hold" in str(excinfo.value)
        assert linker.memory_stats() == before  # nothing was deleted

    def test_emptying_a_side_refused_by_policy_name(self, cab_pair):
        linker = self._warm(cab_pair, _ScorchedEarthPolicy())
        _feed(linker, cab_pair)
        before = linker.memory_stats()
        with pytest.raises(ValueError, match="_ScorchedEarthPolicy") as excinfo:
            linker.relink()
        assert "spare at least one" in str(excinfo.value)
        assert linker.memory_stats() == before

    def test_misbehaving_policy_fault_is_retryable(self, cab_pair):
        """Swap the bad policy for a good one after the refusal: the
        linker relinks as if the fault never happened."""
        linker = self._warm(cab_pair, _ScorchedEarthPolicy())
        control = StreamingLinker(origin=_origin(cab_pair), config=LinkageConfig())
        _feed(linker, cab_pair)
        _feed(control, cab_pair)
        with pytest.raises(ValueError, match="spare at least one"):
            linker.relink()
        linker._retention = control._retention  # "fix the deployment"
        retry = linker.relink()
        expected = control.relink()
        assert retry.links == expected.links
        assert linker.memory_stats() == control.memory_stats()

"""Executor recovery under injected faults.

The resilience contract: a dispatch hit by transient exceptions, worker
crashes, hung blocks or corrupt payloads must still return every value —
bit-identical to a fault-free run — or, past the retry budget, report the
failure in the :class:`TaskResult` error slot without killing the fan-out.
Fault schedules are deterministic (:mod:`repro.exec.faults`), so these
tests assert exact values, not probabilities.
"""

import pytest

from repro.exec import (
    FaultPlan,
    TaskError,
    create_executor,
    fault_plans,
    inject,
    raise_on_task_errors,
)
from repro.pipeline import LinkageConfig, LinkagePipeline

BACKENDS = ("serial", "thread", "process")

#: Seed used for every registry plan here; any value works — the point is
#: that the same seed must yield the same recovery story on every backend.
SEED = 3


def _affine(payload, item):
    """Top-level (picklable) pure task."""
    return payload * item + 1


class TestMapBlocksRecovery:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize(
        "plan_name", ("transient", "crash", "corrupt", "timeout", "mixed")
    )
    def test_recovered_values_bit_identical(self, name, plan_name):
        """Every seeded builtin plan, under every backend: all 24 values
        recover and equal the fault-free expectation."""
        plan = fault_plans.get(plan_name)(SEED)
        items = list(range(24))
        expected = [_affine(5, item) for item in items]
        with inject(plan):
            with create_executor(
                name, workers=2, timeout=0.1, backoff=0.0
            ) as executor:
                results = executor.map_blocks(_affine, items, payload=5)
        assert [r.value for r in results] == expected
        assert all(r.ok for r in results)
        assert executor.stats.faults >= len(plan)
        assert executor.stats.retries >= len(plan)
        assert executor.stats.task_errors == 0

    @pytest.mark.parametrize("name", BACKENDS)
    def test_same_plan_same_story_twice(self, name):
        """Determinism: two fresh executors under the same plan agree on
        values *and* on every fault counter."""
        plan = fault_plans.get("transient")(SEED)
        stories = []
        for _ in range(2):
            with inject(plan):
                with create_executor(name, workers=2, backoff=0.0) as executor:
                    results = executor.map_blocks(
                        _affine, list(range(16)), payload=2
                    )
            stories.append(
                (
                    [(r.value, r.error, r.attempts) for r in results],
                    executor.stats.fault_summary(),
                )
            )
        assert stories[0] == stories[1]

    def test_process_crash_counts_worker_crashes(self):
        plan = fault_plans.get("crash")(SEED)
        with inject(plan):
            with create_executor("process", workers=2, backoff=0.0) as executor:
                results = executor.map_blocks(_affine, list(range(16)), payload=1)
        assert [r.value for r in results] == [item + 1 for item in range(16)]
        assert executor.stats.worker_crashes >= 1

    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_timeout_counted_on_parallel_backends(self, name):
        plan = FaultPlan.from_spec("timeout@1~0.3")
        with inject(plan):
            with create_executor(
                name, workers=2, timeout=0.05, backoff=0.0
            ) as executor:
                results = executor.map_blocks(_affine, list(range(4)), payload=3)
        assert [r.value for r in results] == [3 * item + 1 for item in range(4)]
        assert executor.stats.timeouts >= 1

    @pytest.mark.parametrize("name", BACKENDS)
    def test_poisoned_block_fails_clean(self, name):
        """A permanent fault exhausts its budget and lands in the error
        slot; every other block still returns its value and the dispatch
        itself does not raise."""
        plan = FaultPlan.from_spec("transient@1*99")
        with inject(plan):
            with create_executor(
                name, workers=2, retries=1, backoff=0.0
            ) as executor:
                results = executor.map_blocks(_affine, list(range(4)), payload=1)
        assert results[1].error is not None
        assert not results[1].ok
        assert results[1].value is None
        assert [r.value for r in results if r.ok] == [1, 3, 4]
        assert executor.stats.task_errors == 1
        with pytest.raises(TaskError, match="1 scoring task"):
            raise_on_task_errors(results, "scoring")

    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_degrades_to_serial_oracle(self, name):
        """Past ``max_failures`` failed attempts the dispatch finishes
        inline — degraded, but complete and correct."""
        plan = FaultPlan.from_spec("transient@0;transient@2;transient@4")
        with inject(plan):
            with create_executor(
                name, workers=2, max_failures=1, backoff=0.0
            ) as executor:
                results = executor.map_blocks(_affine, list(range(8)), payload=2)
        assert executor.stats.degraded is True
        assert [r.value for r in results] == [2 * item + 1 for item in range(8)]

    def test_env_variable_drives_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "transient@0")
        executor = create_executor("serial", backoff=0.0)
        results = executor.map_blocks(_affine, [7], payload=0)
        assert results[0].value == 1
        assert results[0].attempts == 2
        assert executor.stats.faults == 1


class TestPipelineRecovery:
    """A fault-injected linkage run must end with the same links, scores
    and counters as a clean one — the scoring fan-out heals itself."""

    def _clean_report(self, pair, config):
        # The empty installed plan masks any REPRO_FAULTS the CI chaos job
        # exported — this baseline must be genuinely fault-free.
        with inject(FaultPlan()):
            return LinkagePipeline(config).run(pair.left, pair.right)

    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_faulted_run_matches_clean_run(self, sm_pair, name):
        config = LinkageConfig(executor=name, workers=2)
        clean = self._clean_report(sm_pair, config)
        assert "faults" not in clean.extras
        plan = FaultPlan.from_spec("transient@0;crash@1")
        with inject(plan):
            faulted = LinkagePipeline(config).run(sm_pair.left, sm_pair.right)
        assert faulted.links == clean.links
        assert faulted.matched_edges == clean.matched_edges
        assert faulted.edges == clean.edges
        assert faulted.stats == clean.stats
        assert faulted.candidate_pairs == clean.candidate_pairs
        assert faulted.threshold.threshold == clean.threshold.threshold
        assert faulted.extras["executor"]["name"] == name
        assert faulted.extras["faults"]["faults"] >= 2
        assert "degraded" not in faulted.extras

    def test_degraded_run_still_completes(self, sm_pair):
        """A borrowed executor with no failure headroom degrades mid-run;
        the report says so and the links are still exact."""
        config = LinkageConfig()
        clean = self._clean_report(sm_pair, config)
        plan = FaultPlan.from_spec("transient@0;transient@1")
        executor = create_executor(
            "thread", workers=2, max_failures=0, backoff=0.0
        )
        try:
            with inject(plan):
                report = LinkagePipeline(config).run(
                    sm_pair.left, sm_pair.right, executor=executor
                )
        finally:
            executor.shutdown()
        assert report.extras["degraded"] is True
        assert report.extras["faults"]["degraded"] is True
        assert report.links == clean.links
        assert report.stats == clean.stats

    def test_config_timeout_and_retries_reach_the_executor(self, sm_pair):
        """The new config fields plumb through to the owned executor: a
        hung first block is timed out, retried and the run matches the
        clean baseline."""
        config = LinkageConfig(
            executor="thread", workers=2, timeout=0.05, retries=2
        )
        clean = self._clean_report(sm_pair, config)
        plan = FaultPlan.from_spec("timeout@0~0.3")
        with inject(plan):
            report = LinkagePipeline(config).run(sm_pair.left, sm_pair.right)
        assert report.extras["faults"]["timeouts"] >= 1
        assert report.links == clean.links
        assert report.stats == clean.stats

    def test_serial_pipeline_untouched_by_plans(self, sm_pair):
        """The serial scoring path never enters an executor fan-out, so a
        fault plan cannot perturb it — same links, no fault extras."""
        config = LinkageConfig(executor="serial")
        clean = self._clean_report(sm_pair, config)
        with inject(FaultPlan.from_spec("transient@0;crash@1")):
            report = LinkagePipeline(config).run(sm_pair.left, sm_pair.right)
        assert report.links == clean.links
        assert report.stats == clean.stats
        assert "faults" not in report.extras

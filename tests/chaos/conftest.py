"""Chaos-suite fixtures: never leak an installed fault plan."""

import pytest

from repro.exec import install_fault_plan


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Uninstall any programmatic fault plan after every test, even on
    failure — a leaked plan would sabotage unrelated suites."""
    yield
    install_fault_plan(None)

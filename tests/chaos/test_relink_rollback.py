"""Transactional relink: an exception mid-relink must leave the
streaming linker answering from its previous consistent snapshot —
bit-identical to never having attempted the relink at all."""

import pytest

from repro.core.score_cache import ScoreCache
from repro.core.streaming import StreamingLinker
from repro.lsh import LshConfig
from repro.lsh.index import LshIndex
from repro.pipeline import LinkageConfig
from repro.pipeline.stages import MatchingStage


class _Boom(RuntimeError):
    """The injected mid-relink failure."""


def _boom(*args, **kwargs):
    raise _Boom("injected mid-relink failure")


def _origin(pair):
    return min(pair.left.time_range()[0], pair.right.time_range()[0])


def _midpoint(pair, fraction=0.5):
    origin = _origin(pair)
    end = max(pair.left.time_range()[1], pair.right.time_range()[1])
    return origin + fraction * (end - origin)


def _feed(linker, pair, lo=None, hi=None):
    for side, dataset in (("left", pair.left), ("right", pair.right)):
        linker.observe(
            side,
            (
                r
                for r in dataset.records()
                if (lo is None or r.timestamp > lo)
                and (hi is None or r.timestamp <= hi)
            ),
        )


def _cache_fingerprint(cache):
    return (len(cache), cache.hits, cache.misses)


class TestRelinkRollback:
    def test_failed_relink_restores_state_bit_identical(
        self, cab_pair, monkeypatch
    ):
        """Warm linker, new data, relink blows up in the matching stage
        (after scoring already populated caches): every observable layer
        must read exactly as before the attempt, and a retry must equal a
        control linker that never saw the failure."""
        mid = _midpoint(cab_pair)
        linker = StreamingLinker(origin=_origin(cab_pair), config=LinkageConfig())
        control = StreamingLinker(origin=_origin(cab_pair), config=LinkageConfig())
        for target in (linker, control):
            _feed(target, cab_pair, hi=mid)
            target.relink()
            _feed(target, cab_pair, lo=mid)

        before_memory = linker.memory_stats()
        before_cache = _cache_fingerprint(linker.score_cache)
        before_last = linker.last_relink

        monkeypatch.setattr(MatchingStage, "run", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()

        assert linker.memory_stats() == before_memory
        assert _cache_fingerprint(linker.score_cache) == before_cache
        assert linker.last_relink is before_last

        retry = linker.relink()
        expected = control.relink()
        assert retry.links == expected.links
        assert retry.matched_edges == expected.matched_edges
        assert retry.edges == expected.edges
        assert retry.stats == expected.stats
        assert retry.candidate_pairs == expected.candidate_pairs
        assert linker.last_relink == control.last_relink
        assert linker.memory_stats() == control.memory_stats()
        assert _cache_fingerprint(linker.score_cache) == _cache_fingerprint(
            control.score_cache
        )

    def test_first_relink_failure_rolls_back_to_cold_state(
        self, cab_pair, monkeypatch
    ):
        """Failing the *first* relink must rewind the corpora to their
        never-built state (None), not leave half-built statistics."""
        linker = StreamingLinker(origin=_origin(cab_pair), config=LinkageConfig())
        _feed(linker, cab_pair)
        before_memory = linker.memory_stats()

        monkeypatch.setattr(MatchingStage, "run", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()

        assert linker.memory_stats() == before_memory
        assert linker.last_relink is None
        assert linker.relink().links  # and the linker still works

    def test_attached_cache_not_polluted_by_failed_relink(
        self, cab_pair, monkeypatch
    ):
        """Regression (satellite): a ScoreCache attached at construction
        must not retain rows staged during a relink that rolled back."""
        cache = ScoreCache()
        linker = StreamingLinker(
            origin=_origin(cab_pair), config=LinkageConfig(), score_cache=cache
        )
        _feed(linker, cab_pair)

        monkeypatch.setattr(MatchingStage, "run", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()

        # Scoring ran and stored rows before matching raised; all of them
        # belong to the rolled-back relink and must be gone.
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0

        # The cache still works for the linker that owns it afterwards.
        linker.relink()
        assert len(cache) > 0

    def test_lsh_placements_rolled_back(self, cab_pair, monkeypatch):
        """With LSH enabled, a failed relink must withdraw the band
        placements staged for the new data — checked at bucket level, not
        just entity counts."""
        config = LinkageConfig(
            lsh=LshConfig(threshold=0.4, step_windows=8, spatial_level=14)
        )
        mid = _midpoint(cab_pair)
        linker = StreamingLinker(origin=_origin(cab_pair), config=config)
        control = StreamingLinker(origin=_origin(cab_pair), config=config)
        for target in (linker, control):
            _feed(target, cab_pair, hi=mid)
            target.relink()
            _feed(target, cab_pair, lo=mid)

        before_index = linker._lsh_index.checkpoint()
        before_memory = linker.memory_stats()

        monkeypatch.setattr(LshIndex, "candidate_pairs", _boom)
        with pytest.raises(_Boom):
            linker.relink()
        monkeypatch.undo()

        after_index = linker._lsh_index.checkpoint()
        assert after_index["buckets"] == before_index["buckets"]
        assert after_index["placements"] == before_index["placements"]
        assert after_index["stats"] == before_index["stats"]
        assert linker.memory_stats() == before_memory

        retry = linker.relink()
        expected = control.relink()
        assert retry.links == expected.links
        assert retry.candidate_pairs == expected.candidate_pairs
        assert linker.memory_stats() == control.memory_stats()

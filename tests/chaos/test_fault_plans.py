"""The fault-injection harness itself: plans must be deterministic,
round-trippable and activatable through every advertised channel."""

import pytest

from repro.exec import (
    ENV_FAULTS,
    FAULT_KINDS,
    CorruptResult,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    fault_plans,
    inject,
    install_fault_plan,
    trigger_fault,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor", index=0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            FaultSpec(kind="transient", index=-1)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(kind="transient", index=0, attempts=0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="timeout", index=0, seconds=-1.0)


class TestFaultPlan:
    def test_fault_for_respects_attempts(self):
        plan = FaultPlan([FaultSpec(kind="transient", index=3, attempts=2)])
        assert plan.fault_for(3, 0) is not None
        assert plan.fault_for(3, 1) is not None
        assert plan.fault_for(3, 2) is None
        assert plan.fault_for(4, 0) is None

    def test_duplicate_ordinal_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                [
                    FaultSpec(kind="transient", index=1),
                    FaultSpec(kind="crash", index=1),
                ]
            )

    def test_spec_string_round_trip(self):
        plan = FaultPlan.from_spec("transient@1;crash@3*2;timeout@5~0.4;corrupt@7")
        assert FaultPlan.from_spec(plan.to_spec()) == plan
        assert len(plan) == 4
        assert plan.fault_for(5, 0).seconds == pytest.approx(0.4)
        assert plan.fault_for(3, 1).kind == "crash"

    def test_bad_spec_fails_loud(self):
        with pytest.raises(ValueError, match="kind@index"):
            FaultPlan.from_spec("transient-without-index")

    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(7) == FaultPlan.seeded(7)
        assert FaultPlan.seeded(7) != FaultPlan.seeded(8)

    def test_seeded_respects_bounds(self):
        plan = FaultPlan.seeded(3, kinds=("transient",), faults=5, span=10)
        assert len(plan) == 5
        assert all(spec.index < 10 for spec in plan.specs)
        assert all(spec.kind == "transient" for spec in plan.specs)
        with pytest.raises(ValueError, match="span"):
            FaultPlan.seeded(0, faults=5, span=3)

    def test_plans_are_picklable(self):
        import pickle

        plan = FaultPlan.seeded(11)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        for ordinal in range(16):
            assert clone.fault_for(ordinal, 0) == plan.fault_for(ordinal, 0)


class TestRegistry:
    @pytest.mark.parametrize("name", [*FAULT_KINDS, "mixed"])
    def test_builtin_plans_registered(self, name):
        plan = fault_plans.get(name)(0)
        assert len(plan) >= 1
        if name != "mixed":
            assert all(spec.kind == name for spec in plan.specs)


class TestActivation:
    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert active_fault_plan() is None

    def test_install_and_uninstall(self):
        plan = FaultPlan.seeded(1)
        install_fault_plan(plan)
        assert active_fault_plan() is plan
        install_fault_plan(None)

    def test_inject_scopes_the_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        plan = FaultPlan.seeded(2)
        with inject(plan) as active:
            assert active is plan
            assert active_fault_plan() is plan
        assert active_fault_plan() is None

    def test_env_raw_spec(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "transient@4*3")
        plan = active_fault_plan()
        assert plan.fault_for(4, 2).kind == "transient"

    def test_env_named_plan_with_seed(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "crash:9")
        assert active_fault_plan() == fault_plans.get("crash")(9)

    def test_env_bad_seed_fails_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "crash:soon")
        with pytest.raises(ValueError, match=ENV_FAULTS):
            active_fault_plan()

    def test_installed_plan_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "transient@0")
        plan = FaultPlan.seeded(5)
        with inject(plan):
            assert active_fault_plan() is plan

    def test_empty_plan_neutralises_environment(self, monkeypatch):
        """An installed *empty* plan wins over REPRO_FAULTS — the hook the
        chaos suite uses to carve out genuinely fault-free baselines even
        when the CI chaos job has the variable exported."""
        monkeypatch.setenv(ENV_FAULTS, "transient@0")
        with inject(FaultPlan()):
            assert len(active_fault_plan()) == 0


class TestTriggerFault:
    def test_transient_raises_injected_fault(self):
        spec = FaultSpec(kind="transient", index=2)
        with pytest.raises(InjectedFault) as excinfo:
            trigger_fault(spec, 2, 1)
        assert excinfo.value.kind == "transient"
        assert excinfo.value.ordinal == 2
        assert excinfo.value.attempt == 1

    def test_timeout_sleeps_then_raises(self):
        import time

        spec = FaultSpec(kind="timeout", index=0, seconds=0.05)
        start = time.perf_counter()
        with pytest.raises(InjectedFault):
            trigger_fault(spec, 0, 0)
        assert time.perf_counter() - start >= 0.05

    def test_corrupt_returns_marker(self):
        spec = FaultSpec(kind="corrupt", index=6)
        assert trigger_fault(spec, 6, 0) == CorruptResult(6)

    def test_crash_outside_worker_raises(self):
        """In the main process there is no worker to kill — the crash
        degenerates to an exception rather than taking the test run down."""
        spec = FaultSpec(kind="crash", index=0)
        with pytest.raises(InjectedFault) as excinfo:
            trigger_fault(spec, 0, 0)
        assert excinfo.value.kind == "crash"

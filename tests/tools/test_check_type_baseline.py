"""The mypy ratchet: normalisation, multiset comparison, strict tier.

The comparison logic is tested against synthetic mypy output so the
gate's behaviour is pinned even on machines without mypy installed
(``run_mypy`` itself degrades to a skip there, which is also covered).
"""

import importlib.util
from pathlib import Path

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_type_baseline.py"
spec = importlib.util.spec_from_file_location("check_type_baseline", _TOOL)
ratchet = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ratchet)


MYPY_OUTPUT = """\
src/repro/core/matching.py:80: error: Incompatible types in assignment  [assignment]
src/repro/core/matching.py:92:13: error: Argument 1 has incompatible type  [arg-type]
note: some informational line
src/repro/exec/backends.py:400: error: Item "None" has no attribute "map"  [union-attr]
Found 3 errors in 2 files (checked 98 source files)
"""


class TestNormalize:
    def test_strips_line_and_column_numbers(self):
        errors = ratchet.normalize_errors(MYPY_OUTPUT)
        assert errors == [
            "src/repro/core/matching.py: Incompatible types in assignment  [assignment]",
            "src/repro/core/matching.py: Argument 1 has incompatible type  [arg-type]",
            'src/repro/exec/backends.py: Item "None" has no attribute "map"  [union-attr]',
        ]

    def test_ignores_notes_and_summary_lines(self):
        assert ratchet.normalize_errors("Success: no issues found\n") == []

    def test_line_number_drift_is_invisible(self):
        before = ratchet.normalize_errors("src/a.py:10: error: boom  [misc]")
        after = ratchet.normalize_errors("src/a.py:99: error: boom  [misc]")
        assert before == after


class TestCompare:
    def test_identical_sets_pass(self):
        current = ["src/a.py: boom  [misc]"]
        assert ratchet.compare_to_baseline(current, current) == ([], 0)

    def test_new_error_is_reported(self):
        new, fixed = ratchet.compare_to_baseline(
            ["src/a.py: boom  [misc]", "src/b.py: fresh  [misc]"],
            ["src/a.py: boom  [misc]"],
        )
        assert new == ["src/b.py: fresh  [misc]"]
        assert fixed == 0

    def test_fixed_error_is_counted(self):
        new, fixed = ratchet.compare_to_baseline([], ["src/a.py: boom  [misc]"])
        assert new == []
        assert fixed == 1

    def test_duplicate_errors_are_multiset_compared(self):
        # Two occurrences of the same normalised error with only one in
        # the baseline: the extra one is new.
        new, _ = ratchet.compare_to_baseline(
            ["src/a.py: boom  [misc]"] * 2, ["src/a.py: boom  [misc]"]
        )
        assert new == ["src/a.py: boom  [misc]"]


class TestStrictTier:
    def test_analysis_errors_are_never_tolerated(self):
        errors = [
            "src/repro/analysis/core.py: untyped def  [no-untyped-def]",
            "src/repro/core/matching.py: boom  [misc]",
        ]
        assert ratchet.strict_violations(errors) == [errors[0]]


class TestBaselineFile:
    def test_roundtrip(self):
        errors = ["src/b.py: two  [misc]", "src/a.py: one  [misc]"]
        entries, bootstrap = ratchet.read_baseline(ratchet.render_baseline(errors))
        assert entries == sorted(errors)
        assert bootstrap is False

    def test_bootstrap_marker_detected(self):
        entries, bootstrap = ratchet.read_baseline(
            "# header\n# bootstrap: first run\n"
        )
        assert entries == []
        assert bootstrap is True

    def test_committed_baseline_parses(self):
        text = (ratchet.BASELINE_PATH).read_text()
        entries, _ = ratchet.read_baseline(text)
        assert all(not entry.startswith("#") for entry in entries)


class TestEndToEnd:
    def test_main_skips_cleanly_without_mypy(self, monkeypatch, capsys):
        monkeypatch.setattr(ratchet, "run_mypy", lambda targets: None)
        assert ratchet.main([]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_main_fails_on_strict_package_error(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ratchet,
            "run_mypy",
            lambda targets: (
                "src/repro/analysis/core.py:1: error: boom  [misc]\n"
            ),
        )
        assert ratchet.main([]) == 1
        assert "strict package" in capsys.readouterr().out

    def test_main_fails_on_new_basic_tier_error(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(
            ratchet,
            "run_mypy",
            lambda targets: "src/repro/core/x.py:1: error: new  [misc]\n",
        )
        baseline = tmp_path / "mypy_baseline.txt"
        baseline.write_text(ratchet.render_baseline([]))
        monkeypatch.setattr(ratchet, "BASELINE_PATH", baseline)
        assert ratchet.main([]) == 1
        assert "new mypy error" in capsys.readouterr().out

    def test_main_passes_and_mentions_shrink_when_errors_fixed(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(ratchet, "run_mypy", lambda targets: "")
        baseline = tmp_path / "mypy_baseline.txt"
        baseline.write_text(
            ratchet.render_baseline(["src/repro/core/x.py: old  [misc]"])
        )
        monkeypatch.setattr(ratchet, "BASELINE_PATH", baseline)
        assert ratchet.main([]) == 0
        assert "shrink" in capsys.readouterr().out

    def test_update_writes_frozen_baseline(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            ratchet,
            "run_mypy",
            lambda targets: "src/repro/core/x.py:3: error: old  [misc]\n",
        )
        baseline = tmp_path / "mypy_baseline.txt"
        monkeypatch.setattr(ratchet, "BASELINE_PATH", baseline)
        assert ratchet.main(["--update"]) == 0
        entries, bootstrap = ratchet.read_baseline(baseline.read_text())
        assert entries == ["src/repro/core/x.py: old  [misc]"]
        assert bootstrap is False

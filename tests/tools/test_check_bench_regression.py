"""The CI benchmark-regression gate: speedup floors, parity flags, skips."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", _TOOL)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


BASELINE = {
    "bench": "streaming_relink",
    "speedup": 15.3,
    "brute_force": {"speedup": 3.1},
    "parity": {"links_identical": True, "max_score_delta": 0.0},
}


def _dirs(tmp_path, fresh):
    base_dir = tmp_path / "base"
    fresh_dir = tmp_path / "fresh"
    base_dir.mkdir(exist_ok=True)
    fresh_dir.mkdir(exist_ok=True)
    (base_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
    (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
    return base_dir, fresh_dir


class TestCompare:
    def test_identical_passes(self, tmp_path):
        assert gate.compare_dirs(*_dirs(tmp_path, dict(BASELINE)), 0.5) == []

    def test_speedup_regression_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(tmp_path, {**BASELINE, "speedup": 1.0}), 0.5
        )
        assert problems and "regressed" in problems[0]

    def test_nested_speedup_checked(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(tmp_path, {**BASELINE, "brute_force": {"speedup": 0.5}}),
            0.5,
        )
        assert any("brute_force.speedup" in p for p in problems)

    def test_tolerance_is_a_ratio(self, tmp_path):
        dip = {**BASELINE, "speedup": 8.0}  # > 0.5 * 15.3
        assert gate.compare_dirs(*_dirs(tmp_path, dip), 0.5) == []
        assert gate.compare_dirs(*_dirs(tmp_path, dip), 0.9) != []

    def test_parity_flag_flip_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(
                tmp_path,
                {**BASELINE,
                 "parity": {"links_identical": False, "max_score_delta": 0.0}},
            ),
            0.5,
        )
        assert any("went false" in p for p in problems)

    def test_parity_numeric_delta_fails(self, tmp_path):
        problems = gate.compare_dirs(
            *_dirs(
                tmp_path,
                {**BASELINE,
                 "parity": {"links_identical": True, "max_score_delta": 1e-3}},
            ),
            0.5,
        )
        assert any("parity delta" in p for p in problems)

    def test_single_cpu_emission_skips_speedups_not_parity(self, tmp_path):
        fresh = {**BASELINE, "cpus": 1, "speedup": 0.1}
        assert gate.compare_dirs(*_dirs(tmp_path, fresh), 0.5) == []
        fresh["parity"] = {"links_identical": False, "max_score_delta": 0.0}
        assert gate.compare_dirs(*_dirs(tmp_path, fresh), 0.5) != []

    def test_missing_fresh_or_baseline_is_skip_not_failure(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_old.json").write_text(json.dumps(BASELINE))
        (fresh_dir / "BENCH_new.json").write_text(json.dumps(BASELINE))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) == []

    def test_empty_dirs_flagged(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        problems = gate.compare_dirs(tmp_path / "a", tmp_path / "b", 0.5)
        assert problems


class TestEntryPoints:
    def test_self_test_passes(self):
        assert gate.self_test() == 0

    def test_main_exit_codes(self, tmp_path):
        base_dir, fresh_dir = _dirs(tmp_path, dict(BASELINE))
        argv = ["--baseline", str(base_dir), "--fresh", str(fresh_dir)]
        assert gate.main(argv) == 0
        (fresh_dir / "BENCH_x.json").write_text(
            json.dumps({**BASELINE, "speedup": 0.1})
        )
        assert gate.main(argv) == 1

    def test_committed_baselines_are_self_consistent(self):
        """The checked-in results directory must pass against itself —
        the exact invariant CI starts from."""
        results = _TOOL.parent.parent / "benchmarks" / "results"
        assert gate.compare_dirs(results, results, 1.0) == []


@pytest.mark.parametrize(
    "document,expected",
    [
        ({"speedup": 2.0}, {"speedup": 2.0}),
        ({"a": {"speedup": 1.5}, "speedup": True}, {"a.speedup": 1.5}),
        ({"rows": [{"speedup": 3.0}]}, {"rows[0].speedup": 3.0}),
        ({"speedup_like": 9.0}, {}),
    ],
)
def test_speedup_extraction(document, expected):
    assert gate.speedups(document) == expected


class TestWorkloadStamp:
    def test_changed_workload_skips_speedups_not_parity(self, tmp_path):
        base = {**BASELINE, "workload": {"rounds": 50}}
        fresh = {**base, "workload": {"rounds": 6}, "speedup": 0.1}
        base_dir = tmp_path / "b"
        fresh_dir = tmp_path / "f"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(json.dumps(base))
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) == []
        fresh["parity"] = {"links_identical": False, "max_score_delta": 0.0}
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
        assert gate.compare_dirs(base_dir, fresh_dir, 0.5) != []
